#!/usr/bin/env python3
"""Durability plane — the crash-restore drill, twice.

Runs the ABL-DURABILITY scenario (a ``persistence: strong`` ``Ledger``
and a ``persistence: standard`` ``Cart`` taking counter increments
until a node crash wipes one partition's memory and unflushed
write-behind buffer) with the durability plane on, **two times with the
same seed** — and exits nonzero unless both runs land on
field-identical rows.  Recovery rewrites live state; if what it
restores (or what it reports lost) varied run-to-run at one seed, no
durability claim downstream would be checkable.  CI runs this script as
the determinism gate.

The drill also asserts the plane's headline guarantees at the tested
seed:

* ``Ledger`` (``persistence: strong``) recovers with **RPO = 0** — no
  acknowledged write is lost, because every commit was synchronously
  epoch-written before it was acknowledged.
* ``Cart`` (``persistence: standard``) may lose its unflushed tail, but
  the loss is **measured** (reported RPO equals the audited gap between
  acknowledged increments and surviving state) and **bounded** by the
  snapshot cadence.
* Both classes report a measured RTO.

Run:  python examples/crash_recovery.py [seed] [--json]
"""

from __future__ import annotations

import dataclasses
import json
import sys

from repro.bench.ablations import run_durability_ablation

#: Cart's RPO bound at the drill's default cadence: one snapshot
#: interval (0.25 s) plus the write-behind linger it rides on.
CART_RPO_BOUND_S = 0.5


def run_drill(seed: int):
    return run_durability_ablation(modes=("off", "on"), seed=seed)


def main() -> int:
    argv = [arg for arg in sys.argv[1:] if arg != "--json"]
    as_json = "--json" in sys.argv[1:]
    seed = int(argv[0]) if argv else 7

    first = run_drill(seed)
    second = run_drill(seed)

    if as_json:
        print(
            json.dumps(
                {
                    "seed": seed,
                    "rows": [dataclasses.asdict(row) for row in first],
                    "deterministic": first == second,
                },
                indent=2,
            )
        )
    else:
        print(f"=== crash drill, plane off vs on (seed {seed}) ===")
        for row in first:
            measured = (
                f"rpo={row.rpo_s:.4f}s rto={row.rto_s:.4f}s "
                f"lost_writes={row.lost_writes}"
                if row.recovered
                else "unmeasured"
            )
            print(
                f"  {row.mode:<3} {row.cls:<7} policy={row.policy:<10} "
                f"acked={row.acked_writes} survived={row.surviving_count} "
                f"lost={row.lost_acked}  {measured}"
            )

    if first != second:
        print("FAIL: crash recovery is nondeterministic at a fixed seed")
        return 1

    rows = {(row.mode, row.cls): row for row in first}
    ledger = rows[("on", "Ledger")]
    cart = rows[("on", "Cart")]
    failures: list[str] = []
    if not ledger.recovered or not cart.recovered:
        failures.append("recovery did not run for every enforced class")
    if ledger.rpo_s != 0.0 or ledger.lost_acked != 0:
        failures.append(
            f"strong class lost data: rpo={ledger.rpo_s} lost={ledger.lost_acked}"
        )
    if cart.rpo_s > CART_RPO_BOUND_S:
        failures.append(
            f"standard class RPO {cart.rpo_s:.4f}s exceeds bound "
            f"{CART_RPO_BOUND_S}s"
        )
    if cart.lost_writes != cart.lost_acked:
        failures.append(
            f"measured loss ({cart.lost_writes}) disagrees with audited loss "
            f"({cart.lost_acked})"
        )
    if ledger.rto_s <= 0.0 or cart.rto_s <= 0.0:
        failures.append("RTO was not measured")
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    if not as_json:
        print(
            f"OK: both runs identical; Ledger RPO 0 "
            f"({ledger.acked_writes} acked, none lost), Cart RPO "
            f"{cart.rpo_s:.4f}s ({cart.lost_writes} write(s) lost, measured "
            f"= audited)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

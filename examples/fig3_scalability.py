#!/usr/bin/env python3
"""Reproduce Fig. 3: Oparaca vs Knative scalability (paper §V).

Sweeps worker VMs for the four systems and prints the throughput
series plus an ASCII rendition of the figure.  The default quick
configuration finishes in well under a minute; pass ``--full`` for the
paper-scale sweep (3/6/9/12 VMs, longer steady-state windows — takes a
few minutes).

Run:  python examples/fig3_scalability.py [--full] [--systems oprc,knative]
"""

import argparse

from repro.bench import Fig3Config, format_fig3, format_fig3_chart, run_fig3
from repro.bench.systems import SYSTEMS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale sweep")
    parser.add_argument(
        "--systems",
        default=",".join(SYSTEMS),
        help=f"comma-separated subset of {SYSTEMS}",
    )
    args = parser.parse_args()

    cfg = Fig3Config() if args.full else Fig3Config.quick()
    systems = tuple(s.strip() for s in args.systems.split(",") if s.strip())
    print(
        f"sweep: VMs={cfg.nodes_sweep}, systems={systems}, "
        f"DB ceiling={cfg.db_capacity_units:.0f} units/s, "
        f"measure window={cfg.horizon_s - cfg.warmup_s:.0f}s"
    )
    rows = run_fig3(cfg, systems=systems)
    print()
    print(format_fig3(rows))
    print()
    print(format_fig3_chart(rows))


if __name__ == "__main__":
    main()

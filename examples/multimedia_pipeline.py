#!/usr/bin/env python3
"""Multimedia processing pipeline — the intro's motivating workload.

A video-sharing backend (paper §I: "a video streaming application ...
developers must maintain video files, metadata, and access control in
addition to developing functions") built as OaaS classes:

* ``Video`` holds the uploaded media (FILE state), its metadata, and a
  ``publish`` dataflow that transcodes and thumbnails in parallel, then
  updates the catalog entry — one invocation instead of a hand-rolled
  event chain.
* ``Thumbnail`` objects are *created by* the pipeline (``output_class``),
  showing methods that materialize new objects.

Run:  python examples/multimedia_pipeline.py
"""

from repro import Oparaca

PACKAGE = """
name: video-app
classes:
  - name: Thumbnail
    keySpecs:
      - { name: width, type: INT, default: 320 }
      - { name: source, type: STR, default: "" }
  - name: Video
    qos:
      throughput: 50
    keySpecs:
      - { name: media, type: FILE }
      - { name: title, type: STR, default: untitled }
      - { name: status, type: STR, default: draft }
      - { name: codec, type: STR, default: raw }
      - { name: duration_s, type: FLOAT, default: 0.0 }
    functions:
      - name: probe
        image: video/probe
        mutable: false
      - name: transcode
        image: video/transcode
      - name: makeThumbnail
        image: video/thumbnail
        mutable: false
        outputClass: Thumbnail
      - name: catalog
        image: video/catalog
      - name: publish
        type: MACRO
        dataflow:
          steps:
            - id: meta
              function: probe
            - id: enc
              function: transcode
              args: { codec: "${input.codec}" }
            - id: thumb
              function: makeThumbnail
              args: { width: "${input.thumb_width}" }
            - id: done
              function: catalog
              inputs: [meta, enc, thumb]
          output: done
"""


def main() -> None:
    oparaca = Oparaca()

    @oparaca.function("video/probe", service_time_s=0.01)
    def probe(ctx):
        media_url = ctx.files.get("media", "")
        return {"has_media": bool(media_url), "duration_s": 12.5}

    @oparaca.function("video/transcode", service_time_s=0.08)
    def transcode(ctx):
        ctx.state["codec"] = str(ctx.payload.get("codec", "h264"))
        return {"codec": ctx.state["codec"]}

    @oparaca.function("video/thumbnail", service_time_s=0.03)
    def make_thumbnail(ctx):
        width = int(ctx.payload.get("width", 320))
        return {"width": width, "source": ctx.task.object_id}

    @oparaca.function("video/catalog", service_time_s=0.005)
    def catalog(ctx):
        inputs = ctx.payload.get("inputs", [])
        meta = inputs[0] if inputs else {}
        ctx.state["status"] = "published"
        ctx.state["duration_s"] = float(meta.get("duration_s", 0.0))
        return {"status": "published", "stages": len(inputs)}

    oparaca.deploy(PACKAGE)

    # Upload: create the object, then push media through a presigned
    # URL — the developer's code never sees a storage credential.
    video = oparaca.new_object("Video", {"title": "Oparaca demo"})
    oparaca.upload_file(video, "media", b"\x00\x01fake-mp4-bytes" * 1000)
    print(f"uploaded media for {video}")

    # One call runs the whole pipeline; probe/transcode/thumbnail are
    # data-independent and execute in the same wave.
    result = oparaca.invoke(
        video, "publish", {"codec": "h264", "thumb_width": 480}
    )
    print(f"publish -> {result.output} (latency {result.latency_s * 1000:.1f} ms)")

    state = oparaca.get_object(video)["state"]
    print(f"video state: {state}")

    # The pipeline materialized a Thumbnail object.
    thumbnail_result = oparaca.invoke(video, "makeThumbnail", {"width": 160})
    thumb_id = thumbnail_result.created_object_id
    print(f"thumbnail object: {thumb_id} -> {oparaca.get_object(thumb_id)['state']}")

    oparaca.shutdown()
    print("pipeline complete.")


if __name__ == "__main__":
    main()

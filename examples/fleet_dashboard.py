#!/usr/bin/env python3
"""Fleet dashboard — keySpec-indexed queries over the store backends.

A delivery fleet's vehicles are OaaS objects whose class declares
``keySpecs`` (region, battery, odometer).  The platform — not the
application — owns that structured state, so the platform can index
and query it: the dashboards below are plain
``GET /api/classes/Vehicle/objects?where=...`` calls, no
application-side scan code.

The script runs the same dashboards twice:

1. on the default **dict** engine — the reference full-scan evaluator;
2. on the **SQLite** engine — the same answers from secondary indexes,
   billed fewer work units, and durable: the platform is torn down and
   a second one reopens the database file with the fleet intact.

Everything here is also reachable from the shell::

    ocli query examples/packages/fleet_dashboard.yaml --auto-handlers \\
        --new Vehicle --create '{"battery_pct": 17, "region": "eu-west"}' \\
        --where 'battery_pct<=20' --backend sqlite --explain
    ocli serve examples/packages/fleet_dashboard.yaml --auto-handlers \\
        --new Vehicle --backend sqlite --db fleet.db --linger

Run:  python examples/fleet_dashboard.py
"""

import os
import tempfile

from repro import Oparaca
from repro.platform.oparaca import PlatformConfig
from repro.storage.backends import StorageConfig

PACKAGE_PATH = os.path.join(
    os.path.dirname(__file__), "packages", "fleet_dashboard.yaml"
)

REGIONS = ["eu-west", "eu-north", "us-east", "ap-south"]


def build_platform(backend: str = "dict", path: str | None = None) -> Oparaca:
    oparaca = Oparaca(
        PlatformConfig(nodes=3, storage=StorageConfig(backend=backend, path=path))
    )

    @oparaca.function("fleet/drive", service_time_s=0.003)
    def drive(ctx):
        km = float(ctx.payload.get("km", 1.0))
        ctx.state["odometer_km"] = ctx.state.get("odometer_km", 0.0) + km
        ctx.state["battery_pct"] = max(
            0, ctx.state.get("battery_pct", 100) - int(km // 2)
        )
        return {"odometer_km": ctx.state["odometer_km"]}

    @oparaca.function("fleet/charge", service_time_s=0.002)
    def charge(ctx):
        ctx.state["battery_pct"] = 100
        return {"battery_pct": 100}

    with open(PACKAGE_PATH, encoding="utf-8") as fh:
        oparaca.deploy(fh.read())
    return oparaca


def seed_fleet(oparaca: Oparaca, vehicles: int = 24) -> None:
    for i in range(vehicles):
        oparaca.new_object(
            "Vehicle",
            {
                "region": REGIONS[i % len(REGIONS)],
                "battery_pct": (i * 13) % 101,
                "odometer_km": float(i * 311 % 5000),
            },
            object_id=f"veh-{i:03d}",
        )


def dashboard(oparaca: Oparaca, title: str) -> None:
    print(f"--- {title} " + "-" * max(0, 54 - len(title)))

    low = oparaca.http(
        "GET",
        "/api/classes/Vehicle/objects"
        "?where=battery_pct<=20&order=battery_pct&explain=1",
    )
    print(f"low battery (<=20%): {low.body['count']} vehicles, "
          f"{low.body['scanned']} scanned, index={low.body['index_used']}")
    for doc in low.body["objects"][:3]:
        state = doc["state"]
        print(f"  {doc['id']}  {state['battery_pct']:3d}%  {state['region']}")

    europe = oparaca.http(
        "GET", "/api/classes/Vehicle/objects?where=region^=eu-"
    )
    print(f"in Europe (region^=eu-): {europe.body['count']} vehicles")

    page = oparaca.http(
        "GET",
        "/api/classes/Vehicle/objects?order=odometer_km:desc&limit=5",
    )
    top = [d["state"]["odometer_km"] for d in page.body["objects"]]
    print(f"highest odometers (page 1 of cursor walk): {top}")
    if page.body["cursor"]:
        nxt = oparaca.http(
            "GET",
            "/api/classes/Vehicle/objects?order=odometer_km:desc&limit=5"
            f"&cursor={page.body['cursor']}",
        )
        print(f"  next page: {[d['state']['odometer_km'] for d in nxt.body['objects']]}")
    print(f"plan: {low.body['plan']}")


def main() -> None:
    # 1. The default dict engine: reference semantics, full scans.
    ephemeral = build_platform()
    seed_fleet(ephemeral)
    dashboard(ephemeral, "dict engine (default)")
    ephemeral.shutdown()

    # 2. The SQLite engine: same dashboards from secondary indexes,
    #    then survive a "crash" (the platform is dropped, not shut
    #    down) and serve the fleet again from the file.
    with tempfile.TemporaryDirectory() as tmp:
        db = os.path.join(tmp, "fleet.db")
        first = build_platform(backend="sqlite", path=db)
        seed_fleet(first)
        dashboard(first, "sqlite engine")
        first.store.close()  # abandon everything else: no clean shutdown

        second = build_platform(backend="sqlite", path=db)
        listing = second.http("GET", "/api/classes/Vehicle/objects")
        print(f"--- after restart on {os.path.basename(db)} " + "-" * 24)
        print(f"fleet intact: {listing.body['count']} vehicles")
        dashboard(second, "sqlite engine, reopened file")
        second.shutdown()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Chaos & resilience — availability NFRs under injected faults.

Two classes declare the same three-nines availability target but choose
different durability trade-offs:

* ``Ledger`` is persistent, so the NFR selects the high-availability
  template (replicated DHT entries, warm spares);
* ``Scratch`` opts out of persistence, so it lands on the in-memory
  ephemeral template (single in-memory copy, no database tier).

A fault plan then crashes one worker VM (it restarts later) and
partitions another away, while a steady workload keeps invoking both
classes.  The resilience plane — bounded retries, read/write failover to
surviving replicas, circuit breakers, stale-read fallback — keeps the
replicated class inside its availability target; the ephemeral class
demonstrably is not, which the ``availability_under_fault`` rows of the
NFR report make visible.

Run:  python examples/chaos_resilience.py [seed]
"""

from __future__ import annotations

import sys

from repro import Oparaca, PlatformConfig
from repro.chaos import FaultPlan, NodeCrash, Partition
from repro.monitoring.nfr_report import format_nfr_report

PACKAGE = """
name: chaos-demo
classes:
  - name: Ledger
    qos:
      availability: 0.999
    keySpecs:
      - name: balance
        type: INT
        default: 0
    functions:
      - name: add
        image: ledger/add
  - name: Scratch
    qos:
      availability: 0.999
    constraint:
      persistent: false
    keySpecs:
      - name: hits
        type: INT
        default: 0
    functions:
      - name: bump
        image: scratch/bump
"""

OBJECTS_PER_CLASS = 6
ROUNDS = 80


def build_platform(seed: int) -> Oparaca:
    oparaca = Oparaca(
        PlatformConfig(nodes=3, seed=seed, tracing_enabled=True, events_enabled=True)
    )

    @oparaca.function("ledger/add", service_time_s=0.002)
    def add(ctx):
        ctx.state["balance"] = ctx.state.get("balance", 0) + int(ctx.payload["amount"])
        return {"balance": ctx.state["balance"]}

    @oparaca.function("scratch/bump", service_time_s=0.002)
    def bump(ctx):
        ctx.state["hits"] = ctx.state.get("hits", 0) + 1
        return {"hits": ctx.state["hits"]}

    oparaca.deploy(PACKAGE)
    return oparaca


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    oparaca = build_platform(seed)
    for runtime in oparaca.describe():
        print(
            f"{runtime['class']:>8}: template={runtime['template']!r} "
            f"replication={runtime['replication']} persistent={runtime['persistent']}"
        )

    # Explicit object ids keep runs byte-for-byte reproducible.
    ledgers = [
        oparaca.new_object("Ledger", object_id=f"acct-{i}")
        for i in range(OBJECTS_PER_CLASS)
    ]
    scratches = [
        oparaca.new_object("Scratch", object_id=f"pad-{i}")
        for i in range(OBJECTS_PER_CLASS)
    ]

    # The incident: vm-1 dies at t=1s and is replaced 4s later; vm-2 is
    # partitioned away from t=2s to t=5s.  Both faults overlap.
    plan = FaultPlan(
        "crash-and-partition",
        (
            NodeCrash(at=1.0, duration_s=4.0, node="vm-1"),
            Partition(at=2.0, duration_s=3.0, nodes=("vm-2",)),
        ),
    )
    injector = oparaca.inject_chaos(plan)

    # Closed-loop workload across both classes while the plan plays out.
    committed = {obj: 0 for obj in ledgers}
    ok = {"Ledger": 0, "Scratch": 0}
    failed = {"Ledger": 0, "Scratch": 0}
    for round_no in range(ROUNDS):
        obj = ledgers[round_no % OBJECTS_PER_CLASS]
        result = oparaca.invoke(obj, "add", {"amount": 1}, raise_on_error=False)
        if result.ok:
            ok["Ledger"] += 1
            committed[obj] += 1
        else:
            failed["Ledger"] += 1
        pad = scratches[round_no % OBJECTS_PER_CLASS]
        result = oparaca.invoke(pad, "bump", raise_on_error=False)
        if result.ok:
            ok["Scratch"] += 1
        else:
            failed["Scratch"] += 1
        oparaca.advance(0.075)

    oparaca.advance(max(0.0, plan.end_s - oparaca.now) + 0.5)
    print(
        f"\nworkload: Ledger {ok['Ledger']} ok / {failed['Ledger']} failed; "
        f"Scratch {ok['Scratch']} ok / {failed['Scratch']} failed"
    )

    # No committed Ledger state was lost: every acknowledged `add`
    # survived the crash, the partition, and the node replacement.
    lost = 0
    for obj, expected in committed.items():
        balance = oparaca.get_object(obj)["state"]["balance"]
        if balance < expected:
            lost += 1
            print(f"  LOST STATE: {obj} balance={balance} < committed={expected}")
    print(f"committed-state check: {'OK' if lost == 0 else f'{lost} objects lost data'}")

    print("\nchaos summary:")
    summary = injector.summary()
    print(f"  injected={summary['injected']} recovered={summary['recovered']}")
    print(f"  fault_time_s={summary['fault_time_s']:.2f}")
    for cls, availability in sorted(summary["availability_under_fault"].items()):
        shown = "n/a" if availability is None else f"{availability:.4f}"
        print(f"  availability under fault [{cls}]: {shown}")

    snap = oparaca.snapshot()
    print(
        f"\nresilience: retries={snap['engine.fault_retries']:.0f} "
        f"timeouts={snap['engine.timeouts']:.0f} "
        f"stale_reads={snap['engine.stale_reads']:.0f} "
        f"open_breakers={snap['engine.open_breakers']:.0f}"
    )
    retry_events = len(oparaca.platform_events("resilience.retry"))
    chaos_events = len(oparaca.platform_events("chaos.inject"))
    print(f"events: {chaos_events} chaos injections, {retry_events} retries recorded")

    print("\nNFR compliance (note the availability_under_fault rows):")
    print(format_nfr_report(oparaca.nfr_report()))

    oparaca.shutdown()

    ledger_avail = summary["availability_under_fault"].get("Ledger")
    scratch_avail = summary["availability_under_fault"].get("Scratch")
    happy = (
        lost == 0
        and ledger_avail is not None
        and ledger_avail >= 0.999
        and (scratch_avail is None or scratch_avail < 0.999)
    )
    print(f"\nchaos demo {'PASSED' if happy else 'FAILED'}")
    return 0 if happy else 1


if __name__ == "__main__":
    raise SystemExit(main())

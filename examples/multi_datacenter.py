#!/usr/bin/env python3
"""Multi-datacenter federation — the paper's §VI future work, implemented.

"In the future, we plan to develop Oparaca to support application
deployment across multiple data centers, thereby unlocking the
opportunity for non-functional requirements such as latency and
jurisdiction."

This example runs the federation plane over a three-tier edge → regional
→ core topology, **twice with the same seed**, and exits nonzero unless
both runs land on a field-identical summary (CI runs it as the
determinism gate).  It shows:

* a jurisdiction-constrained class (``constraint: { jurisdiction: eu }``)
  whose state partitions and function pods are provably confined to EU
  zones, and whose latency NFR pins it to the edge tier;
* geo-routing: clients carry an origin zone, invocations route to the
  nearest eligible replica, and a cross-jurisdiction access is rejected
  with HTTP 451 and counted into the ``jurisdiction`` NFR verdict;
* a live migration drill: the record hands off from the edge site to
  the regional DC mid-workload, version-guarded and epoch-fenced, and
  every acknowledged write stays visible exactly once.

Run:  python examples/multi_datacenter.py [seed] [--json]
"""

from __future__ import annotations

import json
import sys
from typing import Any

from repro import Oparaca
from repro.federation import FederationConfig, Zone
from repro.platform.oparaca import PlatformConfig
from repro.sim.network import NetworkModel

PACKAGE = """
name: compliance-app
classes:
  - name: EuHealthRecord
    constraint:
      jurisdiction: eu             # GDPR-style data residency
    qos:
      latency: 25                  # pins the class to the edge tier
    keySpecs:
      - { name: subject, type: STR }
      - { name: entries, type: JSON, default: [] }
    functions:
      - { name: append, image: med/append }
  - name: PublicDataset
    keySpecs:
      - { name: rows, type: INT, default: 0 }
    functions:
      - { name: ingest, image: med/ingest }
"""

ZONES = (
    Zone("eu-edge", tier="edge", region="eu", parent="eu-region"),
    Zone("eu-region", tier="regional", region="eu", parent="core"),
    Zone("core", tier="core"),
)
ZONE_RTT_S = (
    ("eu-edge", "eu-region", 0.015),
    ("eu-edge", "core", 0.08),
    ("eu-region", "core", 0.03),
)


def build_platform(seed: int) -> Oparaca:
    platform = Oparaca(
        PlatformConfig(
            seed=seed,
            nodes=6,
            regions=("eu-edge", "eu-region", "core"),
            network=NetworkModel(rtt_s=0.0005, inter_region_rtt_s=0.08),
            federation=FederationConfig(
                enabled=True, zones=ZONES, zone_rtt_s=ZONE_RTT_S
            ),
        )
    )

    @platform.function("med/append", service_time_s=0.002)
    def append(ctx):
        entries = list(ctx.state.get("entries") or [])
        entries.append(ctx.payload["entry"])
        ctx.state["entries"] = entries
        return {"count": len(entries)}

    @platform.function("med/ingest", service_time_s=0.002)
    def ingest(ctx):
        ctx.state["rows"] = int(ctx.state.get("rows") or 0) + int(ctx.payload["rows"])
        return {"rows": ctx.state["rows"]}

    platform.deploy(PACKAGE)
    return platform


def timed_invoke(platform: Oparaca, oid: str, fn: str, body: dict, origin: str):
    started = platform.now
    response = platform.http(
        "POST",
        f"/api/objects/{oid}/invokes/{fn}",
        body,
        headers={"x-origin-zone": origin},
    )
    return response, (platform.now - started) * 1000.0


def run_demo(seed: int) -> dict[str, Any]:
    """One seeded pass; every field of the returned summary must be
    identical run-to-run at one seed."""
    platform = build_platform(seed)
    planner = platform.federation.planner
    summary: dict[str, Any] = {"seed": seed}

    summary["zones"] = {
        node: platform.cluster.region_of(node)
        for node in platform.cluster.node_names
    }
    eu_dht = platform.crm.dht_for("EuHealthRecord")
    summary["eu_state_nodes"] = sorted(eu_dht.nodes)
    summary["public_state_nodes"] = sorted(
        platform.crm.dht_for("PublicDataset").nodes
    )

    record = platform.new_object(
        "EuHealthRecord", {"subject": "patient-7"}, object_id="rec-7"
    )
    acked = 0
    for i in range(3):
        response, _ = timed_invoke(
            platform, record, "append", {"entry": f"visit-{i}"}, "eu-edge"
        )
        acked += response.status == 200
    service = platform.crm.runtime("EuHealthRecord").services["append"]
    pod_nodes = sorted({pod.node for pod in service.deployment.pods})
    summary["pod_nodes"] = pod_nodes
    summary["pod_jurisdictions"] = sorted(
        {planner.zone_of_node(n).region for n in pod_nodes}
    )
    owner = eu_dht.owner(record)
    summary["owner_zone"] = planner.zone_of_node(owner).name

    # Geo-routing: the edge-pinned record from its own site vs the
    # core-consolidated dataset from the same site.
    dataset = platform.new_object("PublicDataset", object_id="ds-1")
    timed_invoke(platform, dataset, "ingest", {"rows": 1}, "eu-edge")  # warm
    _, edge_ms = timed_invoke(
        platform, record, "append", {"entry": "local"}, "eu-edge"
    )
    acked += 1
    _, core_ms = timed_invoke(
        platform, dataset, "ingest", {"rows": 10}, "eu-edge"
    )
    summary["edge_local_ms"] = round(edge_ms, 3)
    summary["edge_to_core_ms"] = round(core_ms, 3)

    # Jurisdiction: the same record accessed from outside the EU.
    rejected, _ = timed_invoke(
        platform, record, "append", {"entry": "intruder"}, "core"
    )
    summary["cross_jurisdiction_status"] = rejected.status
    summary["cross_jurisdiction_error"] = rejected.body.get("type")

    # Live migration drill: hand the record off to the regional DC,
    # keep writing, and audit exactly-once visibility.
    migration = platform.migrate_object(record, "eu-region", cls="EuHealthRecord")
    summary["migration"] = {
        "source_zone": migration["source_zone"],
        "target_zone": migration["target_zone"],
        "version": migration["version"],
        "epoch": migration["epoch"],
        "duration_ms": round(migration["duration_s"] * 1000.0, 3),
    }
    summary["owner_zone_after"] = planner.zone_of_node(eu_dht.owner(record)).name
    for i in range(3):
        response, _ = timed_invoke(
            platform, record, "append", {"entry": f"post-{i}"}, "eu-region"
        )
        acked += response.status == 200
    entries = platform.get_object(record)["state"]["entries"]
    summary["acked_appends"] = acked
    summary["surviving_entries"] = len(entries)

    verdicts = platform.nfr_report()
    summary["jurisdiction_verdicts"] = [
        {"cls": v.cls, "observed": v.observed, "met": v.met}
        for v in verdicts
        if v.requirement == "jurisdiction"
    ]
    summary["federation"] = {
        key: platform.federation_report()[key]
        for key in ("migrations_total", "rejections_total", "cross_zone_total")
    }
    platform.shutdown()
    return summary


def main() -> int:
    argv = [arg for arg in sys.argv[1:] if arg != "--json"]
    as_json = "--json" in sys.argv[1:]
    seed = int(argv[0]) if argv else 11

    first = run_demo(seed)
    second = run_demo(seed)

    if as_json:
        print(json.dumps({**first, "deterministic": first == second}, indent=2))
    else:
        print(f"=== three-tier federation demo (seed {seed}) ===")
        print("node zones:")
        for node, zone in first["zones"].items():
            print(f"  {node}: {zone}")
        print(f"\nEuHealthRecord state nodes: {first['eu_state_nodes']}")
        print(f"PublicDataset state nodes:  {first['public_state_nodes']}")
        print(
            f"append() replicas run on {first['pod_nodes']} "
            f"(jurisdictions: {first['pod_jurisdictions']})"
        )
        print(f"record owner zone: {first['owner_zone']}")
        print(
            f"\nedge-origin invoke, edge-pinned record:   "
            f"{first['edge_local_ms']:.2f} ms"
        )
        print(
            f"edge-origin invoke, core-placed dataset:  "
            f"{first['edge_to_core_ms']:.2f} ms"
        )
        print(
            f"\naccess from 'core' origin rejected: HTTP "
            f"{first['cross_jurisdiction_status']} "
            f"({first['cross_jurisdiction_error']})"
        )
        mig = first["migration"]
        print(
            f"\nlive migration: {mig['source_zone']} -> {mig['target_zone']} "
            f"at version {mig['version']} (epoch {mig['epoch']}, "
            f"{mig['duration_ms']:.1f} ms)"
        )
        print(f"owner zone after migration: {first['owner_zone_after']}")
        print(
            f"exactly-once audit: {first['acked_appends']} acked appends, "
            f"{first['surviving_entries']} surviving entries"
        )
        for verdict in first["jurisdiction_verdicts"]:
            state = "met" if verdict["met"] else "VIOLATED"
            print(
                f"jurisdiction verdict [{verdict['cls']}]: "
                f"{int(verdict['observed'])} rejection(s) counted -> {state}"
            )

    failures = []
    if first != second:
        changed = sorted(
            key for key in first if first.get(key) != second.get(key)
        )
        failures.append(f"summaries differ between runs: {changed}")
    if first["acked_appends"] != first["surviving_entries"]:
        failures.append(
            f"exactly-once audit failed: {first['acked_appends']} acked vs "
            f"{first['surviving_entries']} surviving"
        )
    if first["cross_jurisdiction_status"] != 451:
        failures.append("cross-jurisdiction access was not rejected with 451")
    if first["owner_zone_after"] != "eu-region":
        failures.append("migration did not land the record in eu-region")
    if any(verdict["observed"] == 0 for verdict in first["jurisdiction_verdicts"]):
        failures.append("jurisdiction verdict counted no rejections")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print("\nmulti-datacenter demo FAILED", file=sys.stderr)
        return 1
    if not as_json:
        print("\nmulti-datacenter demo complete.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

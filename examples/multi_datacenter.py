#!/usr/bin/env python3
"""Multi-datacenter deployment — the paper's §VI future work, implemented.

"In the future, we plan to develop Oparaca to support application
deployment across multiple data centers, thereby unlocking the
opportunity for non-functional requirements such as latency and
jurisdiction."

This example runs a platform spanning two regions and shows:

* a jurisdiction-constrained class (``constraint: { jurisdiction:
  eu-west }``) whose state partitions and function pods are provably
  confined to EU nodes;
* the latency gap between same-region and cross-region access, and how
  locality routing keeps a constrained class's state traffic inside its
  region.

Run:  python examples/multi_datacenter.py
"""

from repro import Oparaca
from repro.platform.oparaca import PlatformConfig
from repro.sim.network import NetworkModel

PACKAGE = """
name: compliance-app
classes:
  - name: EuHealthRecord
    constraint:
      jurisdiction: eu-west        # GDPR-style data residency
    qos:
      latency: 100
    keySpecs:
      - { name: subject, type: STR }
      - { name: entries, type: JSON, default: [] }
    functions:
      - { name: append, image: med/append }
  - name: PublicDataset
    keySpecs:
      - { name: rows, type: INT, default: 0 }
    functions:
      - { name: ingest, image: med/ingest }
"""


def main() -> None:
    platform = Oparaca(
        PlatformConfig(
            nodes=6,
            regions=("us-east", "eu-west"),
            network=NetworkModel(rtt_s=0.0005, inter_region_rtt_s=0.08),
        )
    )

    @platform.function("med/append", service_time_s=0.002)
    def append(ctx):
        entries = list(ctx.state.get("entries") or [])
        entries.append(ctx.payload["entry"])
        ctx.state["entries"] = entries
        return {"count": len(entries)}

    @platform.function("med/ingest", service_time_s=0.002)
    def ingest(ctx):
        ctx.state["rows"] = int(ctx.state.get("rows") or 0) + int(ctx.payload["rows"])
        return {"rows": ctx.state["rows"]}

    platform.deploy(PACKAGE)

    print("cluster regions:")
    for node in platform.cluster.node_names:
        print(f"  {node}: {platform.cluster.region_of(node)}")

    # The constrained class only occupies EU nodes.
    eu_dht = platform.crm.dht_for("EuHealthRecord")
    print(f"\nEuHealthRecord state nodes: {list(eu_dht.nodes)}")
    global_dht = platform.crm.dht_for("PublicDataset")
    print(f"PublicDataset state nodes:  {list(global_dht.nodes)}")

    record = platform.new_object("EuHealthRecord", {"subject": "patient-7"})
    for i in range(3):
        platform.invoke(record, "append", {"entry": f"visit-{i}"})
    service = platform.crm.runtime("EuHealthRecord").services["append"]
    pod_nodes = sorted({pod.node for pod in service.deployment.pods})
    pod_regions = sorted({platform.cluster.region_of(n) for n in pod_nodes})
    print(f"\nappend() replicas run on {pod_nodes} (regions: {pod_regions})")
    print(f"record owner node: {eu_dht.owner(record)} "
          f"({platform.cluster.region_of(eu_dht.owner(record))})")

    # Latency: same-region vs cross-region access to the record's owner.
    owner = eu_dht.owner(record)
    same_region_node = next(
        n for n in platform.cluster.node_names
        if platform.cluster.region_of(n) == "eu-west" and n != owner
    )
    other_region_node = next(
        n for n in platform.cluster.node_names
        if platform.cluster.region_of(n) == "us-east"
    )

    def timed_get(caller):
        start = platform.now
        platform.run(eu_dht.get(record, caller=caller))
        return (platform.now - start) * 1000.0

    print(f"\nstate read from eu-west peer:  {timed_get(same_region_node):.2f} ms")
    print(f"state read from us-east node:  {timed_get(other_region_node):.2f} ms")

    before = platform.network.cross_region_transfers
    for i in range(5):
        platform.invoke(record, "append", {"entry": f"extra-{i}"})
    print(
        f"\ncross-region transfers during 5 constrained invocations: "
        f"{platform.network.cross_region_transfers - before} "
        "(locality routing keeps state traffic in-region)"
    )

    platform.shutdown()
    print("\nmulti-datacenter demo complete.")


if __name__ == "__main__":
    main()

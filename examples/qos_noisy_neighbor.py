#!/usr/bin/env python3
"""QoS enforcement plane — the noisy-neighbour experiment, twice.

Runs the ABL-QOS scenario (a latency-declared ``Hot`` class sharing the
async invocation path with a flooding ``Noisy`` batch class) under the
builtin ``overload`` chaos plan, with the QoS plane on, **two times
with the same seed** — and exits nonzero unless both runs land on
byte-identical outcomes.  Shedding is a drastic intervention; if the
overload controller's victims varied run-to-run at one seed, every
chaos experiment above it would stop being reproducible.  CI runs this
script as the determinism gate.

Also prints the FIFO-baseline row next to the enforced row, so the
plane's effect (Hot's p95 held vs blown, Noisy shed vs unbounded queue)
is visible in the output.

Run:  python examples/qos_noisy_neighbor.py [seed]
"""

from __future__ import annotations

import sys

from repro.bench.ablations import run_qos_ablation


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7

    print(f"=== noisy neighbour, plane off vs on (seed {seed}, no chaos) ===")
    for row in run_qos_ablation(seed=seed):
        verdict = "met" if row.hot_met else "VIOLATED"
        print(
            f"  {row.mode:<5} hot p95 {row.hot_p95_ms:8.1f} ms "
            f"(target {row.hot_target_ms:.0f} ms, {verdict})  "
            f"hot ok={row.hot_completed}  noisy ok={row.noisy_completed} "
            f"rejected={row.noisy_rejected} shed={row.noisy_shed}"
        )

    print(f"\n=== determinism gate: 'overload' chaos plan, twice at seed {seed} ===")
    first = run_qos_ablation(modes=("qos",), chaos=True, seed=seed)[0]
    second = run_qos_ablation(modes=("qos",), chaos=True, seed=seed)[0]
    for label, row in (("run 1", first), ("run 2", second)):
        print(
            f"  {label}: hot p95 {row.hot_p95_ms:.4f} ms  "
            f"hot ok={row.hot_completed}  noisy ok={row.noisy_completed} "
            f"rejected={row.noisy_rejected} shed={row.noisy_shed}"
        )
    if first != second:
        print("FAIL: shed decisions are nondeterministic at a fixed seed")
        return 1
    print(f"OK: both runs identical ({first.noisy_shed} noisy invocations shed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""IoT device fleet — the paper's §II-D extension of the object idea.

"We can treat the IoT device as an object that exposes various
functions for reconfiguring or accessing the device's capabilities."

This example models a fleet of sensor devices as OaaS objects:

* ``Sensor`` objects ingest telemetry at high rate.  Their class
  declares ``persistent: false`` — telemetry is a rolling window nobody
  needs after a crash — so template selection puts them on the
  in-memory-ephemeral runtime (no DB writes at all).
* ``Device`` objects carry the device's *configuration*, which must be
  durable and quick to change; their latency bound selects the
  pre-warmed low-latency template.
* Telemetry flows in asynchronously through the invocation queue,
  serialized per device by key partitioning.

Run:  python examples/iot_fleet.py
"""

from repro import Oparaca
from repro.platform.oparaca import PlatformConfig

PACKAGE = """
name: iot
classes:
  - name: Device
    qos:
      latency: 50        # ms, p99 — selects the pre-warmed template
    keySpecs:
      - { name: firmware, type: STR, default: "1.0.0" }
      - { name: sample_rate_hz, type: INT, default: 10 }
      - { name: enabled, type: BOOL, default: true }
    functions:
      - name: reconfigure
        image: iot/reconfigure
      - name: upgrade
        image: iot/upgrade
  - name: Sensor
    constraint:
      persistent: false   # rolling telemetry: in-memory runtime
    keySpecs:
      - { name: window, type: JSON, default: [] }
      - { name: count, type: INT, default: 0 }
      - { name: mean, type: FLOAT, default: 0.0 }
    functions:
      - name: ingest
        image: iot/ingest
      - name: summarize
        image: iot/summarize
        mutable: false
"""


def main() -> None:
    oparaca = Oparaca(PlatformConfig(nodes=3))

    @oparaca.function("iot/reconfigure", service_time_s=0.002)
    def reconfigure(ctx):
        for key in ("sample_rate_hz", "enabled"):
            if key in ctx.payload:
                ctx.state[key] = ctx.payload[key]
        return {"applied": True, "sample_rate_hz": ctx.state["sample_rate_hz"]}

    @oparaca.function("iot/upgrade", service_time_s=0.05)
    def upgrade(ctx):
        ctx.state["firmware"] = str(ctx.payload["version"])
        return {"firmware": ctx.state["firmware"]}

    @oparaca.function("iot/ingest", service_time_s=0.0005)
    def ingest(ctx):
        window = list(ctx.state.get("window") or [])[-19:]
        window.append(float(ctx.payload["value"]))
        count = int(ctx.state.get("count") or 0) + 1
        ctx.state["window"] = window
        ctx.state["count"] = count
        ctx.state["mean"] = sum(window) / len(window)
        return {"count": count}

    @oparaca.function("iot/summarize", service_time_s=0.001)
    def summarize(ctx):
        window = list(ctx.state.get("window") or [])
        return {
            "count": ctx.state.get("count", 0),
            "mean": ctx.state.get("mean", 0.0),
            "min": min(window) if window else None,
            "max": max(window) if window else None,
        }

    oparaca.deploy(PACKAGE)
    print("template selection by NFR:")
    for runtime in oparaca.describe():
        print(
            f"  {runtime['class']:>7}: {runtime['template']!r} "
            f"(engine={runtime['engine']}, persistent={runtime['persistent']})"
        )

    # Provision a small fleet: each device pairs a config object with a
    # telemetry object.
    fleet = []
    for index in range(8):
        device = oparaca.new_object("Device")
        sensor = oparaca.new_object("Sensor")
        fleet.append((device, sensor))
    print(f"\nprovisioned {len(fleet)} devices")

    # Telemetry pours in asynchronously; the queue serializes updates
    # per object, so no ingest ever loses a CAS race with itself.
    completions = []
    for round_index in range(25):
        for device_index, (_, sensor) in enumerate(fleet):
            value = 20.0 + device_index + 0.1 * round_index
            completions.append(oparaca.invoke_async(sensor, "ingest", {"value": value}))
    from repro.sim.kernel import all_of

    oparaca.run(all_of(oparaca.env, completions))
    print(f"ingested {len(completions)} samples through the async queue")

    summary = oparaca.invoke(fleet[0][1], "summarize").output
    print(f"sensor 0 summary: {summary}")

    # Reconfigure a device in response (config is durable).
    result = oparaca.invoke(fleet[0][0], "reconfigure", {"sample_rate_hz": 50})
    print(f"device 0 reconfigure -> {result.output}")

    # The ephemeral class wrote nothing to the database; the durable one did.
    oparaca.flush()
    sensor_docs = oparaca.store.count("objects.Sensor")
    device_docs = oparaca.store.count("objects.Device")
    print(f"\nDB documents: Sensor={sensor_docs} (ephemeral), Device={device_docs} (durable)")

    # Every class runtime is metered; the optimizer uses these numbers
    # to enforce `constraint: { budget: ... }`.
    print("\ncost report (accrued / projected monthly):")
    for row in oparaca.cost_report():
        print(
            f"  {row['class']:>7}: ${row['accrued_usd']:.6f} accrued, "
            f"${row['monthly_run_rate_usd']:.2f}/month at current shape"
        )

    oparaca.shutdown()
    print("fleet demo complete.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart — the tutorial's Listing 1, end to end.

Walks the six tutorial steps (§IV) against an in-process platform:
install (construct), define functions, define classes in YAML, deploy,
interact with objects (create / invoke / inherit / override), and read
back how each class's non-functional requirements selected its runtime
template.

Run:  python examples/quickstart.py
"""

from repro import Oparaca

# Step 4 of the tutorial: the YAML class definition — a faithful,
# slightly extended version of the paper's Listing 1.
PACKAGE = """
name: image-app
classes:
  - name: Image
    qos:
      throughput: 100
    constraint:
      persistent: true
    keySpecs:
      - name: image            # File Image (unstructured, in object store)
        type: FILE
      - name: width
        type: INT
        default: 1024
      - name: format
        type: STR
        default: png
    functions:
      - name: resize
        image: img/resize          # container image
      - name: changeFormat
        image: img/change-format
  - name: LabelledImage
    parent: Image
    keySpecs:
      - name: labels
        type: JSON
        default: []
    functions:
      - name: detectObject
        image: img/detect-object
"""


def main() -> None:
    # Step 1: "install" the platform (3 worker VMs, like the smallest
    # Fig. 3 cluster).
    oparaca = Oparaca()

    # Step 3: create functions.  Images are Python handlers here; the
    # pure-function contract is identical to the paper's: state comes in
    # with the task, modified state goes back in the response.
    @oparaca.function("img/resize", service_time_s=0.004)
    def resize(ctx):
        ctx.state["width"] = int(ctx.payload["width"])
        return {"resized_to": ctx.state["width"]}

    @oparaca.function("img/change-format", service_time_s=0.002)
    def change_format(ctx):
        ctx.state["format"] = str(ctx.payload["format"])
        return {"format": ctx.state["format"]}

    @oparaca.function("img/detect-object", service_time_s=0.02)
    def detect_object(ctx):
        labels = ["cat", "laptop"] if ctx.state.get("width", 0) >= 512 else ["cat"]
        ctx.state["labels"] = labels
        return {"labels": labels}

    # Step 5: deploy the class definitions.
    oparaca.deploy(PACKAGE)
    print("deployed class runtimes:")
    for runtime in oparaca.describe():
        print(
            f"  {runtime['class']:>14}: template={runtime['template']!r} "
            f"engine={runtime['engine']} persistent={runtime['persistent']}"
        )

    # Interact with objects.
    image = oparaca.new_object("Image", {"width": 640})
    print(f"\ncreated {image}")
    result = oparaca.invoke(image, "resize", {"width": 800})
    print(f"resize -> {result.output}")
    result = oparaca.invoke(image, "changeFormat", {"format": "webp"})
    print(f"changeFormat -> {result.output}")
    print(f"state now: {oparaca.get_object(image)['state']}")

    # Unstructured data through presigned URLs (§III-D).
    key = oparaca.upload_file(image, "image", b"\x89PNG...pretend-image-bytes")
    print(f"\nuploaded file -> object-store key {key}")
    print(f"downloaded {len(oparaca.download_file(image, 'image'))} bytes back")

    # Inheritance and polymorphism: LabelledImage reuses Image's
    # functions and adds its own.
    labelled = oparaca.new_object("LabelledImage", {"width": 2048})
    oparaca.invoke(labelled, "resize", {"width": 512})            # inherited
    result = oparaca.invoke(labelled, "detectObject")              # own
    print(f"\nLabelledImage.detectObject -> {result.output}")
    # A LabelledImage can be used wherever an Image is expected:
    result = oparaca.invoke(labelled, "changeFormat", {"format": "jpeg"}, cls="Image")
    print(f"as-an-Image changeFormat -> {result.output}")

    # The REST gateway exposes the same operations (tutorial step 2).
    response = oparaca.http("GET", f"/api/objects/{labelled}")
    print(f"\nGET /api/objects/... -> {response.status}: state={response.body['state']}")

    oparaca.shutdown()
    print("\nquickstart complete.")


if __name__ == "__main__":
    main()

"""Unit tests for simulation queueing primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.resources import Container, Gate, RateLimiter, Resource, Store


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Resource(env, 0)

    def test_grants_up_to_capacity_immediately(self, env):
        res = Resource(env, 2)
        grants = []

        def worker(env, tag):
            yield res.request()
            grants.append((tag, env.now))
            yield env.timeout(1)
            res.release()

        for tag in range(3):
            env.process(worker(env, tag))
        env.run()
        assert grants == [(0, 0.0), (1, 0.0), (2, 1.0)]

    def test_fifo_order(self, env):
        res = Resource(env, 1)
        order = []

        def worker(env, tag):
            yield res.request()
            order.append(tag)
            yield env.timeout(1)
            res.release()

        for tag in range(4):
            env.process(worker(env, tag))
        env.run()
        assert order == [0, 1, 2, 3]

    def test_release_without_request_raises(self, env):
        res = Resource(env, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_queue_length(self, env):
        res = Resource(env, 1)

        def holder(env):
            yield res.request()
            yield env.timeout(10)
            res.release()

        def waiter(env):
            yield res.request()
            res.release()

        env.process(holder(env))
        env.process(waiter(env))
        env.run(until=1.0)
        assert res.queue_length == 1
        assert res.in_use == 1

    def test_resize_up_wakes_waiters(self, env):
        res = Resource(env, 1)
        grants = []

        def worker(env, tag):
            yield res.request()
            grants.append((tag, env.now))
            yield env.timeout(5)
            res.release()

        for tag in range(3):
            env.process(worker(env, tag))

        def resize_later(env):
            yield env.timeout(1)
            res.resize(3)

        env.process(resize_later(env))
        env.run()
        assert grants == [(0, 0.0), (1, 1.0), (2, 1.0)]

    def test_resize_down_does_not_evict(self, env):
        res = Resource(env, 2)

        def holder(env):
            yield res.request()
            yield env.timeout(5)
            res.release()

        env.process(holder(env))
        env.process(holder(env))
        env.run(until=1)
        res.resize(1)
        assert res.in_use == 2  # drains as holders release
        env.run()
        assert res.in_use <= res.capacity

    def test_release_after_shrink_retires_slot_not_waiter(self, env):
        # Regression: with waiters queued, release() used to hand the
        # freed slot straight to a waiter even when a resize() shrink
        # had left in_use > capacity — the pool never drained and
        # scale-down silently never took effect under queueing.
        res = Resource(env, 2)
        grants = []

        def worker(env, tag, hold):
            yield res.request()
            grants.append((tag, env.now))
            yield env.timeout(hold)
            res.release()

        def shrink(env):
            yield env.timeout(0.5)
            res.resize(1)

        env.process(worker(env, "h0", 1.0))
        env.process(worker(env, "h1", 2.0))
        env.process(worker(env, "w0", 0.0))
        env.process(worker(env, "w1", 0.0))
        env.process(shrink(env))
        env.run()
        assert grants[:2] == [("h0", 0.0), ("h1", 0.0)]
        # h0's release at t=1 must retire the over-capacity slot, so the
        # waiters are only admitted after h1 releases at t=2 — and then
        # one at a time through the single remaining slot.
        assert grants[2:] == [("w0", 2.0), ("w1", 2.0)]
        assert res.in_use == 0
        assert res.capacity == 1


class TestContainer:
    def test_validation(self, env):
        with pytest.raises(SimulationError):
            Container(env, 0)
        with pytest.raises(SimulationError):
            Container(env, 10, initial=20)

    def test_get_blocks_until_put(self, env):
        box = Container(env, 100, initial=0)
        times = []

        def getter(env):
            yield box.get(30)
            times.append(env.now)

        def putter(env):
            yield env.timeout(2)
            box.put(50)

        env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert times == [2.0]
        assert box.level == 20

    def test_get_more_than_capacity_rejected(self, env):
        box = Container(env, 10)
        with pytest.raises(SimulationError):
            box.get(11)

    def test_put_caps_at_capacity(self, env):
        box = Container(env, 10, initial=5)
        box.put(100)
        assert box.level == 10

    def test_fifo_waiters_no_starvation(self, env):
        box = Container(env, 100, initial=0)
        order = []

        def getter(env, amount, tag):
            yield box.get(amount)
            order.append(tag)

        env.process(getter(env, 60, "big"))
        env.process(getter(env, 10, "small"))

        def feeder(env):
            yield env.timeout(1)
            box.put(30)  # not enough for 'big'; 'small' must still wait (FIFO)
            yield env.timeout(1)
            box.put(40)

        env.process(feeder(env))
        env.run()
        assert order == ["big", "small"]


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("a")

        def getter(env):
            item = yield store.get()
            return item

        assert env.run(until=env.process(getter(env))) == "a"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def getter(env):
            item = yield store.get()
            got.append((item, env.now))

        def putter(env):
            yield env.timeout(3)
            store.put("x")

        env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert got == [("x", 3.0)]

    def test_fifo_item_order(self, env):
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)

        def getter(env):
            items = []
            for _ in range(3):
                items.append((yield store.get()))
            return items

        assert env.run(until=env.process(getter(env))) == [1, 2, 3]

    def test_len_and_drain(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.drain() == [1, 2]
        assert len(store) == 0


class TestRateLimiter:
    def test_rate_validation(self, env):
        with pytest.raises(SimulationError):
            RateLimiter(env, 0)

    def test_serial_service_time(self, env):
        limiter = RateLimiter(env, rate=10)

        def work(env):
            for _ in range(5):
                yield limiter.acquire(2)
            return env.now

        # 5 acquisitions x 2 units at 10 units/s = 1.0s
        assert env.run(until=env.process(work(env))) == pytest.approx(1.0)

    def test_backlog_grows_when_oversubscribed(self, env):
        limiter = RateLimiter(env, rate=1)
        for _ in range(10):
            limiter.acquire(1)
        assert limiter.backlog_seconds == pytest.approx(10.0)

    def test_idle_time_not_counted(self, env):
        limiter = RateLimiter(env, rate=10)

        def work(env):
            yield limiter.acquire(1)
            yield env.timeout(5)  # idle gap
            yield limiter.acquire(1)
            return env.now

        assert env.run(until=env.process(work(env))) == pytest.approx(5.2)

    def test_utilization(self, env):
        limiter = RateLimiter(env, rate=10)

        def work(env):
            yield limiter.acquire(10)  # 1s busy

        env.run(until=env.process(work(env)))
        env.run(until=2.0)
        assert limiter.utilization(2.0) == pytest.approx(0.5)

    def test_zero_units_is_free(self, env):
        limiter = RateLimiter(env, rate=1)

        def work(env):
            yield limiter.acquire(0)
            return env.now

        assert env.run(until=env.process(work(env))) == 0.0


class TestGate:
    def test_fire_wakes_all_waiters(self, env):
        gate = Gate(env)
        woken = []

        def waiter(env, tag):
            value = yield gate.wait()
            woken.append((tag, value, env.now))

        for tag in range(3):
            env.process(waiter(env, tag))

        def firer(env):
            yield env.timeout(2)
            count = gate.fire("go")
            assert count == 3

        env.process(firer(env))
        env.run()
        assert woken == [(0, "go", 2.0), (1, "go", 2.0), (2, "go", 2.0)]

    def test_fire_with_no_waiters(self, env):
        gate = Gate(env)
        assert gate.fire() == 0

    def test_waiters_after_fire_wait_for_next(self, env):
        gate = Gate(env)
        gate.fire()
        woken = []

        def waiter(env):
            yield gate.wait()
            woken.append(env.now)

        env.process(waiter(env))
        env.run()
        assert woken == []  # previous fire does not satisfy a new wait

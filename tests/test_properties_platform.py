"""Property-based tests at the platform level (hypothesis)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crm.template import default_catalog
from repro.model.nfr import Constraint, NonFunctionalRequirements, QosRequirement
from repro.platform.oparaca import Oparaca, PlatformConfig

state_keys = st.sampled_from(["width", "format"])
widths = st.integers(-10_000, 10_000)


def build_platform():
    platform = Oparaca(PlatformConfig(nodes=3))

    @platform.function("p/set-width")
    def set_width(ctx):
        ctx.state["width"] = int(ctx.payload["width"])
        return {}

    platform.deploy(
        """
classes:
  - name: T
    keySpecs:
      - { name: width, type: INT, default: 0 }
      - { name: format, type: STR, default: png }
    functions:
      - { name: setWidth, image: p/set-width }
"""
    )
    return platform


class TestVersionMonotonicity:
    @given(
        operations=st.lists(
            st.one_of(
                st.tuples(st.just("invoke"), widths),
                st.tuples(st.just("update"), widths),
                st.tuples(st.just("get"), st.just(0)),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_version_strictly_increases_on_writes(self, operations):
        platform = build_platform()
        obj = platform.new_object("T")
        last_version = platform.get_object(obj)["version"]
        last_width = platform.get_object(obj)["state"]["width"]
        for op, value in operations:
            if op == "invoke":
                platform.invoke(obj, "setWidth", {"width": value})
            elif op == "update":
                platform.update_object(obj, {"width": value})
            record = platform.get_object(obj)
            version = record["version"]
            if op == "get":
                assert version == last_version
            elif op == "invoke" and value == last_width:
                # A handler writing the identical value produces no state
                # diff, so the platform skips the commit entirely.
                assert version == last_version
            else:
                assert version > last_version
            last_version = version
            last_width = record["state"]["width"]

    @given(final=widths)
    @settings(max_examples=20, deadline=None)
    def test_last_write_wins(self, final):
        platform = build_platform()
        obj = platform.new_object("T")
        platform.invoke(obj, "setWidth", {"width": 1})
        platform.invoke(obj, "setWidth", {"width": final})
        assert platform.get_object(obj)["state"]["width"] == final
        platform.flush()
        durable = platform.store.get_sync("objects.T", obj)
        assert durable["state"]["width"] == final


nfr_strategy = st.builds(
    NonFunctionalRequirements,
    qos=st.builds(
        QosRequirement,
        throughput_rps=st.none() | st.floats(1, 1e5),
        availability=st.none() | st.floats(0.5, 1.0, exclude_min=True),
        latency_ms=st.none() | st.floats(1, 1e4),
    ),
    constraint=st.builds(
        Constraint,
        persistent=st.booleans(),
        budget_usd_per_month=st.none() | st.floats(1, 1e6),
    ),
)


class TestCatalogProperties:
    @given(nfr=nfr_strategy)
    @settings(max_examples=100)
    def test_default_catalog_always_selects_something(self, nfr):
        template = default_catalog().select(nfr)
        assert template.selector.matches(nfr)

    @given(nfr=nfr_strategy)
    @settings(max_examples=100)
    def test_selection_is_deterministic(self, nfr):
        assert default_catalog().select(nfr).name == default_catalog().select(nfr).name

    @given(nfr=nfr_strategy)
    @settings(max_examples=100)
    def test_selection_is_highest_priority_match(self, nfr):
        catalog = default_catalog()
        chosen = catalog.select(nfr)
        for template in catalog.templates:
            if template.selector.matches(nfr):
                assert template.priority <= chosen.priority


class TestIdempotentReads:
    @given(repeats=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_get_never_changes_state(self, repeats):
        platform = build_platform()
        obj = platform.new_object("T", {"width": 7})
        snapshots = [platform.get_object(obj) for _ in range(repeats)]
        assert all(s == snapshots[0] for s in snapshots)

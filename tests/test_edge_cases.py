"""Edge-case coverage across less-travelled code paths."""

import json

import pytest

from repro.errors import UnknownFunctionError
from repro.platform.oparaca import Oparaca, PlatformConfig

from tests.conftest import LISTING1_YAML, register_image_handlers


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestDeployInputs:
    def test_deploy_json_text(self, bare_platform):
        doc = {"name": "j", "classes": [{"name": "T"}]}
        runtimes = bare_platform.deploy(json.dumps(doc))
        assert runtimes[0].cls == "T"

    def test_deploy_path_string(self, tmp_path, bare_platform):
        register_image_handlers(bare_platform)
        path = tmp_path / "pkg.yaml"
        path.write_text(LISTING1_YAML)
        runtimes = bare_platform.deploy(str(path))
        assert len(runtimes) == 2


class TestInheritedServiceFallback:
    def test_parent_runtime_serves_after_child_service_removed(self, platform):
        """The directory falls back to an ancestor's service when the
        child runtime lost its own (undeploy/redeploy edge)."""
        child = platform.crm.runtime("LabelledImage")
        removed = child.services.pop("resize")
        platform.crm.knative.delete(removed.name)
        svc = platform.crm.service_for("LabelledImage", "resize")
        assert svc is platform.crm.runtime("Image").services["resize"]
        obj = platform.new_object("LabelledImage")
        assert platform.invoke(obj, "resize", {"width": 3}).ok

    def test_no_fallback_for_truly_unknown(self, platform):
        with pytest.raises(UnknownFunctionError):
            platform.crm.service_for("LabelledImage", "nonexistent")


class TestGatewayCreateWithId:
    def test_create_with_custom_id_via_rest(self, platform):
        response = platform.http(
            "POST", "/api/classes/Image", {"id": "rest-made", "state": {"width": 1}}
        )
        assert response.status == 201
        assert response.body["id"] == "Image~rest-made"


class TestEngineLifecycle:
    def test_knative_delete_stops_autoscaler(self, platform):
        service = platform.crm.runtime("Image").services["resize"]
        platform.crm.knative.delete(service.name)
        assert not service._running
        assert service.deployment.replicas == 0

    def test_router_recovers_after_topology_change(self):
        from repro.crm.template import ClassRuntimeTemplate, RuntimeConfig, TemplateCatalog
        from repro.invoker.router import PlacementPolicy

        catalog = TemplateCatalog(
            [
                ClassRuntimeTemplate(
                    name="rr",
                    config=RuntimeConfig(
                        engine="deployment",
                        placement=PlacementPolicy.ROUND_ROBIN,
                        min_scale_override=1,
                    ),
                )
            ]
        )
        platform = Oparaca(PlatformConfig(nodes=4, catalog=catalog))
        platform.register_image("e/f", lambda ctx: {})
        platform.deploy(
            "classes:\n  - name: T\n    functions: [{name: f, image: e/f}]\n"
        )
        objects = [platform.new_object("T") for _ in range(4)]
        platform.advance(3.0)
        platform.fail_node(platform.cluster.node_names[0])
        for obj in objects:
            assert platform.invoke(obj, "f", raise_on_error=False).ok


class TestAsyncQueueDetails:
    def test_pending_counts_unconsumed(self, platform):
        obj = platform.new_object("Image")
        events = [platform.invoke_async(obj, "resize", {"width": i}) for i in range(3)]
        # Nothing consumed yet (no time has passed).
        assert platform.queue.pending >= 0
        from repro.sim.kernel import all_of

        platform.run(all_of(platform.env, events))
        assert platform.queue.pending == 0

    def test_unknown_result_is_none(self, platform):
        assert platform.queue.result("never-submitted") is None


class TestFigHelpers:
    def test_fig1_speedup_zero_division(self):
        from repro.bench.abstraction import Fig1Result

        result = Fig1Result(3, 1, 1.0, 0.0)
        assert result.latency_speedup == 0.0

    def test_batching_row_docs_per_op_zero(self):
        from repro.bench.ablations import BatchingRow

        row = BatchingRow(1, 0.0, 0, 0, 0.0)
        assert row.docs_per_op == 0.0


class TestTaskContextFiles:
    def test_immutable_file_update_rejected(self):
        from repro.faas.runtime import InvocationTask, TaskContext

        task = InvocationTask(
            request_id="r",
            cls="C",
            object_id="o",
            fn_name="f",
            image="i",
            immutable=True,
        )
        ctx = TaskContext(task)
        ctx.update_file("image", "somewhere")
        completion = ctx.completion({})
        assert not completion.ok
        assert "immutable" in completion.error

    def test_file_urls_visible_to_handler(self, platform):
        captured = {}

        @platform.function("probe/files")
        def probe(ctx):
            captured.update(ctx.files)
            return {}

        platform.deploy(
            "classes:\n  - name: P\n    keySpecs: [{name: blob, type: FILE}]\n"
            "    functions: [{name: probe, image: probe/files}]\n"
        )
        obj = platform.new_object("P")
        platform.upload_file(obj, "blob", b"zz")
        platform.invoke(obj, "probe")
        assert captured["blob"].startswith("s3://")
        # The URL actually works without credentials.
        assert platform.object_store.presigned_get(captured["blob"]).data == b"zz"

"""Unit tests for object records."""

import pytest

from repro.errors import ValidationError
from repro.object.obj import ObjectRecord, deterministic_object_ids, new_object_id


class TestObjectRecord:
    def test_validation(self):
        with pytest.raises(ValidationError):
            ObjectRecord(id="", cls="C")
        with pytest.raises(ValidationError):
            ObjectRecord(id="x", cls="")
        with pytest.raises(ValidationError):
            ObjectRecord(id="x", cls="C", version=-1)

    def test_with_updates_bumps_version(self):
        record = ObjectRecord(id="x", cls="C", version=1, state={"a": 1})
        updated = record.with_updates({"a": 2, "b": 3})
        assert updated.version == 2
        assert updated.state == {"a": 2, "b": 3}
        assert record.state == {"a": 1}  # original untouched

    def test_with_updates_noop_returns_self(self):
        record = ObjectRecord(id="x", cls="C")
        assert record.with_updates() is record
        assert record.with_updates({}, {}) is record

    def test_file_updates(self):
        record = ObjectRecord(id="x", cls="C", version=1)
        updated = record.with_updates(file_updates={"image": "bucket/key"})
        assert updated.files == {"image": "bucket/key"}
        assert updated.version == 2

    def test_doc_roundtrip(self):
        record = ObjectRecord(
            id="x", cls="C", version=3, state={"a": [1, 2]}, files={"f": "k"}
        )
        assert ObjectRecord.from_doc(record.to_doc()) == record

    def test_from_doc_missing_field(self):
        with pytest.raises(ValidationError, match="missing field"):
            ObjectRecord.from_doc({"id": "x"})

    def test_get_with_default(self):
        record = ObjectRecord(id="x", cls="C", state={"a": 1})
        assert record.get("a") == 1
        assert record.get("zzz", "fallback") == "fallback"

    def test_state_defensively_copied(self):
        source = {"a": 1}
        record = ObjectRecord(id="x", cls="C", state=source)
        source["a"] = 999
        assert record.state["a"] == 1


class TestIdFactories:
    def test_new_object_id_unique(self):
        ids = {new_object_id() for _ in range(100)}
        assert len(ids) == 100

    def test_deterministic_ids(self):
        make = deterministic_object_ids("obj")
        assert [make() for _ in range(3)] == ["obj-1", "obj-2", "obj-3"]

    def test_deterministic_factories_independent(self):
        a = deterministic_object_ids("a")
        b = deterministic_object_ids("b")
        a()
        assert b() == "b-1"

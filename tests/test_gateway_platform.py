"""Tests for the REST gateway and the Oparaca facade."""

import pytest

from repro.errors import OaasError
from repro.platform.gateway import HttpRequest, HttpResponse
from repro.platform.oparaca import Oparaca, PlatformConfig

from tests.conftest import LISTING1_YAML, register_image_handlers


class TestGatewayRouting:
    def test_create_object_201(self, platform):
        response = platform.http("POST", "/api/classes/Image", {"state": {"width": 9}})
        assert response.status == 201
        assert response.body["id"].startswith("Image~")

    def test_get_object(self, platform):
        obj = platform.new_object("Image", {"width": 3})
        response = platform.http("GET", f"/api/objects/{obj}")
        assert response.status == 200
        assert response.body["state"]["width"] == 3

    def test_invoke_function(self, platform):
        obj = platform.new_object("Image")
        response = platform.http(
            "POST", f"/api/objects/{obj}/invokes/resize", {"width": 77}
        )
        assert response.status == 200
        assert response.body == {"width": 77}

    def test_patch_updates_state(self, platform):
        obj = platform.new_object("Image")
        response = platform.http("PATCH", f"/api/objects/{obj}", {"state": {"width": 4}})
        assert response.status == 200
        assert response.body["version"] == 2

    def test_delete_object(self, platform):
        obj = platform.new_object("Image")
        assert platform.http("DELETE", f"/api/objects/{obj}").status == 200
        assert platform.http("GET", f"/api/objects/{obj}").status == 404

    def test_file_url_endpoints(self, platform):
        obj = platform.new_object("Image")
        put_response = platform.http("PUT", f"/api/objects/{obj}/files/image")
        assert put_response.status == 200
        assert put_response.body["url"].startswith("s3://")

    def test_unknown_route_404(self, platform):
        assert platform.http("GET", "/nope").status == 404
        assert platform.http("GET", "/api/unknown/x").status == 404

    def test_method_not_allowed_405(self, platform):
        obj = platform.new_object("Image")
        assert platform.http("PUT", f"/api/objects/{obj}").status == 405

    def test_unknown_object_404(self, platform):
        assert platform.http("GET", "/api/objects/Image~ghost").status == 404

    def test_unknown_class_404(self, platform):
        assert platform.http("POST", "/api/classes/Ghost").status == 404

    def test_validation_error_400(self, platform):
        obj = platform.new_object("Image")
        response = platform.http("PATCH", f"/api/objects/{obj}", {"state": {"bad": 1}})
        assert response.status == 400

    def test_internal_access_403(self, bare_platform):
        platform = bare_platform
        platform.register_image("img/x", lambda ctx: {})
        platform.deploy(
            "classes:\n  - name: T\n    functions:\n"
            "      - { name: f, image: img/x, access: INTERNAL }\n"
        )
        obj = platform.new_object("T")
        assert platform.http("POST", f"/api/objects/{obj}/invokes/f").status == 403

    def test_handler_crash_500(self, bare_platform):
        platform = bare_platform

        @platform.function("img/crash")
        def crash(ctx):
            raise RuntimeError("oops")

        platform.deploy(
            "classes:\n  - name: T\n    functions:\n      - { name: f, image: img/crash }\n"
        )
        obj = platform.new_object("T")
        response = platform.http("POST", f"/api/objects/{obj}/invokes/f")
        assert response.status == 500
        assert "oops" in response.body["error"]

    def test_request_normalizes_method_case(self):
        request = HttpRequest("get", "/api/objects/x")
        assert request.method == "GET"

    def test_response_ok_property(self):
        assert HttpResponse(200).ok
        assert not HttpResponse(404).ok


class TestFacade:
    def test_deploy_accepts_yaml_text(self, bare_platform):
        register_image_handlers(bare_platform)
        runtimes = bare_platform.deploy(LISTING1_YAML)
        assert [r.cls for r in runtimes] == ["Image", "LabelledImage"]

    def test_deploy_accepts_path(self, tmp_path, bare_platform):
        register_image_handlers(bare_platform)
        path = tmp_path / "pkg.yml"
        path.write_text(LISTING1_YAML)
        runtimes = bare_platform.deploy(path)
        assert len(runtimes) == 2

    def test_deploy_accepts_package_object(self, bare_platform):
        from repro.model.pkg import loads_package

        register_image_handlers(bare_platform)
        runtimes = bare_platform.deploy(loads_package(LISTING1_YAML))
        assert len(runtimes) == 2

    def test_now_and_advance(self, bare_platform):
        start = bare_platform.now
        bare_platform.advance(5.0)
        assert bare_platform.now == start + 5.0

    def test_run_accepts_generator(self, bare_platform):
        def gen():
            yield bare_platform.env.timeout(1.0)
            return "value"

        assert bare_platform.run(gen()) == "value"

    def test_flush_persists_pending_state(self, platform):
        obj = platform.new_object("Image")
        platform.invoke(obj, "resize", {"width": 44})
        platform.flush()
        doc = platform.store.get_sync("objects.Image", obj)
        assert doc is not None
        assert doc["state"]["width"] == 44

    def test_snapshot_keys(self, platform):
        obj = platform.new_object("Image")
        platform.invoke(obj, "resize", {"width": 10})
        snapshot = platform.snapshot()
        assert snapshot["engine.invocations"] >= 2
        assert "db.write_ops" in snapshot
        assert "class.Image.throughput_rps" in snapshot

    def test_shutdown_flushes_and_stops(self, platform):
        obj = platform.new_object("Image")
        platform.invoke(obj, "resize", {"width": 2})
        platform.shutdown()
        assert platform.crm.dht_for("Image").pending_writes() == 0

    def test_seed_determinism(self):
        def build():
            instance = Oparaca(PlatformConfig(nodes=3, seed=11))
            register_image_handlers(instance)
            instance.deploy(LISTING1_YAML)
            obj = instance.new_object("Image", object_id="fixed")
            instance.invoke(obj, "resize", {"width": 10})
            return instance.now

        assert build() == build()

    def test_invoke_raise_on_error_flag(self, platform):
        result = platform.invoke(
            "Image~ghost", "resize", {"width": 1}, raise_on_error=False
        )
        assert not result.ok
        with pytest.raises(OaasError):
            platform.invoke("Image~ghost", "resize", {"width": 1})

    def test_optimizer_enabled_by_config(self):
        platform = Oparaca(PlatformConfig(nodes=2, optimizer_enabled=True))
        assert platform.optimizer is not None
        platform.shutdown()

"""Resilience-plane tests: policies, breakers, and the invoker's
defensive behaviour under injected network faults.

The contract under test: data-plane faults cost bounded retries, every
defensive action is observable, failures surface as structured
:class:`~repro.errors.OaasError` results (never raw exceptions), and a
class's NFRs decide how hard the platform fights for it.
"""

import random

import pytest

from repro.errors import NetworkPartitionError, ValidationError
from repro.invoker.resilience import (
    BreakerBoard,
    ResiliencePolicy,
)
from repro.model.nfr import NonFunctionalRequirements, QosRequirement
from repro.monitoring.events import EventLog
from repro.platform.oparaca import Oparaca, PlatformConfig

HA_PACKAGE = """
name: resilience-app
classes:
  - name: Ledger
    qos:
      availability: 0.999
    keySpecs:
      - name: balance
        type: INT
        default: 0
    functions:
      - name: add
        image: ledger/add
  - name: Scratch
    qos:
      availability: 0.999
    constraint:
      persistent: false
    keySpecs:
      - name: hits
        type: INT
        default: 0
    functions:
      - name: bump
        image: scratch/bump
"""


def make_platform(seed: int = 0, events: bool = False) -> Oparaca:
    platform = Oparaca(
        PlatformConfig(nodes=3, seed=seed, events_enabled=events)
    )

    @platform.function("ledger/add", service_time_s=0.002)
    def add(ctx):
        ctx.state["balance"] = ctx.state.get("balance", 0) + int(
            ctx.payload.get("amount", 1)
        )
        return {"balance": ctx.state["balance"]}

    @platform.function("scratch/bump", service_time_s=0.002)
    def bump(ctx):
        ctx.state["hits"] = ctx.state.get("hits", 0) + 1
        return {"hits": ctx.state["hits"]}

    platform.deploy(HA_PACKAGE)
    return platform


def nfr(availability=None, latency_ms=None):
    return NonFunctionalRequirements(
        qos=QosRequirement(availability=availability, latency_ms=latency_ms)
    )


class TestResiliencePolicy:
    def test_defaults_are_valid(self):
        policy = ResiliencePolicy()
        assert policy.max_retries == 2
        assert policy.deadline_s is None

    @pytest.mark.parametrize(
        "availability,retries,threshold",
        [
            (None, 2, 5),
            (0.95, 2, 5),
            (0.99, 3, 4),
            (0.999, 4, 3),
            (0.9999, 5, 3),
        ],
    )
    def test_availability_tiers(self, availability, retries, threshold):
        policy = ResiliencePolicy.from_nfr(nfr(availability=availability))
        assert policy.max_retries == retries
        assert policy.breaker_failure_threshold == threshold

    def test_latency_target_sets_deadline(self):
        policy = ResiliencePolicy.from_nfr(nfr(latency_ms=50))
        # Generously above p99 so cold starts never trip it.
        assert policy.deadline_s == pytest.approx(2.0)
        policy = ResiliencePolicy.from_nfr(nfr(latency_ms=200))
        assert policy.deadline_s == pytest.approx(5.0)
        assert ResiliencePolicy.from_nfr(nfr()).deadline_s is None

    def test_stale_reads_require_persistence(self):
        assert ResiliencePolicy.from_nfr(nfr(), persistent=True).stale_read_fallback
        assert not ResiliencePolicy.from_nfr(nfr(), persistent=False).stale_read_fallback

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": 0},
            {"backoff_factor": 0.5},
            {"backoff_max_s": 0.001},  # < base
            {"backoff_jitter": 1.5},
            {"deadline_s": 0},
            {"breaker_failure_threshold": 0},
            {"breaker_recovery_s": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            ResiliencePolicy(**kwargs)

    def test_backoff_grows_and_caps(self):
        policy = ResiliencePolicy(
            backoff_base_s=0.01, backoff_factor=2.0, backoff_max_s=0.05,
            backoff_jitter=0.0,
        )
        rng = random.Random(0)
        delays = [policy.backoff_s(attempt, rng) for attempt in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_backoff_jitter_is_bounded_and_seeded(self):
        policy = ResiliencePolicy(backoff_base_s=0.01, backoff_jitter=0.5)
        a = [policy.backoff_s(1, random.Random(7)) for _ in range(3)]
        b = [policy.backoff_s(1, random.Random(7)) for _ in range(3)]
        assert a == b  # same seed, same delays
        assert all(0.01 <= d <= 0.015 for d in a)


class TestBreakerBoard:
    def make_board(self, env, threshold=3, recovery_s=5.0):
        events = EventLog(env, enabled=True)
        board = BreakerBoard(env, events=events)
        policy = ResiliencePolicy(
            breaker_failure_threshold=threshold, breaker_recovery_s=recovery_s
        )
        return board, policy, events

    def test_closed_board_is_free(self, env):
        board, _, _ = self.make_board(env)
        assert not board.active
        assert board.allow("C", "n0")
        assert board.state("C", "n0") == "closed"
        board.record_success("C", "n0")  # no-op on an empty board
        assert not board.active

    def test_opens_at_threshold_and_sheds(self, env):
        board, policy, events = self.make_board(env, threshold=3)
        for _ in range(2):
            board.record_failure("C", "n0", policy)
        assert board.state("C", "n0") == "closed"
        board.record_failure("C", "n0", policy)
        assert board.state("C", "n0") == "open"
        assert not board.allow("C", "n0")
        assert board.allow("C", "n1")  # other nodes unaffected
        assert board.allow("D", "n0")  # other classes unaffected
        assert [e.type for e in events.events("resilience.breaker_open")] == [
            "resilience.breaker_open"
        ]

    def test_success_resets_consecutive_failures(self, env):
        board, policy, _ = self.make_board(env, threshold=3)
        board.record_failure("C", "n0", policy)
        board.record_failure("C", "n0", policy)
        board.record_success("C", "n0")
        board.record_failure("C", "n0", policy)
        assert board.state("C", "n0") == "closed"  # not consecutive

    def test_half_open_probe_closes_or_reopens(self, env):
        board, policy, events = self.make_board(env, threshold=1, recovery_s=5.0)
        board.record_failure("C", "n0", policy)
        assert not board.allow("C", "n0")
        env.run(until=6.0)
        assert board.allow("C", "n0")  # half-open probe allowed
        assert board.state("C", "n0") == "half_open"
        board.record_failure("C", "n0", policy)  # probe fails
        assert board.state("C", "n0") == "open"
        env.run(until=12.0)
        assert board.allow("C", "n0")
        board.record_success("C", "n0")  # probe succeeds
        assert board.state("C", "n0") == "closed"
        kinds = [e.type for e in events.events()]
        assert "resilience.breaker_half_open" in kinds
        assert "resilience.breaker_close" in kinds
        breaker = board.get("C", "n0")
        assert breaker.opens == 2 and breaker.closes == 1

    def test_disabled_threshold_never_creates_breakers(self, env):
        board, _, _ = self.make_board(env)
        policy = ResiliencePolicy(breaker_failure_threshold=None)
        for _ in range(10):
            board.record_failure("C", "n0", policy)
        assert not board.active
        assert board.open_count() == 0

    def test_snapshot(self, env):
        board, policy, _ = self.make_board(env, threshold=1)
        board.record_failure("C", "n0", policy)
        assert board.snapshot() == {"C@n0": "open"}


class TestPolicyWiring:
    def test_policies_derived_from_nfr_at_deploy(self):
        platform = make_platform()
        ledger = platform.crm.policy_for("Ledger")
        assert ledger.max_retries == 4  # three nines
        assert ledger.stale_read_fallback  # persistent
        scratch = platform.crm.policy_for("Scratch")
        assert not scratch.stale_read_fallback  # ephemeral

    def test_operator_policy_override(self):
        platform = make_platform()
        custom = ResiliencePolicy(max_retries=0)
        platform.crm.set_policy("Ledger", custom)
        assert platform.crm.policy_for("Ledger") is custom


class TestInvokerResilience:
    def test_replicated_class_rides_out_partition(self):
        platform = make_platform(events=True)
        obj = platform.new_object("Ledger", object_id="acct-0")
        platform.invoke(obj, "add", {"amount": 5})
        owners = platform.crm.runtime("Ledger").dht.owners(obj)
        platform.network.fault_state().isolate([owners[0]])
        result = platform.invoke(obj, "add", {"amount": 5}, raise_on_error=False)
        assert result.ok, result.error
        assert platform.engine.fault_retries > 0
        assert platform.platform_events("resilience.retry")
        # Heal = clear the partition + anti-entropy (what the chaos
        # injector does): replicas reconverge on the newest version.
        platform.network.fault_state().clear_partition()
        platform.crm.runtime("Ledger").dht.rebalance()
        assert platform.get_object(obj)["state"]["balance"] == 10

    def test_retries_are_bounded_for_unreachable_ephemeral(self):
        platform = make_platform()
        obj = platform.new_object("Scratch", object_id="pad-0")
        owners = platform.crm.runtime("Scratch").dht.owners(obj)
        assert len(owners) == 1  # ephemeral template does not replicate
        platform.network.fault_state().isolate(owners)
        before = platform.engine.fault_retries
        result = platform.invoke(obj, "bump", raise_on_error=False)
        assert not result.ok
        assert result.error_type == "NetworkPartitionError"
        policy = platform.crm.policy_for("Scratch")
        assert platform.engine.fault_retries - before <= policy.max_retries
        with pytest.raises(NetworkPartitionError):
            platform.invoke(obj, "bump")

    def test_gateway_maps_partition_to_503(self):
        platform = make_platform()
        response = platform.http("POST", "/api/classes/Scratch", {"id": "pad-1"})
        obj = response.body["id"]
        owners = platform.crm.runtime("Scratch").dht.owners(obj)
        platform.network.fault_state().isolate(owners)
        response = platform.http("POST", f"/api/objects/{obj}/invokes/bump")
        assert response.status == 503
        assert response.body["type"] == "NetworkPartitionError"
        assert "partition" in response.body["error"]

    def test_stale_read_fallback_serves_persistent_reads(self):
        platform = make_platform(events=True)
        obj = platform.new_object("Ledger", object_id="acct-1")
        platform.invoke(obj, "add", {"amount": 7})
        platform.flush()  # make the durable copy current
        owners = platform.crm.runtime("Ledger").dht.owners(obj)
        platform.network.fault_state().isolate(owners)  # both replicas gone
        record = platform.get_object(obj)
        assert record["state"]["balance"] == 7
        assert platform.engine.stale_reads > 0
        assert platform.platform_events("resilience.stale_read")

    def test_breaker_opens_then_recloses_after_heal(self):
        platform = make_platform(events=True)
        obj = platform.new_object("Scratch", object_id="pad-2")
        owners = platform.crm.runtime("Scratch").dht.owners(obj)
        platform.network.fault_state().isolate(owners)
        policy = platform.crm.policy_for("Scratch")
        for _ in range(policy.breaker_failure_threshold + 1):
            platform.invoke(obj, "bump", raise_on_error=False)
        assert platform.engine.breakers.open_count() > 0
        assert platform.platform_events("resilience.breaker_open")
        # Heal, wait out the recovery window, and traffic closes it again.
        platform.network.fault_state().clear_partition()
        platform.advance(policy.breaker_recovery_s + 0.1)
        for _ in range(3):
            result = platform.invoke(obj, "bump", raise_on_error=False)
            assert result.ok
        # No breaker still sheds: probes either closed them or their
        # recovery window elapsed (half-open admits traffic).
        assert platform.engine.breakers.open_count() == 0
        assert "open" not in platform.engine.breakers.snapshot().values()
        assert platform.platform_events("resilience.breaker_close")

    def test_deadline_times_out_slow_offloads(self):
        platform = Oparaca(PlatformConfig(nodes=3))

        @platform.function("slow/op", service_time_s=30.0)
        def slow(ctx):
            return {}

        platform.deploy(
            """
name: slow-app
classes:
  - name: Slow
    qos:
      latency: 100
    keySpecs:
      - name: x
        type: INT
        default: 0
    functions:
      - name: op
        image: slow/op
"""
        )
        policy = platform.crm.policy_for("Slow")
        assert policy.deadline_s == pytest.approx(2.5)
        obj = platform.new_object("Slow", object_id="slow-0")
        result = platform.invoke(obj, "op", raise_on_error=False)
        assert not result.ok
        assert result.error_type == "InvocationTimeoutError"
        assert platform.engine.timeouts > 0
        response = platform.http("POST", f"/api/objects/{obj}/invokes/op")
        assert response.status == 504


class TestErrorBoundary:
    """Satellite bugfix: no raw exception may escape the engine or the
    gateway — everything surfaces as a structured OaasError payload."""

    def test_engine_wraps_internal_errors(self, monkeypatch):
        platform = make_platform()
        obj = platform.new_object("Ledger", object_id="acct-2")

        def explode(cls):
            raise KeyError(cls)

        monkeypatch.setattr(platform.crm, "dht_for", explode)
        result = platform.invoke(obj, "add", {"amount": 1}, raise_on_error=False)
        assert not result.ok
        assert result.error_type == "InternalError"
        assert "KeyError" in result.error
        assert platform.engine.internal_errors > 0

    def test_gateway_wraps_internal_errors(self, monkeypatch):
        platform = make_platform()
        obj = platform.new_object("Ledger", object_id="acct-3")
        monkeypatch.setattr(
            platform.crm, "dht_for", lambda cls: (_ for _ in ()).throw(KeyError(cls))
        )
        response = platform.http("GET", f"/api/objects/{obj}")
        assert response.status == 500
        assert response.body["type"] == "InternalError"
        assert "error" in response.body

    def test_gateway_wraps_routing_layer_exceptions(self, monkeypatch):
        platform = make_platform()
        monkeypatch.setattr(
            platform.engine,
            "list_objects",
            lambda cls: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        response = platform.http("GET", "/api/classes/Ledger/objects")
        assert response.status == 500
        assert response.body["type"] == "InternalError"

    def test_failures_without_record_still_attributed_to_class(self):
        platform = make_platform()
        obs = platform.monitoring.for_class("Scratch")
        obj = platform.new_object("Scratch", object_id="pad-9")
        owners = platform.crm.runtime("Scratch").dht.owners(obj)
        failed_before = obs.failed
        platform.network.fault_state().isolate(owners)
        platform.invoke(obj, "bump", raise_on_error=False)
        assert obs.failed == failed_before + 1

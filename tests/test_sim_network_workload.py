"""Unit tests for the network model, RNG streams, and load generators."""

import pytest

from repro.sim.kernel import Environment
from repro.sim.network import Network, NetworkModel
from repro.sim.rng import RngStreams
from repro.sim.workload import ClosedLoopGenerator, LoadStats, OpenLoopGenerator


class TestNetworkModel:
    def test_remote_transfer_pays_rtt(self):
        model = NetworkModel(rtt_s=0.001, loopback_s=0.0001, bandwidth_bps=0)
        assert model.transfer_time("a", "b") == 0.001

    def test_local_transfer_pays_loopback(self):
        model = NetworkModel(rtt_s=0.001, loopback_s=0.0001, bandwidth_bps=0)
        assert model.transfer_time("a", "a") == 0.0001

    def test_unknown_endpoint_treated_remote(self):
        model = NetworkModel(rtt_s=0.001, loopback_s=0.0001, bandwidth_bps=0)
        assert model.transfer_time(None, "a") == 0.001

    def test_bandwidth_term(self):
        model = NetworkModel(rtt_s=0.001, loopback_s=0.0, bandwidth_bps=1e6)
        assert model.transfer_time("a", "b", 1000) == pytest.approx(0.002)

    def test_network_counts_transfers(self, env):
        net = Network(env, NetworkModel())

        def proc(env):
            yield net.transfer("a", "b", 100)
            yield net.transfer("a", "a", 100)

        env.run(until=env.process(proc(env)))
        assert net.total_transfers == 2
        assert net.remote_transfers == 1
        assert net.total_bytes == 200


class TestRngStreams:
    def test_same_name_same_stream(self):
        streams = RngStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_deterministic_across_instances(self):
        a = RngStreams(7).stream("arrivals").random()
        b = RngStreams(7).stream("arrivals").random()
        assert a == b

    def test_streams_are_independent(self):
        streams = RngStreams(7)
        first = streams.stream("a").random()
        # Drawing from another stream must not perturb "a".
        streams2 = RngStreams(7)
        streams2.stream("b").random()
        assert streams2.stream("a").random() == first

    def test_different_seeds_differ(self):
        assert RngStreams(1).stream("x").random() != RngStreams(2).stream("x").random()

    def test_fork_is_deterministic(self):
        a = RngStreams(3).fork("node-1").stream("x").random()
        b = RngStreams(3).fork("node-1").stream("x").random()
        assert a == b


class TestLoadStats:
    def test_throughput_over_window(self):
        stats = LoadStats(warmup_s=5.0)
        for start in (6.0, 7.0, 8.0):
            stats.record(start, start + 0.1, ok=True)
        assert stats.throughput(15.0) == pytest.approx(0.3)

    def test_warmup_requests_excluded(self):
        stats = LoadStats(warmup_s=5.0)
        stats.record(1.0, 1.5, ok=True)
        stats.record(6.0, 6.5, ok=True)
        assert stats.measured_completed == 1
        assert stats.completed == 2

    def test_failed_counted(self):
        stats = LoadStats()
        stats.record(0.0, 1.0, ok=False)
        assert stats.failed == 1

    def test_percentile(self):
        stats = LoadStats()
        for latency in (0.1, 0.2, 0.3, 0.4, 1.0):
            stats.record(0.0, latency, ok=True)
        assert stats.latency_percentile(50) == pytest.approx(0.3)
        assert stats.latency_percentile(100) == pytest.approx(1.0)

    def test_empty_stats(self):
        stats = LoadStats()
        assert stats.throughput(10.0) == 0.0
        assert stats.mean_latency == 0.0
        assert stats.latency_percentile(99) == 0.0


class TestGenerators:
    def test_closed_loop_self_throttles(self):
        env = Environment()

        def request(index):
            yield env.timeout(0.1)

        generator = ClosedLoopGenerator(env, request, clients=2, horizon_s=1.0)
        env.run(until=1.0)
        # Two clients at 0.1 s per request over 1 s -> ~20 completions.
        assert generator.stats.completed == pytest.approx(20, abs=2)

    def test_closed_loop_think_time(self):
        env = Environment()

        def request(index):
            yield env.timeout(0.1)

        generator = ClosedLoopGenerator(
            env, request, clients=1, horizon_s=1.0, think_time_s=0.1
        )
        env.run(until=1.0)
        assert generator.stats.completed == pytest.approx(5, abs=1)

    def test_open_loop_issues_at_rate(self):
        env = Environment()

        def request(index):
            yield env.timeout(0.001)

        generator = OpenLoopGenerator(
            env, request, rate=100.0, horizon_s=2.0, poisson=False
        )
        env.run(until=3.0)
        assert generator.stats.issued == pytest.approx(200, abs=2)

    def test_open_loop_poisson_deterministic_by_seed(self):
        from repro.sim.rng import RngStreams

        def run_once():
            env = Environment()

            def request(index):
                yield env.timeout(0.001)

            generator = OpenLoopGenerator(
                env, request, rate=50.0, horizon_s=1.0, rng=RngStreams(9)
            )
            env.run(until=2.0)
            return generator.stats.issued

        assert run_once() == run_once()

    def test_open_loop_failures_recorded(self):
        env = Environment()

        def request(index):
            yield env.timeout(0.001)
            raise RuntimeError("app error")

        generator = OpenLoopGenerator(env, request, rate=10, horizon_s=1.0, poisson=False)
        env.run(until=2.0)
        assert generator.stats.failed == generator.stats.completed > 0

    def test_closed_loop_client_indices_disjoint(self):
        env = Environment()
        seen = []

        def request(index):
            seen.append(index)
            yield env.timeout(0.1)

        ClosedLoopGenerator(env, request, clients=3, horizon_s=0.5)
        env.run(until=0.5)
        assert len(seen) == len(set(seen))

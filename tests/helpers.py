"""Shared platform builders for the test suite.

Every plane's test module used to hand-roll the same four lines —
construct ``Oparaca(PlatformConfig(...))``, register handler images,
deploy a package — with copy-paste drift between them.  This module is
the one home for that plumbing:

* :data:`LISTING1_YAML` / :func:`register_image_handlers` — the paper's
  Listing 1 package and its backing handlers (re-exported by
  ``conftest`` for fixtures).
* :func:`make_platform` — build + register + deploy in one call.
* :func:`listing1_platform` — a platform with Listing 1 deployed.
* :func:`seeded_baseline_run` — the workload behind every plane's
  "disabled config is byte-identical to the seed baseline" parity test.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.platform.oparaca import Oparaca, PlatformConfig

#: The paper's Listing 1, extended with structured keys and a macro so
#: every feature has coverage.
LISTING1_YAML = """
name: image-app
classes:
  - name: Image
    qos:
      throughput: 100
    constraint:
      persistent: true
    keySpecs:
      - name: image
        type: FILE
      - name: width
        type: INT
        default: 1024
      - name: format
        type: STR
        default: png
    functions:
      - name: resize
        image: img/resize
      - name: changeFormat
        image: img/change-format
      - name: thumbnail
        type: MACRO
        dataflow:
          steps:
            - id: r
              function: resize
              args: { width: "${input.width}" }
            - id: f
              function: changeFormat
              inputs: [r]
              args: { format: webp }
          output: f
  - name: LabelledImage
    parent: Image
    keySpecs:
      - name: labels
        type: JSON
        default: []
    functions:
      - name: detectObject
        image: img/detect-object
"""

#: image name -> (handler, service_time_s), the shape make_platform takes.
Handlers = dict[str, tuple[Callable[..., Any], float]]


def register_image_handlers(platform: Oparaca) -> None:
    """The handlers backing LISTING1_YAML."""

    @platform.function("img/resize", service_time_s=0.004)
    def resize(ctx):
        ctx.state["width"] = int(ctx.payload["width"])
        return {"width": ctx.state["width"]}

    @platform.function("img/change-format", service_time_s=0.002)
    def change_format(ctx):
        ctx.state["format"] = str(ctx.payload["format"])
        return {"format": ctx.state["format"]}

    @platform.function("img/detect-object", service_time_s=0.02)
    def detect(ctx):
        labels = ["cat"] if ctx.state.get("width", 0) < 512 else ["cat", "laptop"]
        ctx.state["labels"] = labels
        return {"labels": labels}


def make_platform(
    package: str | None = None,
    handlers: Handlers | None = None,
    *,
    nodes: int = 3,
    **config_kwargs: Any,
) -> Oparaca:
    """Build a platform, register ``handlers``, deploy ``package``.

    ``config_kwargs`` pass straight through to :class:`PlatformConfig`,
    so plane configs read naturally at the call site::

        make_platform(QOS_YAML, {"t/hot": (handler, 0.001)},
                      nodes=2, qos=QosConfig(enabled=True))
    """
    platform = Oparaca(PlatformConfig(nodes=nodes, **config_kwargs))
    for image, (handler, service_time_s) in (handlers or {}).items():
        platform.register_image(image, handler, service_time_s)
    if package is not None:
        platform.deploy(package)
    return platform


def listing1_platform(*, nodes: int = 3, **config_kwargs: Any) -> Oparaca:
    """A platform with Listing 1 deployed and its handlers registered."""
    platform = make_platform(nodes=nodes, **config_kwargs)
    register_image_handlers(platform)
    platform.deploy(LISTING1_YAML)
    return platform


def seeded_baseline_run(**config_kwargs: Any) -> tuple[dict, dict, float]:
    """Run the fixed seed-3 Listing-1 workload and return everything a
    parity test compares: the platform snapshot, the queue stop report,
    and the final simulated time.

    Every plane's "off by default changes nothing" test calls this twice
    — once with the default config, once with the plane explicitly
    disabled — and asserts the tuples are equal.
    """
    platform = listing1_platform(seed=3, **config_kwargs)
    obj = platform.new_object("Image", {"width": 100})
    for width in (10, 20, 30):
        platform.invoke(obj, "resize", {"width": width})
    for _ in range(5):
        platform.invoke_async(obj, "resize", {"width": 7})
    platform.advance(2.0)
    snap = platform.snapshot()
    stop = platform.queue.stop()
    platform.shutdown()
    return snap, stop, platform.now

"""Unit tests for the Kubernetes-like orchestrator substrate."""

import pytest

from repro.errors import SchedulingError, ValidationError
from repro.orchestrator.cluster import Cluster
from repro.orchestrator.deployment import Deployment
from repro.orchestrator.hpa import HorizontalPodAutoscaler
from repro.orchestrator.pod import PodPhase, PodSpec
from repro.orchestrator.resources import ResourceSpec
from repro.orchestrator.scheduler import Scheduler


def make_cluster(env, nodes=3, cpu=4000, mem=16384):
    cluster = Cluster(env)
    for index in range(nodes):
        cluster.add_node(f"vm-{index}", ResourceSpec(cpu, mem))
    return cluster


SPEC = PodSpec(image="img/x", resources=ResourceSpec(1000, 512), concurrency=4)


class TestResources:
    def test_arithmetic(self):
        a = ResourceSpec(1000, 512)
        b = ResourceSpec(500, 256)
        assert a + b == ResourceSpec(1500, 768)
        assert a - b == ResourceSpec(500, 256)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            ResourceSpec(-1, 0)

    def test_fits_within(self):
        assert ResourceSpec(500, 100).fits_within(ResourceSpec(1000, 200))
        assert not ResourceSpec(1001, 100).fits_within(ResourceSpec(1000, 200))

    def test_scaled(self):
        assert ResourceSpec(100, 50).scaled(3) == ResourceSpec(300, 150)


class TestCluster:
    def test_add_duplicate_node_rejected(self, env):
        cluster = make_cluster(env)
        with pytest.raises(ValidationError):
            cluster.add_node("vm-0")

    def test_bind_pod_allocates(self, env):
        cluster = make_cluster(env)
        pod = cluster.bind_pod(SPEC, "vm-0")
        assert pod.node == "vm-0"
        assert cluster.node("vm-0").allocated == ResourceSpec(1000, 512)

    def test_bind_pod_over_capacity_rejected(self, env):
        cluster = make_cluster(env, cpu=1500)
        cluster.bind_pod(SPEC, "vm-0")
        with pytest.raises(SchedulingError):
            cluster.bind_pod(SPEC, "vm-0")

    def test_terminate_pod_frees_capacity(self, env):
        cluster = make_cluster(env)
        pod = cluster.bind_pod(SPEC, "vm-0")
        cluster.terminate_pod(pod.name)
        assert cluster.node("vm-0").allocated.is_zero
        assert pod.phase is PodPhase.TERMINATED

    def test_remove_node_terminates_pods(self, env):
        cluster = make_cluster(env)
        pod = cluster.bind_pod(SPEC, "vm-0")
        cluster.remove_node("vm-0")
        assert pod.phase is PodPhase.TERMINATED
        assert "vm-0" not in cluster.node_names

    def test_pods_with_label(self, env):
        cluster = make_cluster(env)
        spec = PodSpec(image="i", labels={"app": "x"})
        cluster.bind_pod(spec, "vm-0")
        cluster.bind_pod(PodSpec(image="i", labels={"app": "y"}), "vm-1")
        assert len(cluster.pods_with_label("app", "x")) == 1


class TestPodLifecycle:
    def test_pod_becomes_ready_after_startup(self, env):
        cluster = make_cluster(env)
        spec = PodSpec(image="i", startup_delay_s=2.0)
        pod = cluster.bind_pod(spec, "vm-0")
        assert pod.phase is PodPhase.STARTING
        env.run(until=1.0)
        assert not pod.is_ready
        env.run(until=2.5)
        assert pod.is_ready
        assert pod.ready_at == 2.0

    def test_ready_event_fires(self, env):
        cluster = make_cluster(env)
        pod = cluster.bind_pod(PodSpec(image="i", startup_delay_s=1.0), "vm-0")

        def waiter(env):
            yield pod.ready_event()
            return env.now

        assert env.run(until=env.process(waiter(env))) == 1.0

    def test_terminated_while_starting_never_ready(self, env):
        cluster = make_cluster(env)
        pod = cluster.bind_pod(PodSpec(image="i", startup_delay_s=5.0), "vm-0")
        cluster.terminate_pod(pod.name)
        env.run(until=10.0)
        assert pod.phase is PodPhase.TERMINATED
        assert not pod.is_ready

    def test_in_flight_counts_queue(self, env):
        cluster = make_cluster(env)
        pod = cluster.bind_pod(PodSpec(image="i", concurrency=1), "vm-0")

        def hold(env):
            req = pod.slots.request()
            yield req
            yield env.timeout(10)
            pod.slots.release()

        env.process(hold(env))
        env.process(hold(env))
        env.run(until=1.0)
        assert pod.in_flight == 2


class TestScheduler:
    def test_unknown_policy(self, env):
        with pytest.raises(SchedulingError):
            Scheduler(make_cluster(env), policy="chaotic")

    def test_least_allocated_spreads(self, env):
        cluster = make_cluster(env)
        scheduler = Scheduler(cluster)
        nodes = [scheduler.schedule(SPEC).node for _ in range(3)]
        assert sorted(nodes) == ["vm-0", "vm-1", "vm-2"]

    def test_bin_pack_fills_first(self, env):
        cluster = make_cluster(env)
        scheduler = Scheduler(cluster, policy="bin-pack")
        nodes = [scheduler.schedule(SPEC).node for _ in range(3)]
        assert nodes == ["vm-0", "vm-0", "vm-0"]

    def test_no_feasible_node_raises(self, env):
        cluster = make_cluster(env, cpu=500)
        with pytest.raises(SchedulingError, match="no node can fit"):
            Scheduler(cluster).schedule(SPEC)

    def test_node_hint_respected(self, env):
        scheduler = Scheduler(make_cluster(env))
        assert scheduler.schedule(SPEC, node_hint="vm-2").node == "vm-2"

    def test_infeasible_hint_raises(self, env):
        cluster = make_cluster(env, cpu=1500)
        scheduler = Scheduler(cluster)
        scheduler.schedule(SPEC, node_hint="vm-1")
        with pytest.raises(SchedulingError, match="hinted node"):
            scheduler.schedule(SPEC, node_hint="vm-1")


class TestDeployment:
    def _deployment(self, env, replicas=2, **spec_kwargs):
        cluster = make_cluster(env)
        scheduler = Scheduler(cluster)
        spec = PodSpec(image="img/x", resources=ResourceSpec(500, 128), **spec_kwargs)
        return Deployment(env, "web", spec, scheduler, replicas=replicas), cluster

    def test_initial_replicas(self, env):
        deployment, _ = self._deployment(env, replicas=3)
        assert deployment.replicas == 3

    def test_scale_up_and_down(self, env):
        deployment, cluster = self._deployment(env, replicas=1)
        deployment.scale(4)
        assert deployment.replicas == 4
        deployment.scale(2)
        assert deployment.replicas == 2
        assert cluster.pod_count == 2

    def test_scale_negative_rejected(self, env):
        deployment, _ = self._deployment(env)
        with pytest.raises(SchedulingError):
            deployment.scale(-1)

    def test_scale_to_zero_allowed(self, env):
        deployment, _ = self._deployment(env)
        deployment.scale(0)
        assert deployment.replicas == 0
        assert deployment.least_loaded_pod(include_starting=True) is None

    def test_least_loaded_selection(self, env):
        deployment, _ = self._deployment(env, replicas=2, concurrency=4)
        env.run(until=0.1)  # pods ready (no startup delay)
        first = deployment.least_loaded_pod()
        req = first.slots.request()
        env.run(until=0.2)
        second = deployment.least_loaded_pod()
        assert second is not first

    def test_scale_down_prefers_idle_pods(self, env):
        deployment, _ = self._deployment(env, replicas=2)
        env.run(until=0.1)
        busy = deployment.pods[0]
        busy.slots.request()
        env.run(until=0.2)
        deployment.scale(1)
        assert deployment.pods == [busy]

    def test_delete_terminates_all(self, env):
        deployment, cluster = self._deployment(env, replicas=3)
        deployment.delete()
        assert deployment.replicas == 0
        assert all(n.allocated.is_zero for n in cluster.nodes)

    def test_node_hints_cycle(self, env):
        cluster = make_cluster(env)
        scheduler = Scheduler(cluster)
        deployment = Deployment(
            env,
            "pinned",
            PodSpec(image="i", resources=ResourceSpec(100, 64)),
            scheduler,
            replicas=4,
            node_hints=["vm-0", "vm-1"],
        )
        nodes = sorted(pod.node for pod in deployment.pods)
        assert nodes == ["vm-0", "vm-0", "vm-1", "vm-1"]


class TestHpa:
    def _setup(self, env, target=4.0, **kwargs):
        cluster = make_cluster(env)
        scheduler = Scheduler(cluster)
        deployment = Deployment(
            env,
            "web",
            PodSpec(image="i", resources=ResourceSpec(200, 64), concurrency=8),
            scheduler,
            replicas=1,
        )
        hpa = HorizontalPodAutoscaler(env, deployment, target_per_replica=target, **kwargs)
        return deployment, hpa

    def test_validation(self, env):
        deployment, _ = self._setup(env)
        with pytest.raises(ValidationError):
            HorizontalPodAutoscaler(env, deployment, target_per_replica=0)
        with pytest.raises(ValidationError):
            HorizontalPodAutoscaler(env, deployment, 4.0, min_replicas=0)
        with pytest.raises(ValidationError):
            HorizontalPodAutoscaler(env, deployment, 4.0, min_replicas=5, max_replicas=2)

    def test_scales_up_on_load(self, env):
        deployment, hpa = self._setup(env, metric_fn=lambda: 20.0)
        hpa.tick()
        assert deployment.replicas == 5  # ceil(20/4)

    def test_respects_max(self, env):
        deployment, hpa = self._setup(env, max_replicas=3, metric_fn=lambda: 100.0)
        hpa.tick()
        assert deployment.replicas == 3

    def test_scale_down_needs_stabilization(self, env):
        metric = {"value": 20.0}
        deployment, hpa = self._setup(
            env, metric_fn=lambda: metric["value"], scale_down_stabilization_s=30.0
        )
        hpa.tick()
        assert deployment.replicas == 5
        metric["value"] = 0.0
        hpa.tick()
        assert deployment.replicas == 5  # damped
        env.run(until=31.0)
        hpa.tick()
        assert deployment.replicas == 1

    def test_periodic_ticks_run(self, env):
        _, hpa = self._setup(env, interval_s=1.0, metric_fn=lambda: 0.0)
        env.run(until=5.5)
        assert hpa.decisions >= 5
        hpa.stop()

    def test_stop_halts_loop(self, env):
        _, hpa = self._setup(env, interval_s=1.0, metric_fn=lambda: 0.0)
        env.run(until=2.5)
        hpa.stop()
        decisions = hpa.decisions
        env.run(until=10.0)
        assert hpa.decisions == decisions

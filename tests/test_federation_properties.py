"""Property-based tests (hypothesis) for the federation plane: the
placement scorer's determinism and constraint-safety, and the migration
protocol's version monotonicity / exactly-once visibility."""

from __future__ import annotations

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.federation import FederationConfig, PlacementPlanner, Zone, ZoneTopology
from repro.model.nfr import Constraint, NonFunctionalRequirements, QosRequirement
from repro.orchestrator.cluster import Cluster
from repro.sim.kernel import Environment

from tests.helpers import make_platform

zone_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
tiers = st.sampled_from(("edge", "regional", "core"))


@st.composite
def topologies(draw):
    """A topology of 2–5 uniquely named zones plus a partial RTT matrix."""
    names = draw(
        st.lists(zone_names, min_size=2, max_size=5, unique=True)
    )
    zones = tuple(Zone(name, tier=draw(tiers)) for name in names)
    rtt = []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if draw(st.booleans()):
                rtt.append((a, b, draw(st.floats(0.001, 0.2))))
    return zones, tuple(rtt)


def build_planner(zones, rtt, nodes_per_zone, mode="nfr"):
    cluster = Cluster(Environment())
    for index in range(nodes_per_zone * len(zones)):
        zone = zones[index % len(zones)]
        cluster.add_node(f"vm-{index}", labels={"region": zone.name})
    topology = ZoneTopology(zones, rtt)
    return PlacementPlanner(cluster, topology, mode=mode)


class TestPlannerProperties:
    @given(topo=topologies(), latency=st.none() | st.floats(1, 100))
    @settings(max_examples=50)
    def test_plan_is_deterministic(self, topo, latency):
        zones, rtt = topo
        nfr = NonFunctionalRequirements(qos=QosRequirement(latency_ms=latency))
        plans = [
            build_planner(zones, rtt, nodes_per_zone=2).plan(nfr)
            for _ in range(3)
        ]
        assert plans[0] == plans[1] == plans[2]

    @given(
        topo=topologies(),
        latency=st.none() | st.floats(1, 100),
        pick=st.integers(0, 4),
    )
    @settings(max_examples=50)
    def test_plan_never_violates_jurisdiction(self, topo, latency, pick):
        zones, rtt = topo
        allowed_zone = zones[pick % len(zones)]
        nfr = NonFunctionalRequirements(
            qos=QosRequirement(latency_ms=latency),
            constraint=Constraint(jurisdictions=(allowed_zone.name,)),
        )
        planner = build_planner(zones, rtt, nodes_per_zone=2)
        for node in planner.plan(nfr):
            assert planner.zone_of_node(node).name == allowed_zone.name

    @given(topo=topologies(), latency=st.none() | st.floats(1, 100))
    @settings(max_examples=50)
    def test_plan_nodes_exist_and_are_unique(self, topo, latency):
        zones, rtt = topo
        nfr = NonFunctionalRequirements(qos=QosRequirement(latency_ms=latency))
        planner = build_planner(zones, rtt, nodes_per_zone=2)
        plan = planner.plan(nfr)
        assert len(plan) == len(set(plan))
        assert set(plan) <= set(planner.cluster.node_names)

    @given(topo=topologies())
    @settings(max_examples=50)
    def test_latency_nfr_pins_to_lowest_tier(self, topo):
        zones, rtt = topo
        nfr = NonFunctionalRequirements(qos=QosRequirement(latency_ms=10.0))
        planner = build_planner(zones, rtt, nodes_per_zone=2)
        plan = planner.plan(nfr)
        lowest = min(zone.tier_rank for zone in zones)
        assert plan and all(
            planner.zone_of_node(node).tier_rank == lowest for node in plan
        )

    @given(topo=topologies())
    @settings(max_examples=50)
    def test_core_only_mode_pins_to_highest_tier(self, topo):
        zones, rtt = topo
        nfr = NonFunctionalRequirements(qos=QosRequirement(latency_ms=10.0))
        planner = build_planner(zones, rtt, nodes_per_zone=2, mode="core-only")
        plan = planner.plan(nfr)
        highest = max(zone.tier_rank for zone in zones)
        assert plan and all(
            planner.zone_of_node(node).tier_rank == highest for node in plan
        )

    @given(
        near=st.floats(0.001, 0.019),
        far=st.floats(0.021, 0.2),
    )
    @settings(max_examples=50)
    def test_prefers_lower_latency_zone_when_tiers_tie(self, near, far):
        # Three same-tier zones: the planner must lead with the most
        # central one (lowest mean RTT to the other candidate zones).
        zones = (Zone("a"), Zone("b"), Zone("c"))
        rtt = (("a", "b", near), ("b", "c", near), ("a", "c", far))
        planner = build_planner(zones, rtt, nodes_per_zone=1)
        plan = planner.plan(NonFunctionalRequirements())
        # "b" sits near both others; "a"/"c" each have one far edge.
        assert planner.zone_of_node(plan[0]).name == "b"


MIG_YAML = """
name: mig-app
classes:
  - name: Counter
    keySpecs: [{name: n, type: INT, default: 0}]
    functions: [{name: bump, image: m/bump}]
"""

MIG_ZONES = (
    Zone("edge-a", tier="edge"),
    Zone("region-a", tier="regional"),
    Zone("core", tier="core"),
)


def _bump(ctx):
    ctx.state["n"] = int(ctx.state.get("n") or 0) + 1
    return {"n": ctx.state["n"]}


def migration_platform(seed):
    return make_platform(
        MIG_YAML,
        {"m/bump": (_bump, 0.002)},
        nodes=6,
        seed=seed,
        regions=("edge-a", "region-a", "core"),
        federation=FederationConfig(enabled=True, zones=MIG_ZONES),
    )


class TestMigrationProperties:
    @given(
        seed=st.integers(0, 2**16),
        hops=st.lists(
            st.sampled_from(("edge-a", "region-a", "core")), min_size=1, max_size=4
        ),
        writes_between=st.integers(0, 3),
    )
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow])
    def test_version_monotone_and_exactly_once(self, seed, hops, writes_between):
        platform = migration_platform(seed)
        obj = platform.new_object("Counter", object_id="c-1")
        acked = 0
        last_version = 0
        for zone in hops:
            for _ in range(writes_between):
                if platform.invoke(obj, "bump", {}).ok:
                    acked += 1
            summary = platform.migrate_object(obj, zone, cls="Counter")
            # Version never regresses across a handoff, and the owner
            # lands in the requested zone.
            assert summary["version"] >= last_version
            last_version = summary["version"]
            assert summary["target_zone"] == zone
            owner = platform.crm.dht_for("Counter").owner(obj)
            assert platform.federation.planner.zone_of_node(owner).name == zone
        for _ in range(writes_between):
            if platform.invoke(obj, "bump", {}).ok:
                acked += 1
        # Exactly-once visibility: every acknowledged increment is
        # present, no duplicates, regardless of the migration path.
        assert platform.get_object(obj)["state"]["n"] == acked
        platform.shutdown()

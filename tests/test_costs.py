"""Tests for cost accounting and budget enforcement."""

import pytest

from repro.crm.costs import HOURS_PER_MONTH, ClassCostMeter, CostModel
from repro.crm.template import ClassRuntimeTemplate, RuntimeConfig, TemplateCatalog
from repro.crm.optimizer import RequirementOptimizer
from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.sim.kernel import Environment
from repro.storage.kv import DocumentStore


class TestClassCostMeter:
    def test_replica_time_integration(self):
        env = Environment()
        replicas = {"n": 2}
        meter = ClassCostMeter(
            env, "T", CostModel(replica_usd_per_hour=1.0), lambda: replicas["n"], lambda: 0.0
        )
        env.run(until=3600.0)  # one hour at 2 replicas
        assert meter.accrued_usd() == pytest.approx(2.0)

    def test_integration_tracks_scale_changes(self):
        env = Environment()
        replicas = {"n": 1}
        meter = ClassCostMeter(
            env, "T", CostModel(replica_usd_per_hour=1.0), lambda: replicas["n"], lambda: 0.0
        )
        env.run(until=1800.0)
        meter.observe()         # half hour at 1 replica
        replicas["n"] = 3
        meter.observe()         # re-sample after the scale change
        env.run(until=3600.0)   # half hour at 3 replicas
        assert meter.accrued_usd() == pytest.approx(0.5 + 1.5)

    def test_db_units_priced(self):
        env = Environment()
        meter = ClassCostMeter(
            env,
            "T",
            CostModel(replica_usd_per_hour=0.0, db_usd_per_million_units=2.0),
            lambda: 0,
            lambda: 500_000.0,
        )
        assert meter.accrued_usd() == pytest.approx(1.0)

    def test_monthly_run_rate_with_extra(self):
        env = Environment()
        meter = ClassCostMeter(
            env, "T", CostModel(replica_usd_per_hour=0.1), lambda: 2, lambda: 0.0
        )
        base = meter.monthly_run_rate_usd()
        plus_one = meter.monthly_run_rate_usd(extra_replicas=1)
        assert base == pytest.approx(2 * 0.1 * HOURS_PER_MONTH)
        assert plus_one - base == pytest.approx(0.1 * HOURS_PER_MONTH)


class TestCostTracker:
    def test_db_units_attributed_per_collection(self, env):
        store = DocumentStore(env)

        def scenario(env):
            yield store.write("objects.A", [{"id": "x"}])
            yield store.write("objects.B", [{"id": "y"}, {"id": "z"}])
            yield store.read("objects.A", "x")

        env.run(until=env.process(scenario(env)))
        assert store.units_for("objects.A") == pytest.approx(5 + 5)  # write + read
        assert store.units_for("objects.B") == pytest.approx(6)
        assert store.units_for("objects.C") == 0.0

    def test_platform_report(self, platform):
        obj = platform.new_object("Image")
        platform.invoke(obj, "resize", {"width": 5})
        platform.advance(3600.0)
        report = platform.crm.costs.report()
        classes = {row["class"] for row in report}
        assert classes == {"Image", "LabelledImage"}
        image_row = next(r for r in report if r["class"] == "Image")
        assert image_row["accrued_usd"] > 0
        assert image_row["monthly_run_rate_usd"] > 0

    def test_register_idempotent(self, platform):
        runtime = platform.crm.runtime("Image")
        meter = platform.crm.costs.register(runtime)
        assert platform.crm.costs.register(runtime) is meter


class TestBudgetEnforcement:
    def _budget_platform(self, budget_usd):
        # Non-autoscaled deployment so only the optimizer moves replicas.
        catalog = TemplateCatalog(
            [
                ClassRuntimeTemplate(
                    name="pinned",
                    config=RuntimeConfig(engine="deployment", min_scale_override=1),
                )
            ]
        )
        platform = Oparaca(PlatformConfig(nodes=3, catalog=catalog))

        @platform.function("b/slow", service_time_s=0.2)
        def slow(ctx):
            return {}

        platform.deploy(
            f"""
classes:
  - name: Capped
    qos: {{ throughput: 400 }}
    constraint: {{ budget: {budget_usd} }}
    functions:
      - name: work
        image: b/slow
        provision: {{ concurrency: 2, minScale: 1 }}
"""
        )
        return platform

    def _drive(self, platform, optimizer, seconds=12.0):
        obj = platform.new_object("Capped")
        from repro.invoker.request import InvocationRequest

        def client(env):
            while env.now < seconds:
                yield platform.engine.invoke(
                    InvocationRequest(object_id=obj, fn_name="work")
                )

        for _ in range(12):
            platform.env.process(client(platform.env))
        platform.env.run(until=seconds)
        optimizer.stop()

    def test_tight_budget_blocks_scale_up(self):
        # ~0.048 USD/replica-hour * 730 h => one replica is ~35 USD/month;
        # a 40 USD budget cannot afford a second replica.
        platform = self._budget_platform(budget_usd=40)
        optimizer = RequirementOptimizer(
            platform.env, platform.crm, platform.monitoring, interval_s=1.0
        )
        self._drive(platform, optimizer)
        svc = platform.crm.runtime("Capped").services["work"]
        assert svc.replicas == 1
        assert any(d.action == "budget-hold" for d in optimizer.decisions)
        assert not any(d.action == "scale-up" for d in optimizer.decisions)

    def test_loose_budget_allows_scale_up(self):
        platform = self._budget_platform(budget_usd=10_000)
        optimizer = RequirementOptimizer(
            platform.env, platform.crm, platform.monitoring, interval_s=1.0
        )
        self._drive(platform, optimizer)
        svc = platform.crm.runtime("Capped").services["work"]
        assert svc.replicas > 1
        assert not any(d.action == "budget-hold" for d in optimizer.decisions)

"""End-to-end tests of the scheduler plane wired into the platform:
worker pool bring-up, dispatch, drain/crash handling, gateway routes,
reports, chaos determinism, and the off-by-default baseline guarantee."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import FaultPlan, HeartbeatLoss, SlowWorker, WorkerCrash
from repro.errors import ValidationError
from repro.scheduler import SchedulerConfig, WorkerState

from tests.conformance.dsl import (
    Crash,
    Drain,
    LoseHeartbeats,
    Scenario,
    Submit,
    check_exactly_once,
    run_scenario,
)
from tests.helpers import make_platform, seeded_baseline_run

SCHED_YAML = """
name: sched-app
classes:
  - name: Task
    keySpecs: [{name: n, type: INT, default: 0}]
    functions:
      - name: bump
        image: s/bump
"""


def _bump(ctx):
    ctx.state["n"] = int(ctx.state.get("n") or 0) + 1
    return {"n": ctx.state["n"]}


def sched_platform(**scheduler_kwargs):
    scheduler_kwargs.setdefault("pool_size", 3)
    scheduler_kwargs.setdefault("heartbeat_interval_s", 0.1)
    scheduler_kwargs.setdefault("dead_after_misses", 4)
    return make_platform(
        SCHED_YAML,
        {"s/bump": (_bump, 0.002)},
        nodes=3,
        seed=9,
        events_enabled=True,
        scheduler=SchedulerConfig(enabled=True, **scheduler_kwargs),
    )


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValidationError):
            SchedulerConfig(enabled=True, pool_size=0)
        with pytest.raises(ValidationError):
            SchedulerConfig(enabled=True, heartbeat_interval_s=0)
        with pytest.raises(ValidationError):
            SchedulerConfig(enabled=True, dead_after_misses=1, degraded_after_misses=2)


class TestPoolLifecycle:
    def test_pool_comes_up_and_serves(self):
        platform = sched_platform()
        plane = platform.scheduler_plane
        obj = platform.new_object("Task", object_id="t-0")
        completions = [platform.invoke_async(obj, "bump") for _ in range(10)]
        platform.advance(2.0)
        assert all(event.value.ok for event in completions)
        audit = plane.ledger.audit()
        assert audit == {
            "accepted": 10,
            "completed": 10,
            "outstanding": 0,
            "requeues": 0,
            "suppressed": 0,
        }
        names = {w["worker"] for w in plane.describe_workers()}
        assert names == {"worker-0", "worker-1", "worker-2"}
        assert all(w["state"] == "READY" for w in plane.describe_workers())
        platform.shutdown()

    def test_workers_run_as_pods_on_cluster_nodes(self):
        platform = sched_platform()
        for worker in platform.scheduler_plane.workers.values():
            pod = platform.cluster.pod(worker.pod.name)
            assert pod is worker.pod
            assert pod.spec.labels["app"] == "oaas-worker"
        platform.shutdown()

    def test_drain_hands_off_and_pool_self_heals(self):
        platform = sched_platform()
        plane = platform.scheduler_plane
        obj = platform.new_object("Task", object_id="t-0")
        for _ in range(20):
            platform.invoke_async(obj, "bump")
        platform.advance(0.5)  # pool up, work in progress
        plane.drain_worker("worker-0")
        platform.advance(3.0)
        audit = plane.ledger.audit()
        assert audit["outstanding"] == 0 and audit["completed"] == 20
        assert plane.workers["worker-0"].state is WorkerState.DEAD
        # Replacement keeps the pool at size.
        assert plane.live_workers == 3
        platform.shutdown()

    def test_crash_requeues_and_completes_everything(self):
        platform = sched_platform(dispatch_overhead_s=0.005)
        plane = platform.scheduler_plane
        obj = platform.new_object("Task", object_id="t-0")
        for _ in range(20):
            platform.invoke_async(obj, "bump")
        platform.advance(0.003)  # land the crash while work is in flight
        victim = next(iter(plane.workers))
        assert plane.crash_worker(victim, reason="test")
        platform.advance(3.0)
        audit = plane.ledger.audit()
        assert audit["outstanding"] == 0 and audit["completed"] == 20
        assert platform.queue.completed == 20
        platform.shutdown()


class TestGatewayRoutes:
    def test_workers_listing(self):
        platform = sched_platform()
        response = platform.http("GET", "/api/workers")
        assert response.status == 200
        assert response.body["count"] == 3
        assert {w["worker"] for w in response.body["workers"]} == {
            "worker-0",
            "worker-1",
            "worker-2",
        }
        assert "accepted" in response.body["ledger"]
        platform.shutdown()

    def test_drain_route_and_errors(self):
        platform = sched_platform()
        platform.advance(0.5)  # workers READY (draining REGISTERED is illegal)
        response = platform.http("POST", "/api/workers/worker-1/drain")
        assert response.status == 202
        assert response.body["state"] == "DRAINING"
        assert platform.http("POST", "/api/workers/nope/drain").status == 404
        platform.advance(1.0)  # worker-1 finishes draining -> DEAD
        assert platform.http("POST", "/api/workers/worker-1/drain").status == 409
        platform.shutdown()

    def test_routes_404_when_plane_off(self):
        platform = make_platform(SCHED_YAML, {"s/bump": (_bump, 0.002)}, nodes=2)
        for method, path in (
            ("GET", "/api/workers"),
            ("POST", "/api/workers/worker-0/drain"),
        ):
            response = platform.http(method, path)
            assert response.status == 404
            assert response.body["type"] == "NoRouteError"
        platform.shutdown()


class TestReportsAndBaseline:
    def test_reports_and_snapshot_keys(self):
        platform = sched_platform()
        obj = platform.new_object("Task", object_id="t-0")
        for _ in range(5):
            platform.invoke_async(obj, "bump")
        platform.advance(3.0)  # covers the first invocation's cold start
        report = platform.scheduler_report()
        assert report["ledger"]["completed"] == 5
        assert report["live_workers"] == 3
        assert "scheduler" in platform.observability_report()
        keys = set(platform.snapshot())
        assert {"scheduler.accepted", "scheduler.completed"} <= keys
        platform.shutdown()

        baseline = make_platform(nodes=2)
        assert not {"scheduler.accepted"} & set(baseline.snapshot())
        assert baseline.scheduler_plane is None
        baseline.shutdown()

    def test_metrics_plane_scrapes_worker_series(self):
        from repro.monitoring.plane import MetricsConfig

        platform = make_platform(
            SCHED_YAML,
            {"s/bump": (_bump, 0.002)},
            seed=9,
            scheduler=SchedulerConfig(enabled=True, pool_size=2),
            metrics=MetricsConfig(enabled=True),
        )
        obj = platform.new_object("Task", object_id="t-0")
        for _ in range(5):
            platform.invoke_async(obj, "bump")
        platform.advance(3.0)
        platform.shutdown()
        text = platform.metrics_exposition()
        assert 'scheduler_completed{plane="scheduler",worker="worker-0"}' in text
        assert 'scheduler_accepted{plane="scheduler"}' in text

    def test_disabled_plane_runs_identically_to_seed_baseline(self):
        default = seeded_baseline_run()
        explicit_off = seeded_baseline_run(
            scheduler=SchedulerConfig(enabled=False)
        )
        assert default == explicit_off


class TestChaosDeterminism:
    PLAN = FaultPlan(
        name="worker-mayhem",
        faults=(
            WorkerCrash(at=0.4, worker="worker-0", duration_s=0.8),
            HeartbeatLoss(at=0.6, worker="worker-1", duration_s=0.9),
            SlowWorker(at=0.3, worker="worker-2", factor=4.0, duration_s=1.0),
        ),
    )

    def run_with_chaos(self, seed: int):
        platform = make_platform(
            SCHED_YAML,
            {"s/bump": (_bump, 0.002)},
            nodes=3,
            seed=seed,
            events_enabled=True,
            scheduler=SchedulerConfig(
                enabled=True,
                pool_size=3,
                heartbeat_interval_s=0.1,
                dead_after_misses=4,
                dispatch_overhead_s=0.002,
            ),
        )
        ids = [
            platform.new_object("Task", object_id=f"t-{i}") for i in range(3)
        ]
        platform.inject_chaos(self.PLAN)
        for i in range(40):
            platform.invoke_async(ids[i % 3], "bump")
            platform.advance(0.02)
        platform.advance(10.0)
        outcome = {
            "audit": platform.scheduler_plane.ledger.audit(),
            "delivered": platform.scheduler_plane.delivered,
            "completed": platform.queue.completed,
            "events": platform.events.render(),
        }
        platform.shutdown()
        return outcome

    def test_same_seed_and_plan_replays_identically(self):
        first = self.run_with_chaos(seed=11)
        second = self.run_with_chaos(seed=11)
        assert first["audit"]["requeues"] > 0  # the chaos actually bit
        assert first["audit"]["outstanding"] == 0  # and nothing was lost
        assert first == second


# -- property test: exactly-once under arbitrary interleavings ---------------

chaos_steps = st.lists(
    st.one_of(
        st.builds(
            Submit,
            at=st.floats(0.0, 2.0).map(lambda v: round(v, 3)),
            count=st.integers(1, 3),
            object_key=st.integers(0, 2),
        ),
        st.builds(
            Crash,
            at=st.floats(0.2, 2.0).map(lambda v: round(v, 3)),
            worker=st.sampled_from([f"worker-{i}" for i in range(4)]),
        ),
        st.builds(
            Drain,
            at=st.floats(0.2, 2.0).map(lambda v: round(v, 3)),
            worker=st.sampled_from([f"worker-{i}" for i in range(4)]),
        ),
        st.builds(
            LoseHeartbeats,
            at=st.floats(0.2, 2.0).map(lambda v: round(v, 3)),
            worker=st.sampled_from([f"worker-{i}" for i in range(4)]),
            duration_s=st.floats(0.15, 0.8).map(lambda v: round(v, 3)),
        ),
    ),
    min_size=1,
    max_size=10,
)


class TestExactlyOnceProperty:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(steps=chaos_steps)
    def test_every_accepted_invocation_completes_exactly_once(self, steps):
        """Whatever interleaving of submits, crashes, drains, and
        heartbeat losses hypothesis invents, no accepted invocation is
        dropped or double-delivered."""
        scenario = Scenario(name="hypothesis", steps=tuple(steps))
        result = run_scenario(scenario)
        assert check_exactly_once(result) == [], result.skipped_steps


LATE_YAML = """
name: late-app
classes:
  - name: Late
    keySpecs: [{name: n, type: INT, default: 0}]
    functions:
      - name: bump
        image: s/bump
"""


class TestBugfixSweep:
    """Regressions for the scheduler-plane bugfix sweep (PR 8)."""

    def test_unknown_class_parks_until_deploy(self):
        """A submit racing ``on_deploy`` must park, not dispatch to a
        worker that never installed the class."""
        from repro.invoker.request import InvocationRequest

        platform = sched_platform()
        plane = platform.scheduler_plane
        request = InvocationRequest(
            object_id="Late~r0", fn_name="bump", cls="Late"
        )
        plane.submit(request)
        platform.advance(1.0)
        # Parked, not dispatched: no worker ever saw it.
        assert plane.core.parked == 1
        # Cumulative: every flush attempt that re-parks counts.
        assert plane.parked_total >= 1
        assert plane.ledger.entry(request.request_id).state.value == "ACCEPTED"
        assert all(
            w.dispatched_count == 0 for w in plane.workers.values()
        )
        # The deploy lands; the parked request flushes and completes.
        platform.deploy(LATE_YAML)
        platform.new_object("Late", object_id="r0")
        platform.advance(2.0)
        assert plane.core.parked == 0
        entry = plane.ledger.entry(request.request_id)
        assert entry.state.value == "COMPLETED"
        platform.shutdown()

    def test_chaos_seam_guards_consistent_on_dead_workers(self):
        """clear_worker_slow must refuse dead workers exactly like
        set_worker_slow and resume_heartbeats."""
        platform = sched_platform()
        platform.advance(0.5)
        plane = platform.scheduler_plane
        assert plane.set_worker_slow("worker-0", 3.0) is True
        assert plane.clear_worker_slow("worker-0") is True
        plane.crash_worker("worker-0", reason="test")
        assert plane.set_worker_slow("worker-0", 3.0) is False
        assert plane.resume_heartbeats("worker-0") is False
        assert plane.suppress_heartbeats("worker-0", 1.0) is False
        assert plane.clear_worker_slow("worker-0") is False
        assert plane.clear_worker_slow("no-such-worker") is False
        platform.shutdown()

    def test_stop_reports_parked_and_halts_workers(self):
        """stop() must mirror ConsumerGroup.stop()'s report shape and
        leave no worker processes running on the kernel."""
        from repro.invoker.request import InvocationRequest

        platform = sched_platform()
        obj = platform.new_object("Task", object_id="t-0")
        for _ in range(3):
            platform.invoke_async(obj, "bump")
        platform.advance(2.0)
        plane = platform.scheduler_plane
        plane.submit(
            InvocationRequest(object_id="Late~r1", fn_name="bump", cls="Late")
        )
        report = plane.stop()
        assert report == {"pending": 1, "parked": 1}
        # Idempotent: a second stop (shutdown calls it again) re-reports.
        assert plane.stop() == {"pending": 1, "parked": 1}
        # Halted: no heartbeat/work-loop activity after stop, ever.
        beats = plane.heartbeats
        sent = [w.heartbeats_sent for w in plane.workers.values()]
        platform.advance(5.0)
        assert plane.heartbeats == beats
        assert [w.heartbeats_sent for w in plane.workers.values()] == sent
        platform.shutdown()

    def test_transport_config_validated(self):
        with pytest.raises(ValidationError):
            SchedulerConfig(enabled=True, transport="carrier-pigeon")
        assert SchedulerConfig(enabled=True, transport="asyncio").transport == "asyncio"

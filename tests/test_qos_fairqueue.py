"""Unit tests for the weighted-fair queue and the overload controller."""

import pytest

from repro.qos.fairqueue import WeightedFairQueue
from repro.qos.policy import QosPolicy
from repro.qos.shedder import OverloadController


def drain(env, queue, count):
    """Serve ``count`` items synchronously (queue is non-empty)."""
    got = []
    for _ in range(count):
        event = queue.get()
        env.run(until=event)
        got.append(event.value)
    return got


class TestWeightedFairQueue:
    def test_fifo_within_single_class(self, env):
        queue = WeightedFairQueue(env)
        for i in range(5):
            queue.push("A", i)
        assert [item.value for item in drain(env, queue, 5)] == [0, 1, 2, 3, 4]

    def test_drr_serves_proportionally_to_weight(self, env):
        queue = WeightedFairQueue(env)
        queue.set_weight("Hot", 8)
        queue.set_weight("Cold", 1)
        for i in range(40):
            queue.push("Hot", ("hot", i))
            queue.push("Cold", ("cold", i))
        first = [item.cls for item in drain(env, queue, 18)]
        # One full rotation serves 8 Hot + 1 Cold; two rotations = 16:2.
        assert first.count("Hot") == 16
        assert first.count("Cold") == 2

    def test_edf_orders_by_deadline_within_class(self, env):
        queue = WeightedFairQueue(env)
        queue.push("A", "lax", deadline_s=9.0)
        queue.push("A", "urgent", deadline_s=1.0)
        queue.push("A", "middle", deadline_s=5.0)
        values = [item.value for item in drain(env, queue, 3)]
        assert values == ["urgent", "middle", "lax"]

    def test_no_deadline_sorts_after_deadlines(self, env):
        queue = WeightedFairQueue(env)
        queue.push("A", "whenever")
        queue.push("A", "urgent", deadline_s=1.0)
        values = [item.value for item in drain(env, queue, 2)]
        assert values == ["urgent", "whenever"]

    def test_blocked_getter_woken_by_push(self, env):
        queue = WeightedFairQueue(env)
        got = []

        def consumer(env):
            item = yield queue.get()
            got.append((item.value, env.now))

        def producer(env):
            yield env.timeout(2.0)
            queue.push("A", "data")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [("data", 2.0)]

    def test_queue_delay_measured_from_enqueue(self, env):
        queue = WeightedFairQueue(env)
        item = queue.push("A", 1)
        env.run(until=3.0)
        assert item.queue_delay(env.now) == pytest.approx(3.0)

    def test_shed_removes_newest_first_and_counts(self, env):
        queue = WeightedFairQueue(env)
        for i in range(5):
            queue.push("A", i)
        victims = queue.shed("A", 2)
        assert sorted(item.value for item in victims) == [3, 4]
        assert queue.depth("A") == 3
        assert queue.shed_count == {"A": 2}
        survivors = [item.value for item in drain(env, queue, 3)]
        assert survivors == [0, 1, 2]

    def test_shed_unknown_class_is_noop(self, env):
        queue = WeightedFairQueue(env)
        assert queue.shed("ghost", 3) == []

    def test_weight_validation(self, env):
        with pytest.raises(ValueError):
            WeightedFairQueue(env).set_weight("A", 0)

    def test_stats(self, env):
        queue = WeightedFairQueue(env)
        queue.push("A", 1)
        queue.push("B", 2)
        drain(env, queue, 1)
        stats = queue.stats()
        assert stats["pushed"] == 2
        assert stats["served"] == 1
        assert stats["depth"] == 1


def make_controller(env, queue, policies, **kwargs):
    return OverloadController(
        env,
        [queue],
        policy_for=lambda cls: policies[cls],
        **kwargs,
    )


class TestOverloadController:
    def test_no_shed_below_watermark(self, env):
        queue = WeightedFairQueue(env)
        policies = {"A": QosPolicy(cls="A")}
        controller = make_controller(env, queue, policies, queue_depth_high=10)
        for i in range(5):
            queue.push("A", i)
        assert controller.check() == 0

    def test_sheds_lowest_tier_down_to_target(self, env):
        queue = WeightedFairQueue(env)
        policies = {
            "Hot": QosPolicy(cls="Hot", tier=8, weight=8),
            "Noisy": QosPolicy(cls="Noisy", tier=1, weight=1),
        }
        shed = []
        controller = make_controller(
            env,
            queue,
            policies,
            on_shed=shed.append,
            queue_depth_high=10,
            target_fraction=0.5,
        )
        for i in range(4):
            queue.push("Hot", i)
        for i in range(16):
            queue.push("Noisy", i)
        count = controller.check()
        assert count == 15  # 20 queued -> target depth 5
        assert all(item.cls == "Noisy" for item in shed)
        assert queue.depth("Hot") == 4

    def test_highest_tier_protected_when_mixed(self, env):
        queue = WeightedFairQueue(env)
        policies = {
            "Hot": QosPolicy(cls="Hot", tier=8),
            "Noisy": QosPolicy(cls="Noisy", tier=1),
        }
        controller = make_controller(
            env, queue, policies, queue_depth_high=4, target_fraction=0.0
        )
        for i in range(20):
            queue.push("Hot", i)
        queue.push("Noisy", 0)
        controller.check()
        # Only the single Noisy item may be shed; Hot survives intact
        # even though depth stays above target.
        assert queue.depth("Hot") == 20
        assert queue.depth("Noisy") == 0

    def test_single_tier_can_be_shed(self, env):
        queue = WeightedFairQueue(env)
        policies = {"Only": QosPolicy(cls="Only", tier=2)}
        controller = make_controller(
            env, queue, policies, queue_depth_high=4, target_fraction=0.5
        )
        for i in range(10):
            queue.push("Only", i)
        assert controller.check() == 8
        assert queue.depth("Only") == 2

    def test_periodic_process_sheds_while_running(self, env):
        queue = WeightedFairQueue(env)
        policies = {"A": QosPolicy(cls="A", tier=1)}
        controller = make_controller(
            env, queue, policies, queue_depth_high=4, check_interval_s=0.5
        )
        for i in range(10):
            queue.push("A", i)
        controller.start()
        env.run(until=1.0)
        assert controller.shed_total > 0
        controller.stop()
        shed_before = controller.shed_total
        for i in range(10):
            queue.push("A", i)
        env.run(until=5.0)
        assert controller.shed_total == shed_before

    def test_validation(self, env):
        queue = WeightedFairQueue(env)
        with pytest.raises(ValueError):
            make_controller(env, queue, {}, queue_depth_high=0)
        with pytest.raises(ValueError):
            make_controller(env, queue, {}, target_fraction=1.0)
        with pytest.raises(ValueError):
            make_controller(env, queue, {}, check_interval_s=0)

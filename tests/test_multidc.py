"""Tests for multi-datacenter deployment (paper §VI future work).

Regions, jurisdiction-constrained placement of state and pods, and the
inter-region latency model.
"""

import pytest

from repro.errors import DeploymentError
from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.sim.kernel import Environment
from repro.sim.network import Network, NetworkModel

EU_PACKAGE = """
classes:
  - name: EuRecord
    constraint:
      jurisdiction: eu-west
    keySpecs:
      - { name: payload, type: STR }
    functions:
      - { name: touch, image: dc/touch }
  - name: GlobalRecord
    keySpecs:
      - { name: payload, type: STR }
    functions:
      - { name: touch, image: dc/touch }
"""


def multi_dc_platform(nodes=4, regions=("us-east", "eu-west")):
    platform = Oparaca(PlatformConfig(nodes=nodes, regions=regions))

    @platform.function("dc/touch", service_time_s=0.001)
    def touch(ctx):
        ctx.state["payload"] = str(ctx.payload.get("value", ""))
        return {"node": "ok"}

    platform.deploy(EU_PACKAGE)
    return platform


class TestRegions:
    def test_nodes_labelled_round_robin(self):
        platform = multi_dc_platform()
        regions = [platform.cluster.region_of(n) for n in platform.cluster.node_names]
        assert regions == ["us-east", "eu-west", "us-east", "eu-west"]
        assert platform.cluster.regions == ("eu-west", "us-east")

    def test_nodes_in_regions(self):
        platform = multi_dc_platform()
        eu_nodes = platform.cluster.nodes_in_regions(("eu-west",))
        assert eu_nodes == ["vm-1", "vm-3"]

    def test_unknown_endpoint_region_neutral(self):
        platform = multi_dc_platform()
        assert platform.cluster.region_of("external-client") is None


class TestJurisdiction:
    def test_state_confined_to_allowed_region(self):
        platform = multi_dc_platform()
        eu_nodes = set(platform.cluster.nodes_in_regions(("eu-west",)))
        dht = platform.crm.dht_for("EuRecord")
        assert set(dht.nodes) == eu_nodes
        for i in range(20):
            obj = platform.new_object("EuRecord", {"payload": f"p{i}"})
            assert dht.owner(obj) in eu_nodes

    def test_pods_confined_to_allowed_region(self):
        platform = multi_dc_platform()
        eu_nodes = set(platform.cluster.nodes_in_regions(("eu-west",)))
        obj = platform.new_object("EuRecord")
        platform.invoke(obj, "touch", {"value": "x"})  # forces a replica up
        service = platform.crm.runtime("EuRecord").services["touch"]
        assert service.deployment.pods, "expected at least one replica"
        for pod in service.deployment.pods:
            assert pod.node in eu_nodes

    def test_unconstrained_class_spans_all_nodes(self):
        platform = multi_dc_platform()
        dht = platform.crm.dht_for("GlobalRecord")
        assert set(dht.nodes) == set(platform.cluster.node_names)

    def test_impossible_jurisdiction_rejected_at_deploy(self):
        platform = Oparaca(PlatformConfig(nodes=2, regions=("us-east",)))
        platform.register_image("dc/touch", lambda ctx: {})
        with pytest.raises(DeploymentError, match="jurisdiction"):
            platform.deploy(
                "classes:\n  - name: X\n    constraint: { jurisdiction: mars }\n"
            )

    def test_jurisdiction_without_regions_rejected(self):
        platform = Oparaca(PlatformConfig(nodes=2))  # no region labels
        platform.register_image("dc/touch", lambda ctx: {})
        with pytest.raises(DeploymentError):
            platform.deploy(
                "classes:\n  - name: X\n    constraint: { jurisdiction: eu-west }\n"
            )

    def test_invocations_still_work_under_constraint(self):
        platform = multi_dc_platform()
        obj = platform.new_object("EuRecord")
        result = platform.invoke(obj, "touch", {"value": "gdpr"})
        assert result.ok
        assert platform.get_object(obj)["state"]["payload"] == "gdpr"


class TestInterRegionLatency:
    def test_cross_region_transfer_slower(self):
        env = Environment()
        regions = {"a1": "A", "a2": "A", "b1": "B"}
        network = Network(
            env,
            NetworkModel(rtt_s=0.001, inter_region_rtt_s=0.05, bandwidth_bps=0),
            region_of=regions.get,
        )

        def timed(src, dst):
            start = env.now
            yield network.transfer(src, dst)
            return env.now - start

        same = env.run(until=env.process(timed("a1", "a2")))
        cross = env.run(until=env.process(timed("a1", "b1")))
        assert same == pytest.approx(0.001)
        assert cross == pytest.approx(0.05)
        assert network.cross_region_transfers == 1

    def test_unknown_region_treated_local(self):
        env = Environment()
        network = Network(
            env,
            NetworkModel(rtt_s=0.001, inter_region_rtt_s=0.05, bandwidth_bps=0),
            region_of=lambda n: None,
        )

        def timed():
            start = env.now
            yield network.transfer("x", "y")
            return env.now - start

        assert env.run(until=env.process(timed())) == pytest.approx(0.001)

    def test_constrained_class_avoids_cross_region_state_traffic(self):
        platform = multi_dc_platform()
        obj = platform.new_object("EuRecord")
        before = platform.network.cross_region_transfers
        for i in range(10):
            platform.invoke(obj, "touch", {"value": str(i)})
        # Locality routing + region-confined DHT: all state traffic
        # stays inside eu-west.
        assert platform.network.cross_region_transfers == before

"""Failure-injection tests: node crashes, failover, and durability.

These pin down the durability semantics the class-runtime templates
trade between: replication keeps hot state alive through a crash,
persistence recovers it from the document store (minus the unflushed
write-behind window), and non-replicated ephemeral state dies with its
node.
"""

import pytest

from repro.errors import StorageError
from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.crm.template import ClassRuntimeTemplate, RuntimeConfig, TemplateCatalog
from repro.sim.network import Network
from repro.storage.dht import Dht, DhtModel
from repro.storage.kv import DocumentStore
from repro.storage.write_behind import WriteBehindConfig


def make_dht(env, nodes=4, replication=1, persistent=True, linger=10.0):
    """A DHT with a deliberately long linger so writes stay buffered."""
    network = Network(env)
    store = DocumentStore(env) if persistent else None
    return (
        Dht(
            env,
            [f"n{i}" for i in range(nodes)],
            network,
            store,
            DhtModel(
                replication=replication,
                persistent=persistent,
                write_behind=WriteBehindConfig(batch_size=100, linger_s=linger),
            ),
        ),
        store,
    )


def run(env, generator):
    return env.run(until=env.process(generator))


class TestDhtFailover:
    def test_cannot_fail_unknown_or_last_node(self, env):
        dht, _ = make_dht(env, nodes=2)
        with pytest.raises(StorageError):
            dht.fail_node("ghost")
        dht.fail_node("n0")
        with pytest.raises(StorageError, match="last"):
            dht.fail_node("n1")

    def test_replicated_data_survives_owner_crash(self, env):
        dht, _ = make_dht(env, nodes=4, replication=2, persistent=False)
        for i in range(50):
            dht.seed({"id": f"k{i}", "version": 1, "v": i})
        victim = dht.owner("k7")
        dht.fail_node(victim)

        def read(env):
            doc = yield dht.get("k7", caller=None)
            return doc

        doc = run(env, read(env))
        assert doc is not None and doc["v"] == 7

    def test_unreplicated_ephemeral_data_dies_with_node(self, env):
        dht, _ = make_dht(env, nodes=4, replication=1, persistent=False)
        for i in range(50):
            dht.seed({"id": f"k{i}", "version": 1, "v": i})
        victim = dht.owner("k7")
        resident_before = dht.mem_count()
        dht.fail_node(victim)

        def read(env):
            doc = yield dht.get("k7", caller=None)
            return doc

        assert run(env, read(env)) is None
        # Other nodes' data survived the rebalance.
        survivors = sum(1 for i in range(50) if dht.peek(f"k{i}") is not None)
        assert 0 < survivors < 50
        assert resident_before == 50

    def test_persistent_data_reloads_from_store(self, env):
        dht, store = make_dht(env, nodes=4, replication=1, persistent=True, linger=0.001)

        def write_and_crash(env):
            for i in range(30):
                yield dht.put({"id": f"k{i}", "version": 1, "v": i}, caller="n0")
            yield dht.flush_all()

        run(env, write_and_crash(env))
        victim = dht.owner("k3")
        stats = dht.fail_node(victim)
        assert stats["lost_pending"] == 0  # everything was flushed

        def read(env):
            doc = yield dht.get("k3", caller=None)
            return doc

        assert run(env, read(env))["v"] == 3

    def test_unflushed_writes_lost_on_crash(self, env):
        dht, store = make_dht(env, nodes=2, replication=1, persistent=True, linger=100.0)

        def write(env):
            for i in range(20):
                yield dht.put({"id": f"k{i}", "version": 1}, caller="n0")

        run(env, write(env))
        assert dht.pending_writes() == 20
        victim = dht.nodes[0]
        pending_on_victim = sum(
            1 for i in range(20) if dht.owner(f"k{i}") == victim
        )
        stats = dht.fail_node(victim)
        assert stats["lost_pending"] == pending_on_victim
        assert stats["lost_pending"] > 0

    def test_add_node_takes_ownership(self, env):
        dht, _ = make_dht(env, nodes=3, persistent=False)
        for i in range(200):
            dht.seed({"id": f"k{i}", "version": 1})
        dht.add_node("n99")
        owned = sum(1 for i in range(200) if dht.owner(f"k{i}") == "n99")
        assert owned > 0
        # Data that moved to the new node is readable there.
        assert dht.mem_count("n99") == owned

    def test_rebalance_keeps_newest_version(self, env):
        dht, _ = make_dht(env, nodes=3, replication=2, persistent=False)
        key = "hot"
        owners = dht.owners(key)
        dht._mem[owners[0]][key] = {"id": key, "version": 5, "v": "new"}
        dht._mem[owners[1]][key] = {"id": key, "version": 3, "v": "old"}
        dht.rebalance()
        assert dht.peek(key)["v"] == "new"


class TestDeploymentReconcile:
    def test_reconcile_replaces_dead_pods(self, env):
        from repro.orchestrator.cluster import Cluster
        from repro.orchestrator.deployment import Deployment
        from repro.orchestrator.pod import PodSpec
        from repro.orchestrator.resources import ResourceSpec
        from repro.orchestrator.scheduler import Scheduler

        cluster = Cluster(env)
        for i in range(3):
            cluster.add_node(f"vm-{i}", ResourceSpec(4000, 16384))
        deployment = Deployment(
            env,
            "web",
            PodSpec(image="i", resources=ResourceSpec(500, 128)),
            Scheduler(cluster),
            replicas=3,
        )
        cluster.remove_node("vm-0")
        assert deployment.replicas == 3  # stale entry still listed
        replaced = deployment.reconcile()
        assert replaced >= 1
        assert deployment.replicas == 3
        assert all(pod.node != "vm-0" for pod in deployment.pods)


class TestPlatformFailover:
    def _replicated_platform(self):
        catalog = TemplateCatalog(
            [
                ClassRuntimeTemplate(
                    name="ha",
                    config=RuntimeConfig(
                        engine="deployment", replication=2, min_scale_override=2
                    ),
                )
            ]
        )
        platform = Oparaca(PlatformConfig(nodes=4, catalog=catalog))
        platform.register_image("f/echo", lambda ctx: {"ok": True})
        platform.deploy(
            "classes:\n  - name: T\n    keySpecs: [{name: v, type: INT}]\n"
            "    functions: [{name: f, image: f/echo}]\n"
        )
        return platform

    def test_service_keeps_serving_through_node_loss(self):
        platform = self._replicated_platform()
        objects = [platform.new_object("T", {"v": i}) for i in range(12)]
        platform.advance(5.0)  # replicas warm
        victim = platform.cluster.node_names[0]
        platform.fail_node(victim)
        for obj in objects:
            result = platform.invoke(obj, "f", raise_on_error=False)
            assert result.ok, result.error
        assert victim not in platform.crm.dht_for("T").nodes

    def test_replicated_state_survives(self):
        platform = self._replicated_platform()
        obj = platform.new_object("T", {"v": 42})
        owner = platform.crm.dht_for("T").owner(obj)
        platform.fail_node(owner)
        assert platform.get_object(obj)["state"]["v"] == 42

    def test_pods_replaced_after_failure(self):
        platform = self._replicated_platform()
        platform.advance(5.0)
        service = platform.crm.runtime("T").services["f"]
        assert service.replicas == 2
        victim = service.deployment.pods[0].node
        platform.fail_node(victim)
        assert service.replicas == 2
        assert all(pod.node != victim for pod in service.deployment.pods)

    def test_add_node_extends_runtime(self):
        platform = self._replicated_platform()
        platform.add_node("vm-new")
        assert "vm-new" in platform.crm.dht_for("T").nodes

    def test_add_node_respects_jurisdiction(self):
        platform = Oparaca(PlatformConfig(nodes=2, regions=("eu-west",)))
        platform.register_image("f/echo", lambda ctx: {})
        platform.deploy(
            "classes:\n  - name: Eu\n    constraint: { jurisdiction: eu-west }\n"
            "    functions: [{name: f, image: f/echo}]\n"
        )
        platform.add_node("vm-us", region="us-east")
        assert "vm-us" not in platform.crm.dht_for("Eu").nodes
        platform.add_node("vm-eu", region="eu-west")
        assert "vm-eu" in platform.crm.dht_for("Eu").nodes

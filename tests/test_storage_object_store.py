"""Unit tests for the S3-style object store and presigned URLs."""

import pytest

from repro.errors import BucketNotFoundError, KeyNotFoundError, PresignedUrlError, StorageError
from repro.storage.object_store import ObjectStore, ObjectStoreModel, PresignedUrl


@pytest.fixture
def store(env):
    s = ObjectStore(env)
    s.create_bucket("media")
    return s


class TestBuckets:
    def test_create_and_exists(self, store):
        assert store.bucket_exists("media")
        assert not store.bucket_exists("ghost")

    def test_empty_name_rejected(self, store):
        with pytest.raises(StorageError):
            store.create_bucket("")

    def test_missing_bucket_raises(self, store):
        with pytest.raises(BucketNotFoundError):
            store.get_object("ghost", "k")

    def test_create_idempotent(self, store):
        store.put_object("media", "k", b"data")
        store.create_bucket("media")  # must not wipe contents
        assert store.get_object("media", "k").data == b"data"


class TestObjects:
    def test_put_get_roundtrip(self, store):
        store.put_object("media", "a/b.png", b"bytes", "image/png")
        obj = store.get_object("media", "a/b.png")
        assert obj.data == b"bytes"
        assert obj.content_type == "image/png"
        assert obj.size == 5

    def test_get_missing_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.get_object("media", "ghost")

    def test_head_returns_none_for_missing(self, store):
        assert store.head_object("media", "ghost") is None

    def test_etag_content_addressed(self, store):
        a = store.put_object("media", "x", b"same")
        b = store.put_object("media", "y", b"same")
        c = store.put_object("media", "z", b"different")
        assert a.etag == b.etag != c.etag

    def test_delete_object(self, store):
        store.put_object("media", "x", b"1")
        store.delete_object("media", "x")
        with pytest.raises(KeyNotFoundError):
            store.get_object("media", "x")

    def test_delete_missing_key_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.delete_object("media", "ghost")

    def test_delete_missing_bucket_raises(self, store):
        with pytest.raises(BucketNotFoundError):
            store.delete_object("ghost", "k")

    def test_list_missing_bucket_raises(self, store):
        with pytest.raises(BucketNotFoundError):
            store.list_objects("ghost")

    def test_list_with_prefix(self, store):
        for key in ("img/1", "img/2", "vid/1"):
            store.put_object("media", key, b"")
        assert store.list_objects("media", "img/") == ["img/1", "img/2"]
        assert store.list_objects("media") == ["img/1", "img/2", "vid/1"]

    def test_rejects_non_bytes(self, store):
        with pytest.raises(StorageError):
            store.put_object("media", "x", "a string")

    def test_empty_key_rejected(self, store):
        with pytest.raises(StorageError):
            store.put_object("media", "", b"")


class TestPresignedUrls:
    def test_get_roundtrip(self, store):
        store.put_object("media", "file", b"payload")
        url = store.presign("media", "file", "GET", expires_in_s=60)
        assert store.presigned_get(url).data == b"payload"
        assert store.presigned_used == 1

    def test_put_roundtrip(self, store):
        url = store.presign("media", "upload", "PUT", expires_in_s=60)
        store.presigned_put(url, b"uploaded")
        assert store.get_object("media", "upload").data == b"uploaded"

    def test_signature_tamper_rejected(self, store):
        store.put_object("media", "file", b"x")
        url = store.presign("media", "file", "GET")
        bad = url.replace("signature=", "signature=00")
        with pytest.raises(PresignedUrlError, match="signature"):
            store.presigned_get(bad)

    def test_key_substitution_rejected(self, store):
        store.put_object("media", "public", b"x")
        store.put_object("media", "secret", b"y")
        url = store.presign("media", "public", "GET")
        forged = url.replace("public", "secret")
        with pytest.raises(PresignedUrlError):
            store.presigned_get(forged)

    def test_method_mismatch_rejected(self, store):
        url = store.presign("media", "file", "PUT")
        with pytest.raises(PresignedUrlError, match="allows PUT"):
            store.presigned_get(url)

    def test_expiry_enforced(self, env, store):
        store.put_object("media", "file", b"x")
        url = store.presign("media", "file", "GET", expires_in_s=10)
        env.run(until=11.0)
        with pytest.raises(PresignedUrlError, match="expired"):
            store.presigned_get(url)

    def test_valid_until_expiry(self, env, store):
        store.put_object("media", "file", b"x")
        url = store.presign("media", "file", "GET", expires_in_s=10)
        env.run(until=9.0)
        assert store.presigned_get(url).data == b"x"

    def test_expired_exactly_at_boundary(self, env, store):
        # The lifetime is the half-open interval [issue, expiry): a URL
        # presented at its expiry instant is already expired.
        store.put_object("media", "file", b"x")
        url = store.presign("media", "file", "GET", expires_in_s=10)
        env.run(until=10.0)
        assert env.now == 10.0
        with pytest.raises(PresignedUrlError, match="expired"):
            store.presigned_get(url)

    def test_unknown_method_rejected(self, store):
        with pytest.raises(PresignedUrlError):
            store.presign("media", "k", "DELETE")

    def test_nonpositive_expiry_rejected(self, store):
        with pytest.raises(PresignedUrlError):
            store.presign("media", "k", "GET", expires_in_s=0)

    def test_presign_requires_bucket(self, store):
        with pytest.raises(BucketNotFoundError):
            store.presign("ghost", "k", "GET")

    def test_malformed_url_rejected(self, store):
        for bad in ("http://x/y", "s3://", "s3://b/k?method=GET"):
            with pytest.raises(PresignedUrlError):
                store.presigned_get(bad)

    def test_url_parse_roundtrip(self, store):
        url = store.presign("media", "dir/file with space.png", "GET")
        parsed = PresignedUrl.parse(url)
        assert parsed.bucket == "media"
        assert parsed.key == "dir/file with space.png"
        assert parsed.method == "GET"

    def test_stores_with_different_secrets_reject_each_other(self, env):
        a = ObjectStore(env, secret_key=b"secret-a")
        b = ObjectStore(env, secret_key=b"secret-b")
        for s in (a, b):
            s.create_bucket("m")
        a.put_object("m", "k", b"x")
        b.put_object("m", "k", b"x")
        url = a.presign("m", "k", "GET")
        with pytest.raises(PresignedUrlError):
            b.presigned_get(url)


class TestTimedPaths:
    def test_timed_put_and_get_advance_clock(self, env):
        store = ObjectStore(env, ObjectStoreModel(op_latency_s=0.001, bandwidth_bps=1e6))
        store.create_bucket("m")

        def scenario(env):
            yield store.put_timed("m", "k", b"x" * 1000)
            put_done = env.now
            obj = yield store.get_timed("m", "k")
            return put_done, env.now, obj

        put_done, get_done, obj = env.run(until=env.process(scenario(env)))
        assert put_done == pytest.approx(0.002)
        assert get_done == pytest.approx(0.004)
        assert obj.size == 1000

    def test_timed_presigned_paths(self, env):
        store = ObjectStore(env, ObjectStoreModel(op_latency_s=0.001, bandwidth_bps=1e6))
        store.create_bucket("m")

        def scenario(env):
            put_url = store.presign("m", "k", "PUT")
            yield store.presigned_put_timed(put_url, b"y" * 2000)
            get_url = store.presign("m", "k", "GET")
            obj = yield store.presigned_get_timed(get_url)
            return obj.data

        assert env.run(until=env.process(scenario(env))) == b"y" * 2000
        assert env.now > 0

"""Backend conformance: every engine honours the same contract.

The dict engine and the SQLite engine (in-memory and file-backed) are
run through identical CRUD, query-equivalence, fault, and accounting
suites; SQLite additionally proves its secondary indexes, schema
recovery, and backfill behaviour.
"""

import random

import pytest

from repro.errors import StorageError, ValidationError
from repro.model.types import DataType
from repro.sim.kernel import Environment
from repro.storage.backends import (
    DictBackend,
    SqliteBackend,
    StorageConfig,
    make_backend,
)
from repro.storage.kv import DocumentStore
from repro.storage.query import Predicate, Query, decode_cursor, evaluate_query

SCHEMA = {
    "total": DataType.FLOAT,
    "region": DataType.STR,
    "priority": DataType.INT,
    "active": DataType.BOOL,
}


def corpus():
    docs = []
    rng = random.Random(11)
    regions = ["eu-west", "eu-east", "us-east", "ap-south"]
    for i in range(40):
        state = {
            "total": round(rng.uniform(0, 100), 2),
            "region": rng.choice(regions),
            "priority": rng.randrange(5),
            "active": bool(i % 2),
        }
        if i % 7 == 0:
            del state["total"]  # some docs miss the order key
        docs.append({"id": f"Order~{i:03d}", "cls": "Order", "version": 1, "state": state})
    return docs


def make_engines(tmp_path):
    return {
        "dict": DictBackend(),
        "sqlite-memory": SqliteBackend(),
        "sqlite-file": SqliteBackend(str(tmp_path / "store.db")),
    }


@pytest.fixture(params=["dict", "sqlite-memory", "sqlite-file"])
def engine(request, tmp_path):
    backend = make_engines(tmp_path)[request.param]
    backend.register_schema("orders", SCHEMA)
    yield backend
    backend.close()


class TestConformanceCrud:
    def test_put_get_round_trip(self, engine):
        doc = {"id": "Order~001", "cls": "Order", "version": 3, "state": {"total": 9.5}}
        engine.put("orders", dict(doc))
        assert engine.get("orders", "Order~001") == doc

    def test_upsert_replaces(self, engine):
        engine.put("orders", {"id": "a", "state": {"total": 1.0}})
        engine.put("orders", {"id": "a", "state": {"total": 2.0}})
        assert engine.count("orders") == 1
        assert engine.get("orders", "a")["state"]["total"] == 2.0

    def test_get_missing(self, engine):
        assert engine.get("orders", "ghost") is None
        assert engine.get("never-created", "ghost") is None

    def test_delete(self, engine):
        engine.put("orders", {"id": "a", "state": {}})
        engine.delete("orders", "a")
        engine.delete("orders", "a")  # idempotent
        assert engine.get("orders", "a") is None
        assert engine.count("orders") == 0

    def test_keys_sorted(self, engine):
        for object_id in ("c", "a", "b"):
            engine.put("orders", {"id": object_id, "state": {}})
        assert engine.keys("orders") == ["a", "b", "c"]

    def test_put_many_and_get_many(self, engine):
        engine.put_many("orders", [{"id": "a", "state": {}}, {"id": "b", "state": {}}])
        out = engine.get_many("orders", ["a", "b", "ghost"])
        assert out["a"]["id"] == "a"
        assert out["ghost"] is None


QUERIES = [
    Query(),
    Query(where=(Predicate("total", "ge", 25.0), Predicate("total", "lt", 75.0))),
    Query(where=(Predicate("region", "eq", "eu-west"),)),
    Query(where=(Predicate("region", "prefix", "eu-"),), order_by="total"),
    Query(where=(Predicate("active", "eq", True),), order_by="total", descending=True),
    Query(where=(Predicate("priority", "le", 2),), order_by="region", limit=5),
    Query(order_by="total", limit=7),
    Query(limit=3),
]


class TestConformanceQuery:
    """Every engine must return exactly what the reference evaluator does."""

    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_matches_reference_evaluator(self, engine, query_index):
        docs = corpus()
        engine.put_many("orders", [dict(d) for d in docs])
        query = QUERIES[query_index]
        expected = evaluate_query(docs, query)
        got = engine.query("orders", query)
        assert [d["id"] for d in got.docs] == [d["id"] for d in expected.docs]
        assert got.docs == expected.docs

    def test_cursor_walk_visits_everything_once(self, engine):
        docs = corpus()
        engine.put_many("orders", [dict(d) for d in docs])
        visited = []
        cursor = None
        for _ in range(100):
            query = Query(order_by="total", limit=6, cursor=cursor)
            page = engine.query("orders", query)
            visited.extend(d["id"] for d in page.docs)
            if page.next_cursor is None:
                break
            cursor = decode_cursor(page.next_cursor, "total")
        reference = evaluate_query(docs, Query(order_by="total"))
        assert visited == [d["id"] for d in reference.docs]
        assert len(visited) == len(set(visited))

    def test_query_before_any_put(self, engine):
        result = engine.query("orders", Query())
        assert result.docs == []
        assert result.scanned == 0


class TestSqliteSpecifics:
    def test_range_query_hits_secondary_index(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "ix.db"))
        backend.register_schema("orders", SCHEMA)
        backend.put_many("orders", [dict(d) for d in corpus()])
        result = backend.query(
            "orders", Query(where=(Predicate("total", "ge", 50.0),), order_by="total")
        )
        assert result.index_used is True
        assert "ix_orders_total" in result.plan
        # Billed scan is the filtered row count, not the table size.
        assert result.scanned == len(result.docs) < 40
        # An unselective plan that merely walks the PK autoindex must
        # not claim a secondary-index hit.
        unselective = backend.query(
            "orders", Query(where=(Predicate("total", "ge", 0.0),))
        )
        if "ix_orders_total" not in unselective.plan:
            assert unselective.index_used is False
        backend.close()

    def test_unregistered_key_falls_back_to_table_scan(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "scan.db"))
        backend.register_schema("orders", {"total": DataType.FLOAT})
        docs = corpus()
        backend.put_many("orders", [dict(d) for d in docs])
        query = Query(where=(Predicate("region", "eq", "eu-west"),))
        result = backend.query("orders", query)
        expected = evaluate_query(docs, query)
        assert result.plan == "table-scan"
        assert result.index_used is False
        assert result.scanned == len(docs)
        assert result.docs == expected.docs
        backend.close()

    def test_register_schema_backfills_existing_docs(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "fill.db"))
        backend.register_schema("orders", {"total": DataType.FLOAT})
        docs = corpus()
        backend.put_many("orders", [dict(d) for d in docs])
        # The class update declares a new key; old rows must be indexed.
        backend.register_schema("orders", {"region": DataType.STR})
        query = Query(where=(Predicate("region", "prefix", "eu-"),))
        result = backend.query("orders", query)
        expected = evaluate_query(docs, query)
        assert result.docs == expected.docs
        assert result.index_used is True
        backend.close()

    def test_schema_recovered_on_reopen(self, tmp_path):
        path = str(tmp_path / "reopen.db")
        first = SqliteBackend(path)
        first.register_schema("orders", SCHEMA)
        docs = corpus()
        first.put_many("orders", [dict(d) for d in docs])
        first.close()

        second = SqliteBackend(path)
        assert second.keys("orders") == sorted(d["id"] for d in docs)
        query = Query(where=(Predicate("total", "ge", 50.0),), order_by="total")
        result = second.query("orders", query)
        expected = evaluate_query(docs, query)
        assert [d["id"] for d in result.docs] == [d["id"] for d in expected.docs]
        assert result.index_used is True
        second.close()

    def test_bool_and_json_values_round_trip(self, tmp_path):
        backend = SqliteBackend(str(tmp_path / "types.db"))
        backend.register_schema("t", {"flag": DataType.BOOL, "blob": DataType.JSON})
        doc = {"id": "x", "state": {"flag": True, "blob": {"a": [1, 2]}}}
        backend.put("t", dict(doc))
        assert backend.get("t", "x") == doc
        result = backend.query("t", Query(where=(Predicate("flag", "eq", True),)))
        assert [d["id"] for d in result.docs] == ["x"]
        backend.close()


class TestMakeBackend:
    def test_default_is_dict(self):
        assert isinstance(make_backend(StorageConfig()), DictBackend)

    def test_sqlite_with_path(self, tmp_path):
        backend = make_backend(
            StorageConfig(backend="sqlite", path=str(tmp_path / "x.db"))
        )
        assert isinstance(backend, SqliteBackend)
        assert backend.durable is True
        backend.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="unknown storage backend"):
            make_backend(StorageConfig(backend="postgres"))


def run(env, process):
    """Drive the sim until ``process`` resolves; return its value."""
    env.run()
    return process.value


@pytest.fixture(params=["dict", "sqlite"])
def store(request, tmp_path):
    env = Environment()
    if request.param == "dict":
        backend = DictBackend()
    else:
        backend = SqliteBackend(str(tmp_path / "store.db"))
    backend.register_schema("orders", SCHEMA)
    store = DocumentStore(env, backend=backend)
    yield env, store
    store.close()


class TestDocumentStoreOverBackends:
    """DocumentStore semantics must not depend on the engine."""

    def test_write_then_read(self, store):
        env, store = store
        doc = {"id": "a", "state": {"total": 5.0}}
        run(env, store.write("orders", [doc]))
        got = run(env, store.read("orders", "a"))
        assert got == doc
        got["state"]["total"] = 99.0  # defensive copy: engine unaffected
        assert run(env, store.read("orders", "a"))["state"]["total"] == 5.0

    def test_injected_fault_leaves_engine_unmutated(self, store):
        env, store = store
        run(env, store.write("orders", [{"id": "a", "state": {"total": 1.0}}]))
        store.set_write_fault(1.0)

        def scenario(env):
            try:
                yield store.write(
                    "orders",
                    [{"id": "a", "state": {"total": 9.0}}, {"id": "b", "state": {}}],
                )
            except StorageError as exc:
                return str(exc)
            return None

        error = run(env, env.process(scenario(env)))
        assert error is not None and "injected write fault" in error
        assert store.faulted_writes == 1
        # The faulted batch consumed units but mutated nothing — neither
        # the updated doc nor the new one landed, on any engine.
        assert store.get_sync("orders", "a")["state"]["total"] == 1.0
        assert store.get_sync("orders", "b") is None
        store.clear_write_fault()
        run(env, store.write("orders", [{"id": "b", "state": {}}]))
        assert store.count("orders") == 2

    def test_query_cost_is_two_phase(self, store):
        env, store = store
        docs = [{"id": f"d{i}", "state": {"total": float(i)}} for i in range(10)]
        run(env, store.write("orders", docs))
        before = store.units_for("orders")
        result = run(
            env, store.query("orders", Query(where=(Predicate("total", "ge", 4.0),)))
        )
        spent = store.units_for("orders") - before
        assert spent == store.model.op_cost + result.scanned * store.model.read_cost
        assert store.query_ops == 1
        assert store.query_docs_scanned == result.scanned

    def test_indexed_scan_is_cheaper_than_full_scan(self, tmp_path):
        """The SQLite index makes the *same* query cost fewer units than
        the dict engine's unavoidable full scan — the modeled payoff of
        declaring keySpecs."""
        costs = {}
        for name in ("dict", "sqlite"):
            env = Environment()
            backend = (
                DictBackend()
                if name == "dict"
                else SqliteBackend(str(tmp_path / "cost.db"))
            )
            backend.register_schema("orders", SCHEMA)
            store = DocumentStore(env, backend=backend)
            run(env, store.write("orders", [dict(d) for d in corpus()]))
            before = store.units_for("orders")
            run(
                env,
                store.query(
                    "orders", Query(where=(Predicate("total", "ge", 95.0),))
                ),
            )
            costs[name] = store.units_for("orders") - before
            store.close()
        assert costs["sqlite"] < costs["dict"]

    def test_query_result_docs_are_copies(self, store):
        env, store = store
        run(env, store.write("orders", [{"id": "a", "state": {"total": 1.0}}]))
        result = run(env, store.query("orders", Query()))
        result.docs[0]["state"]["total"] = 42.0
        assert store.get_sync("orders", "a")["state"]["total"] == 1.0

    def test_durable_flag_reflects_engine(self, store):
        env, store = store
        assert store.durable is store.backend.durable
        assert store.durable is (store.backend.name == "sqlite")

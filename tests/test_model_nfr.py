"""Unit tests for the non-functional requirements interface."""

import pytest

from repro.errors import ValidationError
from repro.model.nfr import Constraint, NonFunctionalRequirements, QosRequirement


class TestQosRequirement:
    def test_empty_by_default(self):
        assert QosRequirement().is_empty

    def test_set_fields(self):
        qos = QosRequirement(throughput_rps=100, availability=0.999, latency_ms=50)
        assert not qos.is_empty

    @pytest.mark.parametrize("value", [0, -1])
    def test_throughput_must_be_positive(self, value):
        with pytest.raises(ValidationError):
            QosRequirement(throughput_rps=value)

    @pytest.mark.parametrize("value", [0, 1.1, -0.5])
    def test_availability_bounds(self, value):
        with pytest.raises(ValidationError):
            QosRequirement(availability=value)

    def test_availability_one_allowed(self):
        QosRequirement(availability=1.0)

    def test_latency_must_be_positive(self):
        with pytest.raises(ValidationError):
            QosRequirement(latency_ms=0)


class TestConstraint:
    def test_default_is_persistent(self):
        constraint = Constraint()
        assert constraint.persistent
        assert constraint.is_default

    def test_non_persistent_not_default(self):
        assert not Constraint(persistent=False).is_default

    def test_budget_must_be_positive(self):
        with pytest.raises(ValidationError):
            Constraint(budget_usd_per_month=0)

    def test_jurisdictions(self):
        constraint = Constraint(jurisdictions=("eu-west", "eu-central"))
        assert not constraint.is_default


class TestMerging:
    def test_child_overrides_set_fields(self):
        parent = NonFunctionalRequirements(qos=QosRequirement(throughput_rps=100))
        child = NonFunctionalRequirements(qos=QosRequirement(throughput_rps=500))
        merged = child.merged_over(parent)
        assert merged.qos.throughput_rps == 500

    def test_child_inherits_unset_fields(self):
        parent = NonFunctionalRequirements(
            qos=QosRequirement(throughput_rps=100, latency_ms=50)
        )
        child = NonFunctionalRequirements(qos=QosRequirement(availability=0.99))
        merged = child.merged_over(parent)
        assert merged.qos.throughput_rps == 100
        assert merged.qos.latency_ms == 50
        assert merged.qos.availability == 0.99

    def test_child_constraint_wins_when_set(self):
        parent = NonFunctionalRequirements(constraint=Constraint(persistent=False))
        child = NonFunctionalRequirements(
            constraint=Constraint(budget_usd_per_month=10.0)
        )
        merged = child.merged_over(parent)
        assert merged.constraint.budget_usd_per_month == 10.0
        assert merged.constraint.persistent

    def test_default_child_constraint_inherits_parent(self):
        parent = NonFunctionalRequirements(constraint=Constraint(persistent=False))
        child = NonFunctionalRequirements()
        merged = child.merged_over(parent)
        assert not merged.constraint.persistent

    def test_none_factory(self):
        assert NonFunctionalRequirements.none().is_default


class TestPriority:
    def test_valid_priority_accepted(self):
        assert QosRequirement(priority=1).priority == 1
        assert QosRequirement(priority=10).priority == 10

    @pytest.mark.parametrize("value", [0, 11, -3])
    def test_out_of_range_rejected(self, value):
        with pytest.raises(ValidationError):
            QosRequirement(priority=value)

    @pytest.mark.parametrize("value", [2.5, "high", True])
    def test_non_integer_rejected(self, value):
        with pytest.raises(ValidationError):
            QosRequirement(priority=value)

    def test_priority_alone_not_empty(self):
        assert not QosRequirement(priority=5).is_empty

    def test_child_priority_overrides_parent(self):
        parent = NonFunctionalRequirements(qos=QosRequirement(priority=3))
        child = NonFunctionalRequirements(qos=QosRequirement(priority=9))
        assert child.merged_over(parent).qos.priority == 9

    def test_child_inherits_parent_priority(self):
        parent = NonFunctionalRequirements(qos=QosRequirement(priority=3))
        child = NonFunctionalRequirements(qos=QosRequirement(latency_ms=20))
        merged = child.merged_over(parent)
        assert merged.qos.priority == 3
        assert merged.qos.latency_ms == 20


class TestCheckedNumbers:
    """YAML can hand the NFR block NaN, infinities, strings, booleans."""

    @pytest.mark.parametrize("value", [float("nan"), float("inf"), "fast", True])
    def test_throughput_garbage_rejected(self, value):
        with pytest.raises(ValidationError):
            QosRequirement(throughput_rps=value)

    @pytest.mark.parametrize("value", [float("nan"), float("-inf"), "low", False])
    def test_latency_garbage_rejected(self, value):
        with pytest.raises(ValidationError):
            QosRequirement(latency_ms=value)

    @pytest.mark.parametrize("value", [float("nan"), "three nines", True])
    def test_availability_garbage_rejected(self, value):
        with pytest.raises(ValidationError):
            QosRequirement(availability=value)

"""Tests for the experiment harness (smaller-than-quick configurations)."""

import pytest

from repro.bench.abstraction import run_fig1
from repro.bench.ablations import run_coldstart_ablation, run_presigned_ablation
from repro.bench.config import Fig3Config
from repro.bench.report import format_fig3, format_fig3_chart, format_table
from repro.bench.scalability import Fig3Row, run_cell
from repro.bench.systems import SYSTEMS, build_system
from repro.errors import ValidationError


def tiny_config(**overrides):
    """A very small Fig. 3 cell for unit-level checks."""
    base = dict(
        nodes_sweep=(3,),
        objects=200,
        clients_per_vm=16,
        horizon_s=4.0,
        warmup_s=2.0,
        service_time_s=0.05,
        db_capacity_units=8000.0,
        max_pending=2000,
        cold_start_s=0.5,
    )
    base.update(overrides)
    return Fig3Config(**base)


class TestSystems:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValidationError):
            build_system("lambda", tiny_config(), 3)

    @pytest.mark.parametrize("name", SYSTEMS)
    def test_each_system_serves_requests(self, name):
        row = run_cell(name, 3, tiny_config())
        assert row.completed > 0
        assert row.failed <= row.completed * 0.05
        assert row.throughput_rps > 0

    def test_oprc_uses_knative_engine(self):
        system = build_system("oprc", tiny_config(), 3)
        system.prepare()
        assert system.platform.crm.runtime("Doc").engine_name == "knative"
        system.shutdown()

    def test_bypass_uses_deployment_engine(self):
        system = build_system("oprc-bypass", tiny_config(), 3)
        system.prepare()
        runtime = system.platform.crm.runtime("Doc")
        assert runtime.engine_name == "deployment"
        assert runtime.dht.model.persistent
        system.shutdown()

    def test_nonpersist_has_no_db_tier(self):
        cfg = tiny_config()
        row = run_cell("oprc-bypass-nonpersist", 3, cfg)
        assert row.extras["db_write_ops"] == 0
        assert row.extras["db_docs_written"] == 0

    def test_oprc_batches_db_writes(self):
        row = run_cell("oprc", 3, tiny_config())
        ops, docs = row.extras["db_write_ops"], row.extras["db_docs_written"]
        assert docs > ops  # batching: several documents per operation

    def test_knative_baseline_writes_per_request(self):
        row = run_cell("knative", 3, tiny_config())
        assert row.extras["db_write_ops"] == row.extras["db_docs_written"]

    def test_bypass_outperforms_oprc_per_overheads(self):
        cfg = tiny_config(horizon_s=6.0, warmup_s=3.0)
        oprc = run_cell("oprc", 3, cfg)
        bypass = run_cell("oprc-bypass", 3, cfg)
        assert bypass.throughput_rps >= oprc.throughput_rps * 0.98


class TestFig3Shape:
    """The headline qualitative claims of Fig. 3 at quick scale."""

    @pytest.fixture(scope="class")
    def rows(self):
        cfg = Fig3Config.quick()
        return {
            (name, nodes): run_cell(name, nodes, cfg)
            for name in ("knative", "oprc", "oprc-bypass-nonpersist")
            for nodes in (3, 6)
        }

    def test_knative_plateaus_at_db_ceiling(self, rows):
        small = rows[("knative", 3)].throughput_rps
        large = rows[("knative", 6)].throughput_rps
        # Doubling VMs buys almost nothing once the DB ceiling binds.
        assert large < small * 1.3

    def test_oprc_scales_past_knative(self, rows):
        assert rows[("oprc", 6)].throughput_rps > rows[("knative", 6)].throughput_rps * 1.5

    def test_oprc_keeps_scaling_with_vms(self, rows):
        assert rows[("oprc", 6)].throughput_rps > rows[("oprc", 3)].throughput_rps * 1.4

    def test_nonpersist_is_highest(self, rows):
        top = rows[("oprc-bypass-nonpersist", 6)].throughput_rps
        assert top >= rows[("oprc", 6)].throughput_rps * 0.95
        assert top > rows[("knative", 6)].throughput_rps


class TestFig1:
    def test_macro_fewer_round_trips_and_faster(self):
        result = run_fig1(service_time_s=0.03)
        assert result.macro_round_trips == 1
        assert result.manual_round_trips == 3
        assert result.macro_latency_s < result.manual_latency_s
        assert result.latency_speedup > 1.2


class TestAblations:
    def test_cold_start_gap(self):
        results = run_coldstart_ablation(min_scales=(0, 1), burst=8, idle_s=40.0)
        cold, warm = results
        assert cold.min_scale == 0
        assert cold.idle_replicas == 0
        assert warm.idle_replicas == 1
        assert cold.first_latency_ms > warm.first_latency_ms * 10
        assert cold.cold_starts > 0
        assert warm.cold_starts == 0

    def test_presigned_direct_cheaper(self):
        rows = run_presigned_ablation(sizes=(10_000, 1_000_000))
        for row in rows:
            assert row.proxied_ms > row.direct_ms


class TestReport:
    def _rows(self):
        return [
            Fig3Row("knative", 3, 600.0, 50.0, 120.0, 1000, 0),
            Fig3Row("oprc", 3, 900.0, 40.0, 100.0, 1500, 1),
        ]

    def test_format_table_aligns(self):
        text = format_table(("a", "bb"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_fig3_contains_series(self):
        text = format_fig3(self._rows())
        assert "knative" in text
        assert "oprc" in text
        assert "600" in text

    def test_chart_renders_bars(self):
        chart = format_fig3_chart(self._rows())
        assert "#" in chart
        assert "3 VMs" in chart

    def test_chart_empty(self):
        assert format_fig3_chart([]) == "(no data)"

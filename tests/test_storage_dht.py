"""Unit tests for the distributed in-memory hash table."""

import pytest

from repro.errors import ConcurrentModificationError, StorageError
from repro.sim.network import Network, NetworkModel
from repro.storage.dht import Dht, DhtModel
from repro.storage.kv import DbModel, DocumentStore
from repro.storage.write_behind import WriteBehindConfig


def make_dht(env, nodes=3, replication=1, persistent=True, capacity=10000.0,
             linger=0.001, batch=10):
    network = Network(env, NetworkModel())
    store = DocumentStore(env, DbModel(capacity_units_per_s=capacity)) if persistent else None
    dht = Dht(
        env,
        [f"n{i}" for i in range(nodes)],
        network,
        store,
        DhtModel(
            replication=replication,
            persistent=persistent,
            write_behind=WriteBehindConfig(batch_size=batch, linger_s=linger),
        ),
    )
    return dht, store, network


def run(env, generator):
    return env.run(until=env.process(generator))


def doc(key, version=1, **state):
    return {"id": key, "cls": "T", "version": version, "state": state}


class TestBasics:
    def test_requires_nodes(self, env):
        with pytest.raises(StorageError):
            Dht(env, [], Network(env), None, DhtModel(persistent=False))

    def test_persistent_requires_store(self, env):
        with pytest.raises(StorageError, match="document store"):
            Dht(env, ["a"], Network(env), None, DhtModel(persistent=True))

    def test_put_get_roundtrip(self, env):
        dht, _, _ = make_dht(env)

        def scenario(env):
            yield dht.put(doc("x", v=5), caller="n0")
            got = yield dht.get("x", caller="n1")
            return got

        assert run(env, scenario(env))["state"]["v"] == 5

    def test_get_missing_returns_none(self, env):
        dht, _, _ = make_dht(env)

        def scenario(env):
            got = yield dht.get("ghost", caller="n0")
            return got

        assert run(env, scenario(env)) is None

    def test_put_requires_id(self, env):
        dht, _, _ = make_dht(env)
        with pytest.raises(StorageError):
            run(env, iter_put(dht, {"no": "id"}))

    def test_returns_copies(self, env):
        dht, _, _ = make_dht(env)

        def scenario(env):
            yield dht.put(doc("x", v=1), caller="n0")
            first = yield dht.get("x", caller="n0")
            first["state"]["v"] = 999
            second = yield dht.get("x", caller="n0")
            return second

        assert run(env, scenario(env))["state"]["v"] == 1


def iter_put(dht, document):
    yield dht.put(document, caller=None)


class TestPersistence:
    def test_write_behind_reaches_store(self, env):
        dht, store, _ = make_dht(env)

        def scenario(env):
            for i in range(15):
                yield dht.put(doc(f"k{i}"), caller="n0")
            yield dht.flush_all()

        run(env, scenario(env))
        env.run()
        assert store.count("objects") == 15
        assert store.write_ops < 15  # batched

    def test_nonpersistent_never_touches_store(self, env):
        dht, store, _ = make_dht(env, persistent=False)

        def scenario(env):
            for i in range(10):
                yield dht.put(doc(f"k{i}"), caller="n0")
            yield dht.flush_all()

        run(env, scenario(env))
        assert store is None
        assert dht.pending_writes() == 0

    def test_miss_loads_from_store_and_caches(self, env):
        dht, store, _ = make_dht(env)
        store.put_sync("objects", doc("cold", v=7))

        def scenario(env):
            got = yield dht.get("cold", caller="n0")
            return got

        assert run(env, scenario(env))["state"]["v"] == 7
        assert dht.mem_misses == 1
        assert dht.peek("cold") is not None  # now cached

        def again(env):
            got = yield dht.get("cold", caller="n0")
            return got

        run(env, again(env))
        assert dht.mem_hits == 1

    def test_delete_removes_everywhere(self, env):
        dht, store, _ = make_dht(env)

        def scenario(env):
            yield dht.put(doc("x"), caller="n0")
            yield dht.flush_all()
            yield dht.delete("x", caller="n0")
            got = yield dht.get("x", caller="n0")
            return got

        assert run(env, scenario(env)) is None
        env.run()
        assert store.get_sync("objects", "x") is None


class TestReplication:
    def test_replicas_hold_copies(self, env):
        dht, _, _ = make_dht(env, replication=2)

        def scenario(env):
            yield dht.put(doc("x"), caller="n0")

        run(env, scenario(env))
        owners = dht.owners("x")
        assert len(owners) == 2
        for node in owners:
            assert dht._mem[node]["x"]["id"] == "x"

    def test_replica_local_read(self, env):
        dht, _, network = make_dht(env, replication=2)

        def scenario(env):
            yield dht.put(doc("x"), caller="n0")
            replica = dht.owners("x")[1]
            before = network.remote_transfers
            got = yield dht.get("x", caller=replica)
            return got, network.remote_transfers - before

        got, remote = run(env, scenario(env))
        assert got is not None
        assert remote == 0  # read served from the replica's own memory


class TestOptimisticConcurrency:
    def test_cas_succeeds_on_matching_version(self, env):
        dht, _, _ = make_dht(env)

        def scenario(env):
            yield dht.put(doc("x", version=1), caller="n0")
            yield dht.compare_and_put(doc("x", version=2), expected_version=1, caller="n0")
            got = yield dht.get("x", caller="n0")
            return got

        assert run(env, scenario(env))["version"] == 2

    def test_cas_fails_on_stale_version(self, env):
        dht, _, _ = make_dht(env)

        def scenario(env):
            yield dht.put(doc("x", version=3), caller="n0")
            try:
                yield dht.compare_and_put(doc("x", version=2), expected_version=1, caller="n0")
            except ConcurrentModificationError:
                return "conflict"
            return "committed"

        assert run(env, scenario(env)) == "conflict"

    def test_cas_on_absent_record_expects_zero(self, env):
        dht, _, _ = make_dht(env)

        def scenario(env):
            yield dht.compare_and_put(doc("new", version=1), expected_version=0, caller="n0")
            got = yield dht.get("new", caller="n0")
            return got

        assert run(env, scenario(env))["version"] == 1


class TestLocalityCost:
    def test_local_access_faster_than_remote(self, env):
        dht, _, _ = make_dht(env)

        def timed_get(caller):
            start = env.now
            yield dht.get("x", caller=caller)
            return env.now - start

        def scenario(env):
            yield dht.put(doc("x"), caller="n0")
            owner = dht.owner("x")
            other = next(n for n in dht.nodes if n != owner)
            local = yield env.process(timed_get(owner))
            remote = yield env.process(timed_get(other))
            return local, remote

        local, remote = run(env, scenario(env))
        assert local < remote


class TestSeedAndStats:
    def test_seed_installs_without_time(self, env):
        dht, store, _ = make_dht(env)
        dht.seed(doc("pre", v=1))
        assert env.now == 0.0
        assert dht.peek("pre") is not None
        assert store.get_sync("objects", "pre") is not None

    def test_seed_requires_id(self, env):
        dht, _, _ = make_dht(env)
        with pytest.raises(StorageError):
            dht.seed({"nope": 1})

    def test_write_behind_stats(self, env):
        dht, _, _ = make_dht(env)

        def scenario(env):
            yield dht.put(doc("a"), caller="n0")
            yield dht.put(doc("a", version=2), caller="n0")
            yield dht.flush_all()

        run(env, scenario(env))
        stats = dht.write_behind_stats
        assert stats["enqueued"] == 2
        assert stats["pending"] == 0

    def test_mem_count(self, env):
        dht, _, _ = make_dht(env)
        for i in range(10):
            dht.seed(doc(f"k{i}"))
        assert dht.mem_count() == 10


class TestDeleteVsBufferedWrites:
    def test_delete_discards_failover_primary_buffer(self, env):
        # Regression: a sloppy-quorum write during a partition buffers on
        # the FAILOVER owner's queue; delete used to discard only from
        # owners[0]'s queue, so the flush resurrected the deleted object.
        dht, store, network = make_dht(env, nodes=3, replication=2, linger=5.0)

        def scenario(env):
            key = "obj"
            owners = dht.owners(key)
            network.fault_state().isolate([owners[0]])
            yield dht.put(doc(key), caller=owners[1])  # buffers on owners[1]
            network.fault_state().clear_partition()
            yield dht.delete(key, caller=owners[1])
            yield dht.flush_all()

        run(env, scenario(env))
        assert store.count("objects") == 0
        assert dht.pending_writes() == 0


class TestFailNodeLossAccounting:
    def test_loss_exact_under_store_faults(self, env):
        # lost_pending must cover both the buffered docs AND the batch
        # the flusher holds in its retry loop when the node crashes.
        dht, store, network = make_dht(env, nodes=2, linger=0.01, batch=10)
        victim = dht.nodes[0]
        keys = [k for k in (f"k{i}" for i in range(200)) if dht.owner(k) == victim]
        assert len(keys) >= 5
        keys = keys[:5]
        store.set_write_fault(1.0)

        def scenario(env):
            for key in keys[:3]:
                yield dht.put(doc(key), caller=victim)
            yield env.timeout(0.3)  # flusher pops a batch; every write faults
            for key in keys[3:]:
                yield dht.put(doc(key), caller=victim)
            # Snapshot before the crash removes the victim's queue.
            before = dht.write_behind_stats
            return dht.fail_node(victim), before

        stats, before = run(env, scenario(env))
        assert before["flush_failures"] >= 1  # a batch really was in flight
        assert before["pending"] < 5  # ... so not all five were buffered
        assert stats["lost_pending"] == 5
        store.clear_write_fault()
        env.run(until=10.0)
        assert store.count("objects") == 0  # nothing leaks out post-crash

"""Unit tests for the read path: miss batching, single-flight
coalescing, and the near cache."""

import pytest

from repro.errors import SimulationError, StorageError
from repro.sim.network import Network, NetworkModel
from repro.storage.dht import Dht, DhtModel
from repro.storage.kv import DbModel, DocumentStore
from repro.storage.read_path import ReadBatchConfig, ReadBatcher


def run(env, generator):
    return env.run(until=env.process(generator))


def make_batcher(env, max_batch=8, linger_s=0.01, capacity=1000.0):
    store = DocumentStore(env, DbModel(capacity_units_per_s=capacity))
    batcher = ReadBatcher(
        env, store, "c", ReadBatchConfig(max_batch=max_batch, linger_s=linger_s)
    )
    return store, batcher


def make_dht(
    env,
    nodes=3,
    replication=1,
    coalescing=False,
    batch=None,
    near=0,
    capacity=10000.0,
):
    network = Network(env, NetworkModel())
    store = DocumentStore(env, DbModel(capacity_units_per_s=capacity))
    dht = Dht(
        env,
        [f"n{i}" for i in range(nodes)],
        network,
        store,
        DhtModel(
            replication=replication,
            persistent=True,
            read_coalescing=coalescing,
            read_batch=batch,
            near_cache_entries=near,
        ),
    )
    return dht, store, network


def doc(key, version=1, **state):
    return {"id": key, "cls": "T", "version": version, "state": state}


class TestReadBatchConfig:
    def test_max_batch_validation(self):
        with pytest.raises(StorageError):
            ReadBatchConfig(max_batch=0)

    def test_linger_validation(self):
        with pytest.raises(StorageError):
            ReadBatchConfig(linger_s=-0.1)


class TestReadBatcher:
    def test_window_issues_one_multi_get(self, env):
        store, batcher = make_batcher(env)
        for index in range(3):
            store.put_sync("c", {"id": f"k{index}", "v": index})

        def reader(key):
            value = yield from batcher.read(key)
            return value

        processes = [env.process(reader(f"k{i}")) for i in range(3)]
        env.run(until=2.0)
        assert [p.value["v"] for p in processes] == [0, 1, 2]
        assert store.multi_read_ops == 1
        assert store.read_ops == 1
        assert batcher.batch_ops == 1
        assert batcher.keys_fetched == 3

    def test_same_key_deduplicated_within_window(self, env):
        store, batcher = make_batcher(env)
        store.put_sync("c", {"id": "hot", "v": 7})

        def reader():
            value = yield from batcher.read("hot")
            return value

        processes = [env.process(reader()) for _ in range(5)]
        env.run(until=2.0)
        assert all(p.value["v"] == 7 for p in processes)
        assert batcher.requested == 5
        assert batcher.deduplicated == 4
        assert batcher.keys_fetched == 1
        assert store.docs_read == 1

    def test_missing_key_resolves_none(self, env):
        _, batcher = make_batcher(env)

        def reader():
            value = yield from batcher.read("ghost")
            return value

        process = env.process(reader())
        env.run(until=2.0)
        assert process.value is None

    def test_windows_split_at_max_batch(self, env):
        store, batcher = make_batcher(env, max_batch=4)
        for index in range(10):
            store.put_sync("c", {"id": f"k{index}"})

        def reader(key):
            yield from batcher.read(key)

        for index in range(10):
            env.process(reader(f"k{index}"))
        env.run(until=2.0)
        assert batcher.batch_ops >= 3  # ceil(10 / 4)
        assert batcher.keys_fetched == 10

    def test_idle_batcher_schedules_nothing(self, env):
        make_batcher(env)
        env.run()  # must terminate: the runner parks on the arrival gate
        assert env.now == 0.0

    def test_stop_resolves_pending_to_none(self, env):
        _, batcher = make_batcher(env, linger_s=10.0)

        def reader():
            value = yield from batcher.read("k")
            return value

        process = env.process(reader())
        env.run(until=0.1)
        batcher.stop()
        env.run(until=0.2)
        assert process.value is None

    def test_read_after_stop_raises(self, env):
        _, batcher = make_batcher(env)
        batcher.stop()

        def reader():
            yield from batcher.read("k")

        env.process(reader())
        with pytest.raises(SimulationError, match="stopped"):
            env.run(until=1.0)


class TestSingleFlight:
    def test_concurrent_misses_share_one_store_read(self, env):
        dht, store, _ = make_dht(env, coalescing=True)
        store.put_sync(dht.collection, doc("obj", v=1))

        def reader(caller):
            got = yield dht.get("obj", caller=caller)
            return got

        processes = [env.process(reader(f"n{i % 3}")) for i in range(6)]
        env.run(until=2.0)
        assert all(p.value["state"]["v"] == 1 for p in processes)
        assert store.read_ops == 1  # six concurrent misses, ONE store read
        assert dht.read_coalesced == 5

    def test_property_one_read_per_miss_window(self, env):
        # Property-style sweep: whatever the fan-in, each miss window
        # costs exactly one store read and every waiter gets the doc.
        dht, store, _ = make_dht(env, coalescing=True)

        def reader(key, caller):
            got = yield dht.get(key, caller=caller)
            return got

        for wave, fan_in in enumerate((2, 5, 9, 17)):
            key = f"obj{wave}"
            store.put_sync(dht.collection, doc(key, v=wave))
            reads_before = store.read_ops
            processes = [
                env.process(reader(key, f"n{i % 3}")) for i in range(fan_in)
            ]
            env.run(until=env.now + 2.0)
            assert store.read_ops - reads_before == 1
            values = [p.value["state"]["v"] for p in processes]
            assert values == [wave] * fan_in

    def test_waiters_get_private_copies(self, env):
        dht, store, _ = make_dht(env, coalescing=True)
        store.put_sync(dht.collection, doc("obj", v=1))

        def reader(caller):
            got = yield dht.get("obj", caller=caller)
            return got

        first = env.process(reader("n0"))
        second = env.process(reader("n1"))
        env.run(until=2.0)
        first.value["state"]["v"] = 999
        assert second.value["state"]["v"] == 1

    def test_disabled_coalescing_reads_per_miss(self, env):
        dht, store, _ = make_dht(env, coalescing=False)
        store.put_sync(dht.collection, doc("obj", v=1))

        def reader(caller):
            yield dht.get("obj", caller=caller)

        for index in range(4):
            env.process(reader(f"n{index % 3}"))
        env.run(until=2.0)
        assert store.read_ops == 4  # the baseline herd this PR kills
        assert dht.read_coalesced == 0

    def test_coalesced_with_batching_uses_multi_get(self, env):
        dht, store, _ = make_dht(
            env, coalescing=True, batch=ReadBatchConfig(max_batch=8, linger_s=0.005)
        )
        for index in range(4):
            store.put_sync(dht.collection, doc(f"obj{index}", v=index))

        def reader(key, caller):
            got = yield dht.get(key, caller=caller)
            return got

        processes = [
            env.process(reader(f"obj{i}", f"n{(i + j) % 3}"))
            for i in range(4)
            for j in range(3)
        ]
        env.run(until=2.0)
        assert all(p.value is not None for p in processes)
        assert store.multi_read_ops >= 1
        assert store.read_ops <= 2  # 12 concurrent misses, 1-2 multi-gets
        assert dht.read_coalesced == 8


class TestNearCache:
    def _non_owner(self, dht, key):
        owners = dht.owners(key)
        return next(n for n in dht.nodes if n not in owners)

    def test_repeat_read_served_from_near_cache(self, env):
        dht, store, network = make_dht(env, near=16)
        dht.seed(doc("obj", v=1))
        caller = self._non_owner(dht, "obj")

        def scenario(env):
            yield dht.get("obj", caller=caller)
            remote_before = network.remote_transfers
            got = yield dht.get("obj", caller=caller)
            return got, remote_before

        got, remote_before = run(env, scenario(env))
        assert got["state"]["v"] == 1
        assert dht.near_hits == 1
        # The near-cache hit stays on the caller: no new remote transfer.
        assert network.remote_transfers == remote_before

    def test_owner_callers_never_near_cache(self, env):
        dht, _, _ = make_dht(env, near=16)
        dht.seed(doc("obj", v=1))
        owner = dht.owner("obj")

        def scenario(env):
            yield dht.get("obj", caller=owner)
            yield dht.get("obj", caller=owner)

        run(env, scenario(env))
        assert dht.near_hits == 0
        assert dht.read_path_stats["near_resident"] == 0

    def test_cas_commit_invalidates_near_copies(self, env):
        dht, _, _ = make_dht(env, near=16)
        dht.seed(doc("obj", version=1, v=1))
        caller = self._non_owner(dht, "obj")

        def scenario(env):
            yield dht.get("obj", caller=caller)  # populates the near cache
            yield dht.compare_and_put(
                doc("obj", version=2, v=2), expected_version=1, caller=dht.owner("obj")
            )
            got = yield dht.get("obj", caller=caller)
            return got

        got = run(env, scenario(env))
        assert got["version"] == 2
        assert got["state"]["v"] == 2
        assert dht.near_invalidations >= 1
        assert dht.near_hits == 0  # the stale copy was never served

    def test_delete_invalidates_near_copies(self, env):
        dht, _, _ = make_dht(env, near=16)
        dht.seed(doc("obj", v=1))
        caller = self._non_owner(dht, "obj")

        def scenario(env):
            yield dht.get("obj", caller=caller)
            yield dht.delete("obj", caller=dht.owner("obj"))
            got = yield dht.get("obj", caller=caller)
            return got

        assert run(env, scenario(env)) is None
        assert dht.near_invalidations >= 1
        assert dht.near_hits == 0

    def test_fresh_read_bypasses_near_cache(self, env):
        dht, _, network = make_dht(env, near=16)
        dht.seed(doc("obj", v=1))
        caller = self._non_owner(dht, "obj")

        def scenario(env):
            yield dht.get("obj", caller=caller)
            remote_before = network.remote_transfers
            got = yield dht.get("obj", caller=caller, fresh=True)
            return got, remote_before

        got, remote_before = run(env, scenario(env))
        assert got is not None
        assert dht.near_hits == 0
        assert network.remote_transfers > remote_before  # went to the owner

    def test_near_cache_bounded_lru(self, env):
        dht, _, _ = make_dht(env, near=2)
        keys = []
        for index in range(40):
            key = f"obj{index}"
            dht.seed(doc(key, v=index))
            keys.append(key)
        # One caller that owns none of three chosen keys.
        picked = []
        caller = None
        for node in dht.nodes:
            candidates = [k for k in keys if node not in dht.owners(k)]
            if len(candidates) >= 3:
                caller = node
                picked = candidates[:3]
                break
        assert caller is not None

        def scenario(env):
            for key in picked:
                yield dht.get(key, caller=caller)

        run(env, scenario(env))
        assert dht.read_path_stats["near_resident"] == 2
        assert dht.near_evictions == 1

    def test_membership_change_drops_near_caches(self, env):
        dht, _, _ = make_dht(env, nodes=3, near=16)
        dht.seed(doc("obj", v=1))
        caller = self._non_owner(dht, "obj")

        def scenario(env):
            yield dht.get("obj", caller=caller)

        run(env, scenario(env))
        assert dht.read_path_stats["near_resident"] == 1
        victim = next(n for n in dht.nodes if n != caller)
        dht.fail_node(victim)
        assert dht.read_path_stats["near_resident"] == 0

"""Unit tests for package parsing (YAML/JSON class definitions)."""

import json

import pytest

from repro.errors import PackageError, ValidationError
from repro.model.cls import AccessModifier
from repro.model.function import FunctionType
from repro.model.pkg import Package, load_package, loads_package, parse_package
from repro.model.types import DataType

from tests.conftest import LISTING1_YAML


class TestListing1:
    def test_parses(self):
        package = loads_package(LISTING1_YAML)
        assert package.name == "image-app"
        assert [c.name for c in package.classes] == ["Image", "LabelledImage"]

    def test_nfr_parsed(self):
        package = loads_package(LISTING1_YAML)
        image = package.cls("Image")
        assert image.nfr.qos.throughput_rps == 100
        assert image.nfr.constraint.persistent is True

    def test_key_specs_parsed(self):
        image = loads_package(LISTING1_YAML).cls("Image")
        assert image.state.get("image").dtype is DataType.FILE
        assert image.state.get("width").default == 1024

    def test_inheritance_declared(self):
        labelled = loads_package(LISTING1_YAML).cls("LabelledImage")
        assert labelled.parent == "Image"

    def test_macro_parsed(self):
        image = loads_package(LISTING1_YAML).cls("Image")
        macro = image.binding("thumbnail")
        assert macro.function.ftype is FunctionType.MACRO
        assert [s.id for s in macro.function.dataflow.steps] == ["r", "f"]

    def test_resolution_succeeds(self):
        resolved = loads_package(LISTING1_YAML).resolved_classes()
        assert resolved["LabelledImage"].is_subclass_of("Image")


class TestStrictness:
    def test_unknown_class_key_rejected(self):
        with pytest.raises(PackageError, match="unknown key"):
            parse_package({"classes": [{"name": "A", "color": "red"}]})

    def test_unknown_qos_key_rejected(self):
        with pytest.raises(PackageError, match="unknown key"):
            parse_package({"classes": [{"name": "A", "qos": {"speed": 1}}]})

    def test_class_missing_name(self):
        with pytest.raises(PackageError, match="missing 'name'"):
            parse_package({"classes": [{"parent": "X"}]})

    def test_function_needs_image_or_reference(self):
        with pytest.raises(PackageError, match="neither defines"):
            parse_package({"classes": [{"name": "A", "functions": [{"name": "f"}]}]})

    def test_bad_access_modifier(self):
        with pytest.raises(PackageError, match="access"):
            parse_package(
                {
                    "classes": [
                        {
                            "name": "A",
                            "functions": [
                                {"name": "f", "image": "img/f", "access": "SECRET"}
                            ],
                        }
                    ]
                }
            )

    def test_bad_function_type(self):
        with pytest.raises(PackageError, match="unknown function type"):
            parse_package(
                {
                    "classes": [
                        {"name": "A", "functions": [{"name": "f", "type": "WEIRD"}]}
                    ]
                }
            )

    def test_invalid_nfr_value(self):
        with pytest.raises(PackageError, match="invalid NFR"):
            parse_package({"classes": [{"name": "A", "qos": {"throughput": -5}}]})

    def test_non_mapping_document(self):
        with pytest.raises(PackageError, match="mapping"):
            parse_package([1, 2, 3])

    def test_classes_must_be_list(self):
        with pytest.raises(PackageError):
            parse_package({"classes": {"name": "A"}})

    def test_broken_hierarchy_rejected_at_parse(self):
        with pytest.raises(Exception):
            parse_package({"classes": [{"name": "B", "parent": "Missing"}]})

    def test_invalid_yaml_text(self):
        with pytest.raises(PackageError, match="invalid YAML"):
            loads_package("classes: [unclosed")

    def test_invalid_json_text(self):
        with pytest.raises(PackageError, match="invalid JSON"):
            loads_package("{broken", fmt="json")

    def test_unknown_format(self):
        with pytest.raises(PackageError, match="unknown package format"):
            loads_package("{}", fmt="toml")


class TestFeatures:
    def test_package_level_function_reference(self):
        package = parse_package(
            {
                "name": "p",
                "functions": [{"name": "shared", "image": "img/shared"}],
                "classes": [
                    {"name": "A", "functions": [{"name": "shared"}]},
                    {"name": "B", "functions": [{"name": "shared"}]},
                ],
            }
        )
        a = package.cls("A").binding("shared")
        b = package.cls("B").binding("shared")
        assert a.function is b.function  # software reuse across classes

    def test_binding_level_overrides(self):
        package = parse_package(
            {
                "classes": [
                    {
                        "name": "A",
                        "functions": [
                            {
                                "name": "f",
                                "image": "img/f",
                                "access": "internal",
                                "mutable": False,
                                "outputClass": "B",
                            }
                        ],
                    },
                    {"name": "B"},
                ]
            }
        )
        bound = package.cls("A").binding("f")
        assert bound.access is AccessModifier.INTERNAL
        assert bound.mutable is False
        assert bound.output_class == "B"

    def test_provision_parsed_camel_and_snake(self):
        package = parse_package(
            {
                "classes": [
                    {
                        "name": "A",
                        "functions": [
                            {
                                "name": "f",
                                "image": "img/f",
                                "provision": {
                                    "concurrency": 16,
                                    "minScale": 2,
                                    "max_scale": 20,
                                    "cpu": 750,
                                },
                            }
                        ],
                    }
                ]
            }
        )
        provision = package.cls("A").binding("f").function.provision
        assert provision.concurrency == 16
        assert provision.min_scale == 2
        assert provision.max_scale == 20
        assert provision.cpu_millis == 750

    def test_json_format(self):
        doc = {
            "name": "json-pkg",
            "classes": [{"name": "A", "functions": [{"name": "f", "image": "i"}]}],
        }
        package = loads_package(json.dumps(doc), fmt="json")
        assert package.name == "json-pkg"

    def test_load_package_from_file(self, tmp_path):
        path = tmp_path / "pkg.yml"
        path.write_text(LISTING1_YAML)
        assert load_package(path).name == "image-app"

    def test_load_package_json_file(self, tmp_path):
        path = tmp_path / "pkg.json"
        path.write_text(json.dumps({"name": "j", "classes": []}))
        assert load_package(path).name == "j"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(PackageError, match="cannot read"):
            load_package(tmp_path / "ghost.yml")

    def test_duplicate_classes_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            Package(
                classes=tuple(
                    parse_package({"classes": [{"name": "A"}]}).classes
                    + parse_package({"classes": [{"name": "A"}]}).classes
                )
            )

    def test_single_jurisdiction_string(self):
        package = parse_package(
            {"classes": [{"name": "A", "constraint": {"jurisdiction": "eu"}}]}
        )
        assert package.cls("A").nfr.constraint.jurisdictions == ("eu",)

    def test_inline_dataflow_default_macro_type(self):
        package = parse_package(
            {
                "classes": [
                    {
                        "name": "A",
                        "functions": [
                            {"name": "f", "image": "img/f"},
                            {
                                "name": "m",
                                "dataflow": {
                                    "steps": [{"id": "s", "function": "f"}],
                                    "output": "s",
                                },
                            },
                        ],
                    }
                ]
            }
        )
        assert package.cls("A").binding("m").function.ftype is FunctionType.MACRO

    def test_step_name_alias_for_id(self):
        package = parse_package(
            {
                "classes": [
                    {
                        "name": "A",
                        "functions": [
                            {"name": "f", "image": "img/f"},
                            {
                                "name": "m",
                                "dataflow": {"steps": [{"name": "s", "function": "f"}]},
                            },
                        ],
                    }
                ]
            }
        )
        steps = package.cls("A").binding("m").function.dataflow.steps
        assert steps[0].id == "s"


class TestPriorityParsing:
    def test_priority_parsed_from_yaml(self):
        package = parse_package(
            {"classes": [{"name": "A", "qos": {"priority": 7, "latency": 50}}]}
        )
        qos = package.cls("A").nfr.qos
        assert qos.priority == 7
        assert qos.latency_ms == 50

    def test_invalid_priority_rejected_at_parse(self):
        with pytest.raises(ValidationError):
            parse_package({"classes": [{"name": "A", "qos": {"priority": 99}}]})

"""Unit tests for QoS policy derivation and admission control."""

import pytest

from repro.crm.costs import TIER_ECONOMY, TIER_PREMIUM, TIER_STANDARD
from repro.errors import ValidationError
from repro.model.nfr import Constraint, NonFunctionalRequirements, QosRequirement
from repro.qos.admission import (
    REJECT_CONCURRENCY,
    REJECT_RATE,
    AdmissionController,
    TokenBucket,
)
from repro.qos.policy import DEFAULT_QOS_POLICY, QosPolicy


def nfr(qos=None, constraint=None) -> NonFunctionalRequirements:
    return NonFunctionalRequirements(
        qos=qos or QosRequirement(), constraint=constraint or Constraint()
    )


class TestQosPolicy:
    def test_default_policy_is_unlimited_standard(self):
        assert DEFAULT_QOS_POLICY.unlimited
        assert DEFAULT_QOS_POLICY.weight == TIER_STANDARD
        assert DEFAULT_QOS_POLICY.tier == TIER_STANDARD
        assert DEFAULT_QOS_POLICY.deadline_ms is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_rps": 0},
            {"rate_rps": -5},
            {"burst": 0.5},
            {"weight": 0},
            {"tier": 0},
            {"deadline_ms": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            QosPolicy(cls="C", **kwargs)

    def test_from_nfr_throughput_sets_rate_and_burst(self):
        policy = QosPolicy.from_nfr("C", nfr(QosRequirement(throughput_rps=100)))
        assert policy.rate_rps == 100
        assert policy.burst == 25.0  # 0.25 s of the rate
        assert not policy.unlimited

    def test_from_nfr_small_rate_keeps_min_burst(self):
        policy = QosPolicy.from_nfr("C", nfr(QosRequirement(throughput_rps=1)))
        assert policy.burst == 1.0

    def test_from_nfr_priority_sets_weight_and_tier(self):
        policy = QosPolicy.from_nfr("C", nfr(QosRequirement(priority=8)))
        assert policy.weight == 8
        assert policy.tier == 8

    @pytest.mark.parametrize(
        "budget,tier",
        [(10, TIER_ECONOMY), (25, TIER_STANDARD), (500, TIER_PREMIUM), (None, TIER_STANDARD)],
    )
    def test_from_nfr_budget_tier_fallback(self, budget, tier):
        constraint = Constraint(budget_usd_per_month=budget) if budget else Constraint()
        policy = QosPolicy.from_nfr("C", nfr(constraint=constraint))
        assert policy.weight == tier
        assert policy.tier == tier

    def test_from_nfr_latency_becomes_deadline(self):
        policy = QosPolicy.from_nfr("C", nfr(QosRequirement(latency_ms=50)))
        assert policy.deadline_ms == 50


class TestTokenBucket:
    def test_starts_full_and_drains(self, env):
        bucket = TokenBucket(env, rate=10, capacity=3)
        assert bucket.tokens == 3
        assert all(bucket.try_take() for _ in range(3))
        assert not bucket.try_take()

    def test_refills_with_sim_time(self, env):
        bucket = TokenBucket(env, rate=10, capacity=5)
        for _ in range(5):
            bucket.try_take()
        env.run(until=0.2)  # 2 tokens accrue
        assert bucket.tokens == pytest.approx(2.0)
        assert bucket.try_take()

    def test_never_exceeds_capacity(self, env):
        bucket = TokenBucket(env, rate=100, capacity=2)
        env.run(until=10.0)
        assert bucket.tokens == 2

    def test_retry_after_estimates_refill(self, env):
        bucket = TokenBucket(env, rate=10, capacity=1)
        bucket.try_take()
        assert bucket.retry_after_s() == pytest.approx(0.1)
        env.run(until=0.1)
        assert bucket.retry_after_s() == 0.0

    def test_validation(self, env):
        with pytest.raises(ValueError):
            TokenBucket(env, rate=0, capacity=1)
        with pytest.raises(ValueError):
            TokenBucket(env, rate=1, capacity=0.5)


class TestAdmissionController:
    def test_unlimited_policy_always_admitted(self, env):
        controller = AdmissionController(env)
        policy = QosPolicy(cls="C")
        for _ in range(1000):
            assert controller.check(policy, use_ceiling=False).admitted

    def test_rate_limit_rejects_with_retry_hint(self, env):
        controller = AdmissionController(env)
        policy = QosPolicy(cls="C", rate_rps=10, burst=2)
        assert controller.check(policy).admitted
        assert controller.check(policy).admitted
        decision = controller.check(policy)
        assert not decision.admitted
        assert decision.reason == REJECT_RATE
        assert decision.retry_after_s > 0

    def test_ceiling_rejects_and_release_frees_slot(self, env):
        controller = AdmissionController(env, concurrency_limit=2)
        policy = QosPolicy(cls="C")
        assert controller.check(policy).admitted
        assert controller.check(policy).admitted
        decision = controller.check(policy)
        assert not decision.admitted
        assert decision.reason == REJECT_CONCURRENCY
        controller.release()
        assert controller.check(policy).admitted

    def test_ceiling_rejection_refunds_rate_token(self, env):
        controller = AdmissionController(env, concurrency_limit=1)
        policy = QosPolicy(cls="C", rate_rps=10, burst=2)
        assert controller.check(policy).admitted
        before = controller.tokens("C")
        assert not controller.check(policy).admitted  # ceiling, not rate
        assert controller.tokens("C") == pytest.approx(before)

    def test_async_path_skips_ceiling(self, env):
        controller = AdmissionController(env, concurrency_limit=1)
        policy = QosPolicy(cls="C")
        assert controller.check(policy).admitted
        assert controller.check(policy, use_ceiling=False).admitted
        assert controller.in_flight == 1

    def test_stats_by_class(self, env):
        controller = AdmissionController(env)
        policy = QosPolicy(cls="C", rate_rps=10, burst=1)
        controller.check(policy, use_ceiling=False)
        controller.check(policy, use_ceiling=False)
        assert controller.stats() == {
            "C": {"admitted": 1, "rejected_rate": 1, "rejected_concurrency": 0}
        }

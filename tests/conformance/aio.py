"""Asyncio-transport runner for the conformance scenario DSL.

:func:`run_scenario_asyncio` replays the same :class:`~tests.conformance.dsl.Scenario`
timelines as the sim runner, but over the real transport: an
:class:`AsyncSchedulerServer` listening on TCP and one
:class:`AsyncWorkerClient` process-alike per pool slot.  Chaos steps map
to *real* failures —

* ``Crash``/``FailNode`` abort the worker's TCP connection mid-flight
  (no goodbye frame), so the epoch fence and requeue paths are exercised
  by genuine connection drops;
* ``LoseHeartbeats`` silences the client's heartbeat loop while its
  executor keeps running, so the server's monitor escalates
  DEGRADED→DEAD for real;
* ``Drain`` goes through the DrainCmd/Drained handshake;
* ``Slow`` scales the client's executor latency.

The result is assembled into the sim runner's :class:`ScenarioResult`
shape, so the *same* invariant checks (`check_exactly_once`,
`check_no_dispatch_to_unready`, `check_monotone`) run unchanged over
both transports.  The one sim-only property is byte-identical replay:
real wall-clock interleavings are nondeterministic by nature, which is
exactly what this variant adds on top of the sim suite.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.errors import SchedulingError
from repro.invoker.request import InvocationRequest
from repro.scheduler import SchedulerConfig
from repro.scheduler.transport.aio import AsyncSchedulerServer, AsyncWorkerClient
from repro.scheduler.transport.protocol import Dispatch

from tests.conformance.dsl import (
    Crash,
    Drain,
    FailNode,
    LoseHeartbeats,
    RegisterWorker,
    Scenario,
    ScenarioResult,
    Slow,
    Step,
    Submit,
    WorkerRecord,
)

#: Wall-clock ceiling on the settle phase.  The sim runner can afford a
#: 30s virtual settle; here every second is real, and a healthy run
#: settles in well under a second after the last step.
MAX_SETTLE_WALL_S = 12.0

NODES = ("vm-0", "vm-1", "vm-2")


class _Pool:
    """Client-side of the scenario: live worker processes by name."""

    def __init__(self, server: AsyncSchedulerServer, config: SchedulerConfig):
        self.server = server
        self.config = config
        self.clients: dict[str, AsyncWorkerClient] = {}
        self.all_clients: list[AsyncWorkerClient] = []
        self.next_index = 0
        self.spawn_tasks: set[asyncio.Task] = set()
        self.service_time_s = 0.002

    async def _executor(self, dispatch: Dispatch, client: AsyncWorkerClient) -> dict:
        await asyncio.sleep(self.service_time_s * client.slow_factor)
        return {"ok": True, "output": {"fn": dispatch.fn_name}}

    async def spawn(self, name: str | None = None) -> AsyncWorkerClient:
        if name is None:
            name = f"worker-{self.next_index}"
        self.next_index = max(self.next_index, int(name.rsplit("-", 1)[1]) + 1)
        client = AsyncWorkerClient(
            name,
            "127.0.0.1",
            self.server.port,
            self._executor,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            node=NODES[self.next_index % len(NODES)],
        )
        await client.connect()
        self.clients[name] = client
        self.all_clients.append(client)
        return client

    async def spawn_quietly(self, name: str | None = None) -> None:
        try:
            await self.spawn(name)
        except (SchedulingError, ConnectionError, OSError):
            pass  # rejected rejoin or scenario teardown won the race

    def live(self, name: str) -> AsyncWorkerClient | None:
        client = self.clients.get(name)
        if client is None:
            return None
        port = self.server.core.workers.get(name)
        if port is None or port.machine.is_dead:
            return None
        return client

    def replace_lost(self, name: str) -> None:
        """Self-heal like the sim pool: every lost worker is replaced by
        a fresh registration so the scenario can settle."""
        task = asyncio.ensure_future(self.spawn_quietly())
        self.spawn_tasks.add(task)
        task.add_done_callback(self.spawn_tasks.discard)

    async def close(self) -> None:
        for task in self.spawn_tasks:
            task.cancel()
        if self.spawn_tasks:
            await asyncio.gather(*self.spawn_tasks, return_exceptions=True)
        for client in self.all_clients:
            await client.close()


def _apply(
    pool: _Pool,
    step: Step,
    object_ids: list[str],
    futures: list[asyncio.Future],
    skipped: list[str],
) -> None:
    server = pool.server
    if isinstance(step, Submit):
        for _ in range(step.count):
            request = InvocationRequest(
                object_id=object_ids[step.object_key % len(object_ids)],
                fn_name="bump",
                cls="Probe",
            )
            futures.append(server.submit(request))
    elif isinstance(step, RegisterWorker):
        if step.name is not None and pool.live(step.name) is not None:
            skipped.append(f"register {step.name}: still live")
        else:
            task = asyncio.ensure_future(pool.spawn_quietly(step.name))
            pool.spawn_tasks.add(task)
            task.add_done_callback(pool.spawn_tasks.discard)
    elif isinstance(step, Drain):
        try:
            server.drain(step.worker)
        except SchedulingError as exc:
            skipped.append(f"drain {step.worker}: {exc}")
    elif isinstance(step, Crash):
        client = pool.live(step.worker)
        if client is None:
            skipped.append(f"crash {step.worker}: not live")
        else:
            client.kill()  # real connection drop, no goodbye frame
    elif isinstance(step, LoseHeartbeats):
        client = pool.live(step.worker)
        if client is None:
            skipped.append(f"heartbeat-loss {step.worker}: not live")
        else:
            client.suppress_heartbeats(step.duration_s)
    elif isinstance(step, Slow):
        client = pool.live(step.worker)
        if client is None:
            skipped.append(f"slow {step.worker}: not live")
        else:
            client.slow_factor = step.factor

            def clear(client=client):
                client.slow_factor = 1.0

            asyncio.get_running_loop().call_later(step.duration_s, clear)
    elif isinstance(step, FailNode):
        if step.node not in NODES:
            skipped.append(f"fail-node {step.node}: unknown")
            return
        victims = [
            name
            for name, client in pool.clients.items()
            if client.node == step.node and pool.live(name) is not None
        ]
        if not victims:
            skipped.append(f"fail-node {step.node}: no live workers")
        for name in victims:
            pool.clients[name].kill()
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown step {step!r}")


async def _run(scenario: Scenario) -> ScenarioResult:
    overrides = dict(scenario.scheduler)
    # Sim-only knobs have no transport analogue: registration/install
    # latency is the real TCP handshake here, and self-healing is the
    # pool's on_worker_lost hook below.
    for key in (
        "register_delay_s",
        "install_delay_s",
        "dispatch_overhead_s",
        "replace_dead_workers",
    ):
        overrides.pop(key, None)
    config = SchedulerConfig(transport="asyncio", **overrides)
    server = AsyncSchedulerServer(config=config, classes=["Probe"])
    pool = _Pool(server, config)
    server.on_worker_lost = pool.replace_lost
    await server.start()
    for _ in range(config.pool_size):
        await pool.spawn()
    loop = asyncio.get_running_loop()

    object_ids = [f"Probe~o{index}" for index in range(scenario.objects)]
    futures: list[asyncio.Future] = []
    skipped: list[str] = []
    started = loop.time()
    for step in sorted(scenario.steps, key=lambda s: s.at):
        delay = started + step.at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        _apply(pool, step, object_ids, futures, skipped)

    deadline = loop.time() + min(scenario.settle_s, MAX_SETTLE_WALL_S)
    while server.core.outstanding and loop.time() < deadline:
        await asyncio.sleep(0.02)
    settled = server.core.outstanding == 0

    workers = [
        WorkerRecord(
            name=port.name,
            epoch=port.epoch,
            final_state=port.machine.state.value,
            machine=port.machine,
        )
        for port in server.core.registrations
    ]
    audit = server.core.ledger.audit()
    delivered = server.core.delivered
    resolved = sum(1 for f in futures if f.done() and not f.cancelled())
    events = list(server.events)
    events_text = "\n".join(
        f"{e.seq:05d} {e.at:9.4f} {e.type} {sorted(e.fields.items())}"
        for e in events
    )
    await pool.close()
    await server.stop()
    return ScenarioResult(
        scenario=scenario,
        events_text=events_text,
        events=events,
        audit=audit,
        delivered=delivered,
        submitted=len(futures),
        resolved=resolved,
        workers=workers,
        settled=settled,
        skipped_steps=skipped,
    )


def run_scenario_asyncio(scenario: Scenario) -> ScenarioResult:
    """Blocking wrapper: replay ``scenario`` over the asyncio transport
    in a fresh event loop and return the sim-shaped result."""
    return asyncio.run(_run(scenario))


def describe(result: ScenarioResult) -> dict[str, Any]:
    """Small debugging summary for assertion messages."""
    return {
        "audit": result.audit,
        "settled": result.settled,
        "skipped": result.skipped_steps,
        "workers": [(r.name, r.final_state) for r in result.workers],
    }

"""Scenario DSL + runner + invariant checks for scheduler conformance.

A :class:`Scenario` is pure data: a seed, a scheduler config, and a
timeline of typed :class:`Step`\\ s.  :func:`run_scenario` replays it
against a fresh platform and returns a :class:`ScenarioResult` holding
everything the invariants need — the ledger audit, every worker
registration's transition history, the full event log, and its rendered
text (for determinism diffs).

:func:`random_scenario` derives an arbitrary chaos interleaving from an
integer seed, which is how the suite covers 100+ seeded interleavings
without hand-writing them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SchedulingError
from repro.invoker.request import InvocationRequest
from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.scheduler import SchedulerConfig, WorkerStateMachine

CONFORMANCE_YAML = """
name: conformance
classes:
  - name: Probe
    keySpecs:
      - name: n
        type: INT
        default: 0
    functions:
      - name: bump
        image: probe/bump
"""

#: Chaos-heavy but fast lifecycle: short beats so heartbeat loss
#: degrades and kills within scenario time; nonzero dispatch overhead
#: so crashes can land while an invocation is in flight.
SCENARIO_SCHEDULER = dict(
    enabled=True,
    pool_size=3,
    heartbeat_interval_s=0.1,
    degraded_after_misses=2,
    dead_after_misses=4,
    register_delay_s=0.02,
    install_delay_s=0.02,
    dispatch_overhead_s=0.002,
    replace_dead_workers=True,
)


# -- steps ------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """One timed action on the scenario timeline."""

    at: float


@dataclass(frozen=True)
class Submit(Step):
    """Submit ``count`` async invocations against object ``object_key``."""

    count: int = 1
    object_key: int = 0


@dataclass(frozen=True)
class RegisterWorker(Step):
    """Admit a (possibly returning) worker by name."""

    name: str | None = None


@dataclass(frozen=True)
class Drain(Step):
    """Gracefully retire a worker (queued work handed to peers)."""

    worker: str = "worker-0"


@dataclass(frozen=True)
class Crash(Step):
    """Kill a worker outright (epoch fence + requeue)."""

    worker: str = "worker-0"


@dataclass(frozen=True)
class LoseHeartbeats(Step):
    """Suppress a worker's heartbeats while it keeps executing."""

    worker: str = "worker-0"
    duration_s: float = 0.5


@dataclass(frozen=True)
class Slow(Step):
    """Multiply a worker's dispatch overhead for a while."""

    worker: str = "worker-0"
    factor: float = 4.0
    duration_s: float = 0.5


@dataclass(frozen=True)
class FailNode(Step):
    """Crash a VM; every worker on it dies with it."""

    node: str = "vm-0"


@dataclass(frozen=True)
class Scenario:
    """A named, seeded chaos interleaving."""

    name: str
    steps: tuple[Step, ...]
    seed: int = 0
    objects: int = 3
    settle_s: float = 30.0
    scheduler: dict[str, Any] = field(default_factory=lambda: dict(SCENARIO_SCHEDULER))


@dataclass
class WorkerRecord:
    """One registration's history, detached from the live platform."""

    name: str
    epoch: int
    final_state: str
    machine: WorkerStateMachine


@dataclass
class ScenarioResult:
    scenario: Scenario
    events_text: str
    events: list[Any]
    audit: dict[str, int]
    delivered: int
    submitted: int
    resolved: int
    workers: list[WorkerRecord]
    settled: bool
    skipped_steps: list[str]


# -- runner -----------------------------------------------------------------


def _bump(ctx):
    n = int(ctx.state.get("n", 0)) + 1
    ctx.state["n"] = n
    return {"n": n}


def build_platform(scenario: Scenario) -> Oparaca:
    platform = Oparaca(
        PlatformConfig(
            nodes=3,
            seed=scenario.seed,
            events_enabled=True,
            scheduler=SchedulerConfig(**scenario.scheduler),
        )
    )
    platform.register_image("probe/bump", _bump, service_time_s=0.002)
    platform.deploy(CONFORMANCE_YAML)
    return platform


def _apply(platform, step: Step, object_ids, completions, skipped) -> None:
    plane = platform.scheduler_plane
    if isinstance(step, Submit):
        for _ in range(step.count):
            request = InvocationRequest(
                object_id=object_ids[step.object_key % len(object_ids)],
                fn_name="bump",
            )
            completions.append(platform.queue.submit(request))
    elif isinstance(step, RegisterWorker):
        try:
            plane.register_worker(step.name)
        except SchedulingError as exc:  # name still live: a no-op rejoin
            skipped.append(f"register {step.name}: {exc}")
    elif isinstance(step, Drain):
        try:
            plane.drain_worker(step.worker)
        except SchedulingError as exc:  # unknown or already dead/draining
            skipped.append(f"drain {step.worker}: {exc}")
    elif isinstance(step, Crash):
        if not plane.crash_worker(step.worker, reason="scenario"):
            skipped.append(f"crash {step.worker}: not live")
    elif isinstance(step, LoseHeartbeats):
        if not plane.suppress_heartbeats(step.worker, step.duration_s):
            skipped.append(f"heartbeat-loss {step.worker}: not live")
    elif isinstance(step, Slow):
        if plane.set_worker_slow(step.worker, step.factor):
            def clear(worker=step.worker):
                yield platform.env.timeout(step.duration_s)
                plane.clear_worker_slow(worker)

            platform.env.process(clear())
        else:
            skipped.append(f"slow {step.worker}: not live")
    elif isinstance(step, FailNode):
        if step.node in platform.cluster.node_names:
            platform.fail_node(step.node)
        else:
            skipped.append(f"fail-node {step.node}: unknown")
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown step {step!r}")


def run_scenario(scenario: Scenario) -> ScenarioResult:
    platform = build_platform(scenario)
    plane = platform.scheduler_plane
    object_ids = []
    for index in range(scenario.objects):
        response = platform.http(
            "POST", "/api/classes/Probe", {"id": f"Probe/o{index}"}
        )
        assert response.ok, response.body
        object_ids.append(response.body["id"])

    completions: list[Any] = []
    skipped: list[str] = []
    # Steps run in timeline order; ties keep authored order (stable sort).
    steps = sorted(scenario.steps, key=lambda s: s.at)
    for step in steps:
        if step.at > platform.now:
            platform.advance(step.at - platform.now)
        _apply(platform, step, object_ids, completions, skipped)

    # Settle: the pool self-heals (replacements register), so every
    # accepted invocation must eventually complete.  Bounded, not
    # unbounded: a liveness bug fails the settled flag, not the suite's
    # wall clock.
    deadline = platform.now + scenario.settle_s
    while plane.outstanding and platform.now < deadline:
        platform.advance(0.25)
    settled = plane.outstanding == 0

    workers = [
        WorkerRecord(
            name=worker.name,
            epoch=worker.epoch,
            final_state=worker.state.value,
            machine=worker.machine,
        )
        for worker in plane.all_workers
    ]
    audit = plane.ledger.audit()
    delivered = plane.delivered
    resolved = platform.queue.completed
    events = list(platform.events.events())
    events_text = platform.events.render()
    platform.shutdown()
    return ScenarioResult(
        scenario=scenario,
        events_text=events_text,
        events=events,
        audit=audit,
        delivered=delivered,
        submitted=platform.queue.submitted,
        resolved=resolved,
        workers=workers,
        settled=settled,
        skipped_steps=skipped,
    )


# -- invariants -------------------------------------------------------------


def check_exactly_once(result: ScenarioResult) -> list[str]:
    """No accepted invocation dropped, none delivered twice."""
    problems = []
    audit = result.audit
    if not result.settled:
        problems.append(
            f"did not settle: {audit['outstanding']} outstanding after "
            f"{result.scenario.settle_s}s"
        )
    if audit["accepted"] != result.submitted:
        problems.append(
            f"accepted {audit['accepted']} != submitted {result.submitted}"
        )
    if audit["completed"] != audit["accepted"] - audit["outstanding"]:
        problems.append("ledger conservation violated: " + repr(audit))
    if result.delivered != audit["completed"]:
        problems.append(
            f"delivered {result.delivered} != completed {audit['completed']} "
            "(a completion was double-delivered or lost)"
        )
    if result.resolved != audit["completed"]:
        problems.append(
            f"invoker resolved {result.resolved} != completed {audit['completed']}"
        )
    return problems


#: Lifecycle event type -> the state the worker is in afterwards.
_STATE_AFTER = {
    "scheduler.register": "REGISTERED",
    "scheduler.ready": "READY",
    "scheduler.degraded": "DEGRADED",
    "scheduler.recovered": "READY",
    "scheduler.draining": "DRAINING",
    "scheduler.dead": "DEAD",
}


def check_no_dispatch_to_unready(result: ScenarioResult) -> list[str]:
    """Replays the event log: every dispatch must land on a worker whose
    most recent lifecycle event (in log order) left it READY."""
    problems = []
    state: dict[str, str] = {}
    for event in result.events:
        after = _STATE_AFTER.get(event.type)
        if after is not None:
            state[event.fields["worker"]] = after
            continue
        if event.type == "scheduler.dispatch":
            worker = event.fields["worker"]
            current = state.get(worker)
            if current != "READY":
                problems.append(
                    f"dispatch to {worker} in state {current} at t={event.at:.4f} "
                    f"(seq {event.seq})"
                )
    return problems


def check_monotone(result: ScenarioResult) -> list[str]:
    """Every registration's recorded history is phase-monotone over
    legal edges and matches its final state."""
    problems = []
    for record in result.workers:
        if not record.machine.is_monotone():
            history = [t.to_dict() for t in record.machine.history]
            problems.append(
                f"{record.name} (epoch {record.epoch}) history not monotone: "
                f"{history}"
            )
    return problems


def check_all(result: ScenarioResult) -> list[str]:
    return (
        check_exactly_once(result)
        + check_no_dispatch_to_unready(result)
        + check_monotone(result)
    )


# -- random scenario generation --------------------------------------------


def random_scenario(seed: int, *, heavy: bool = False) -> Scenario:
    """Derive an arbitrary chaos interleaving from ``seed``.

    ``heavy`` widens the step budget (the ``--chaos`` CI variant).
    """
    rng = random.Random(seed ^ 0x5EED)
    horizon = 3.0
    steps: list[Step] = []
    submit_budget = rng.randint(8, 20) * (2 if heavy else 1)
    for _ in range(submit_budget):
        steps.append(
            Submit(
                at=round(rng.uniform(0.0, horizon), 4),
                count=rng.randint(1, 3),
                object_key=rng.randrange(3),
            )
        )
    chaos_budget = rng.randint(2, 5) * (2 if heavy else 1)
    workers = [f"worker-{i}" for i in range(5)]
    failed_node = False
    for _ in range(chaos_budget):
        at = round(rng.uniform(0.2, horizon), 4)
        kind = rng.randrange(6)
        if kind == 0:
            steps.append(Crash(at=at, worker=rng.choice(workers)))
        elif kind == 1:
            steps.append(Drain(at=at, worker=rng.choice(workers)))
        elif kind == 2:
            steps.append(
                LoseHeartbeats(
                    at=at,
                    worker=rng.choice(workers),
                    duration_s=round(rng.uniform(0.15, 0.8), 4),
                )
            )
        elif kind == 3:
            steps.append(
                Slow(
                    at=at,
                    worker=rng.choice(workers),
                    factor=rng.choice([2.0, 4.0, 8.0]),
                    duration_s=round(rng.uniform(0.2, 0.8), 4),
                )
            )
        elif kind == 4:
            steps.append(RegisterWorker(at=at, name=rng.choice(workers)))
        elif not failed_node:
            failed_node = True
            steps.append(FailNode(at=at, node=f"vm-{rng.randrange(3)}"))
    return Scenario(name=f"random-{seed}", steps=tuple(steps), seed=seed)

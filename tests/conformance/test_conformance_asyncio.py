"""Conformance over the real asyncio transport.

The same named scenarios and a band of seeded interleavings as the sim
suite, replayed through :func:`tests.conformance.aio.run_scenario_asyncio`
— real TCP connections, real connection-drop crashes, real heartbeat
timeouts — and checked against the same invariants: exactly-once
completion, dispatch-only-to-READY, monotone worker histories, and
ledger conservation.

Gated behind ``--asyncio-transport`` because every scenario runs on the
wall clock (a few seconds each, vs milliseconds in the sim).  The sim
suite's byte-identical-replay check has no analogue here: real
interleavings are nondeterministic, which is precisely the coverage this
variant adds.
"""

from __future__ import annotations

import pytest

from repro.scheduler import WorkerState

from tests.conformance.aio import describe, run_scenario_asyncio
from tests.conformance.dsl import check_all, check_exactly_once, random_scenario
from tests.conformance.test_conformance import NAMED_SCENARIOS

pytestmark = pytest.mark.asyncio_transport


@pytest.mark.parametrize(
    "scenario", NAMED_SCENARIOS, ids=[s.name for s in NAMED_SCENARIOS]
)
def test_named_scenario_invariants_over_asyncio(scenario):
    result = run_scenario_asyncio(scenario)
    problems = check_all(result)
    assert problems == [], f"{problems}\n{describe(result)}"


def test_connection_drop_crash_requeues_over_asyncio():
    # crash-in-flight: two workers killed by severing their TCP
    # connections right after a 20-invocation burst.
    result = run_scenario_asyncio(NAMED_SCENARIOS[2])
    assert result.audit["requeues"] > 0, describe(result)
    assert check_exactly_once(result) == []
    reasons = {
        e.fields["reason"] for e in result.events if e.type == "scheduler.dead"
    }
    assert "connection-lost" in reasons


def test_heartbeat_loss_escalates_to_dead_over_asyncio():
    result = run_scenario_asyncio(NAMED_SCENARIOS[3])
    assert result.delivered == result.audit["completed"]
    dead = [
        e
        for e in result.events
        if e.type == "scheduler.dead"
        and e.fields.get("reason") == "heartbeat-timeout"
    ]
    assert dead, f"heartbeat loss never escalated\n{describe(result)}"


def test_drain_handshake_retires_worker_over_asyncio():
    result = run_scenario_asyncio(NAMED_SCENARIOS[1])
    drained = [r for r in result.workers if r.name == "worker-0"]
    assert drained and drained[0].final_state == WorkerState.DEAD.value
    states = [t.target for t in drained[0].machine.history]
    assert WorkerState.DRAINING in states
    assert check_exactly_once(result) == []


@pytest.mark.parametrize("seed", range(12))
def test_random_interleaving_invariants_over_asyncio(seed):
    result = run_scenario_asyncio(random_scenario(seed))
    problems = check_all(result)
    assert problems == [], (
        f"seed {seed} violated invariants over asyncio: {problems}\n"
        f"{describe(result)}"
    )

"""Lifecycle-conformance harness for the scheduler plane.

A scenario DSL (``dsl.py``) drives arbitrary interleavings of
register / heartbeat-loss / drain / crash / rebind steps against a
real platform and checks the control-plane invariants:

* every accepted invocation completes exactly once (none dropped,
  none double-delivered);
* work is only ever dispatched to a READY worker;
* every worker's recorded state history is phase-monotone over legal
  edges;
* the same scenario at the same seed replays to a byte-identical
  event log.

The harness talks to the plane only through public seams (gateway,
queue, chaos hooks), so it can later be pointed at a real-asyncio
transport implementing the same protocol.
"""

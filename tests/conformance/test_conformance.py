"""Lifecycle-conformance suite: hand-written protocol scenarios plus
100 seeded random chaos interleavings, each checked against the core
invariants (exactly-once completion, dispatch-only-to-READY, monotone
worker histories, deterministic replay)."""

from __future__ import annotations

import pytest

from repro.scheduler import WorkerState

from tests.conformance.dsl import (
    Crash,
    Drain,
    FailNode,
    LoseHeartbeats,
    RegisterWorker,
    Scenario,
    Slow,
    Submit,
    check_all,
    check_exactly_once,
    random_scenario,
    run_scenario,
)

# -- hand-written protocol scenarios ---------------------------------------

NAMED_SCENARIOS = [
    Scenario(
        name="steady",
        steps=(Submit(at=0.5, count=12), Submit(at=1.0, count=8, object_key=1)),
    ),
    Scenario(
        name="drain-under-load",
        steps=(
            Submit(at=0.5, count=20),
            Drain(at=0.51, worker="worker-0"),
            Submit(at=0.7, count=10, object_key=1),
        ),
    ),
    Scenario(
        name="crash-in-flight",
        # Crash lands inside the dispatch overhead + service window of a
        # just-dispatched batch: queued + in-flight items must requeue.
        steps=(
            Submit(at=0.5, count=20),
            Crash(at=0.501, worker="worker-0"),
            Crash(at=0.502, worker="worker-1"),
        ),
    ),
    Scenario(
        name="zombie-heartbeat-loss",
        # Worker keeps executing while silent: degraded -> dead -> its
        # late results are fenced, the redispatched twins complete.
        steps=(
            Submit(at=0.5, count=15),
            LoseHeartbeats(at=0.5, worker="worker-0", duration_s=2.0),
            Submit(at=0.9, count=10, object_key=2),
        ),
    ),
    Scenario(
        name="mid-drain-crash",
        steps=(
            Submit(at=0.5, count=18),
            Drain(at=0.505, worker="worker-1"),
            Crash(at=0.51, worker="worker-1"),
        ),
    ),
    Scenario(
        name="node-failure",
        steps=(
            Submit(at=0.5, count=16),
            FailNode(at=0.52, node="vm-0"),
            Submit(at=0.8, count=8, object_key=1),
        ),
    ),
    Scenario(
        name="slow-worker-rebind",
        steps=(
            Slow(at=0.3, worker="worker-0", factor=8.0, duration_s=1.0),
            Submit(at=0.5, count=20),
            LoseHeartbeats(at=0.6, worker="worker-2", duration_s=0.5),
        ),
    ),
    Scenario(
        name="rejoin-after-crash",
        steps=(
            Submit(at=0.5, count=10),
            Crash(at=0.6, worker="worker-2"),
            RegisterWorker(at=1.2, name="worker-2"),
            Submit(at=1.5, count=10, object_key=1),
        ),
    ),
]


@pytest.mark.parametrize(
    "scenario", NAMED_SCENARIOS, ids=[s.name for s in NAMED_SCENARIOS]
)
def test_named_scenario_invariants(scenario):
    result = run_scenario(scenario)
    assert check_all(result) == []


def test_crash_in_flight_actually_requeues():
    result = run_scenario(NAMED_SCENARIOS[2])
    assert result.audit["requeues"] > 0
    assert check_exactly_once(result) == []


def test_zombie_results_are_fenced_not_double_delivered():
    result = run_scenario(NAMED_SCENARIOS[3])
    # The zombie was declared dead while executing; whether its orphan
    # result raced the redispatched twin or not, delivery stayed single.
    assert result.delivered == result.audit["completed"]
    dead = [
        e
        for e in result.events
        if e.type == "scheduler.dead"
        and e.fields.get("reason") == "heartbeat-timeout"
    ]
    assert dead, "heartbeat loss never escalated to a dead declaration"


def test_drain_retires_worker_and_loses_nothing():
    result = run_scenario(NAMED_SCENARIOS[1])
    drained = [r for r in result.workers if r.name == "worker-0"]
    assert drained and drained[0].final_state == WorkerState.DEAD.value
    states = [t.target for t in drained[0].machine.history]
    assert WorkerState.DRAINING in states
    assert check_exactly_once(result) == []


def test_node_failure_kills_colocated_workers():
    result = run_scenario(NAMED_SCENARIOS[5])
    reasons = {
        e.fields["reason"]
        for e in result.events
        if e.type == "scheduler.dead"
    }
    assert "node-failure" in reasons
    assert check_all(result) == []


# -- 100 seeded random interleavings ---------------------------------------


@pytest.mark.parametrize("seed", range(100))
def test_random_interleaving_invariants(seed):
    result = run_scenario(random_scenario(seed))
    problems = check_all(result)
    assert problems == [], (
        f"seed {seed} violated invariants: {problems}\n"
        f"skipped steps: {result.skipped_steps}"
    )


@pytest.mark.parametrize("seed", [0, 17, 42])
def test_random_interleaving_replays_byte_identically(seed):
    first = run_scenario(random_scenario(seed))
    second = run_scenario(random_scenario(seed))
    assert first.events_text == second.events_text
    assert first.audit == second.audit


# -- heavier --chaos variants ----------------------------------------------


@pytest.mark.chaos
@pytest.mark.parametrize("seed", range(100, 125))
def test_heavy_interleaving_invariants(seed):
    result = run_scenario(random_scenario(seed, heavy=True))
    problems = check_all(result)
    assert problems == [], (
        f"heavy seed {seed} violated invariants: {problems}\n"
        f"skipped steps: {result.skipped_steps}"
    )


@pytest.mark.chaos
@pytest.mark.parametrize("seed", [101, 113])
def test_heavy_interleaving_replays_byte_identically(seed):
    first = run_scenario(random_scenario(seed, heavy=True))
    second = run_scenario(random_scenario(seed, heavy=True))
    assert first.events_text == second.events_text

"""Chaos-plane tests: fault plans, the injector, availability accounting,
determinism regression, and hash-ring failover properties.

The headline contracts:

* injected faults flow through the platform's real seams and are fully
  reverted when their window closes;
* a replicated class meets its availability target through a node crash
  plus partition while a non-replicated ephemeral class demonstrably
  does not — and no *committed* state is ever lost;
* the same seeded workload under the same fault plan produces
  byte-identical event logs and span summaries, twice in a row, for
  several seeds (chaos results are regressible, not anecdotal);
* after any crash/rejoin sequence every key has exactly
  ``min(replication, nodes)`` live owners, and membership changes only
  move keys whose owner set actually changed.
"""

import random
from collections import Counter

import pytest

from repro.chaos import (
    ChaosInjector,
    ColdStartStorm,
    FaultPlan,
    NetworkDelay,
    NodeCrash,
    Partition,
    PLAN_NAMES,
    SlowPods,
    StorageFaults,
    named_plan,
)
from repro.errors import ValidationError
from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.storage.hashring import HashRing

PACKAGE = """
name: chaos-app
classes:
  - name: Ledger
    qos:
      availability: 0.999
    keySpecs:
      - name: balance
        type: INT
        default: 0
    functions:
      - name: add
        image: ledger/add
  - name: Scratch
    qos:
      availability: 0.999
    constraint:
      persistent: false
    keySpecs:
      - name: hits
        type: INT
        default: 0
    functions:
      - name: bump
        image: scratch/bump
"""


def make_platform(seed: int = 0, tracing: bool = False) -> Oparaca:
    platform = Oparaca(
        PlatformConfig(
            nodes=3, seed=seed, tracing_enabled=tracing, events_enabled=True
        )
    )

    @platform.function("ledger/add", service_time_s=0.002)
    def add(ctx):
        ctx.state["balance"] = ctx.state.get("balance", 0) + int(
            ctx.payload.get("amount", 1)
        )
        return {"balance": ctx.state["balance"]}

    @platform.function("scratch/bump", service_time_s=0.002)
    def bump(ctx):
        ctx.state["hits"] = ctx.state.get("hits", 0) + 1
        return {"hits": ctx.state["hits"]}

    platform.deploy(PACKAGE)
    return platform


class TestFaultPlan:
    def test_rejects_negative_time_and_duration(self):
        with pytest.raises(ValidationError):
            NodeCrash(at=-1.0, node="vm-0")
        with pytest.raises(ValidationError):
            NodeCrash(at=0.0, duration_s=-1.0, node="vm-0")

    def test_profile_validation(self):
        with pytest.raises(ValidationError):
            NodeCrash(at=0.0, node="")
        with pytest.raises(ValidationError):
            Partition(at=0.0, duration_s=1.0, nodes=())
        with pytest.raises(ValidationError):
            Partition(at=0.0, duration_s=0.0, nodes=("vm-0",))
        with pytest.raises(ValidationError):
            NetworkDelay(at=0.0, duration_s=1.0, extra_s=0.0)
        with pytest.raises(ValidationError):
            SlowPods(at=0.0, duration_s=1.0, factor=1.0)
        with pytest.raises(ValidationError):
            StorageFaults(at=0.0, duration_s=1.0, error_rate=1.5)
        with pytest.raises(ValidationError):
            ColdStartStorm(at=0.0, duration_s=1.0)

    def test_plan_validation(self):
        with pytest.raises(ValidationError):
            FaultPlan("empty", ())
        with pytest.raises(ValidationError):
            FaultPlan("", (ColdStartStorm(at=0.0),))
        with pytest.raises(ValidationError):
            FaultPlan("bad", ("not-a-fault",))

    def test_end_s_covers_inject_and_revert(self):
        plan = FaultPlan(
            "p",
            (
                NodeCrash(at=1.0, duration_s=5.0, node="vm-0"),
                Partition(at=4.0, duration_s=1.0, nodes=("vm-1",)),
            ),
        )
        assert plan.end_s == pytest.approx(6.0)

    def test_describe_is_sorted_by_time(self):
        plan = FaultPlan(
            "p",
            (
                Partition(at=4.0, duration_s=1.0, nodes=("vm-1",)),
                NodeCrash(at=1.0, node="vm-0"),
            ),
        )
        described = plan.describe()["faults"]
        assert [f["kind"] for f in described] == ["NodeCrash", "Partition"]


class TestNamedPlans:
    def test_all_builtin_plans_build(self):
        nodes = ["vm-0", "vm-1", "vm-2"]
        for name in PLAN_NAMES:
            plan = named_plan(name, nodes)
            assert plan.name == name
            assert plan.faults
            assert plan.end_s < 30.0

    def test_unknown_plan_and_empty_cluster(self):
        with pytest.raises(ValidationError, match="unknown chaos plan"):
            named_plan("nope", ["vm-0"])
        with pytest.raises(ValidationError, match="at least one"):
            named_plan("node-crash", [])


class TestChaosInjection:
    def run_incident(self, platform, plan, rounds=60, interval=0.075):
        """Drive both classes round-robin while ``plan`` plays out."""
        ledgers = [
            platform.new_object("Ledger", object_id=f"acct-{i}") for i in range(4)
        ]
        pads = [
            platform.new_object("Scratch", object_id=f"pad-{i}") for i in range(4)
        ]
        injector = platform.inject_chaos(plan)
        committed = {obj: 0 for obj in ledgers}
        for round_no in range(rounds):
            obj = ledgers[round_no % 4]
            if platform.invoke(obj, "add", {"amount": 1}, raise_on_error=False).ok:
                committed[obj] += 1
            platform.invoke(pads[round_no % 4], "bump", raise_on_error=False)
            platform.advance(interval)
        platform.advance(max(0.0, plan.end_s - platform.now) + 0.5)
        return injector, ledgers, committed

    def test_crash_and_partition_split_by_replication(self):
        platform = make_platform()
        plan = FaultPlan(
            "incident",
            (
                NodeCrash(at=1.0, duration_s=4.0, node="vm-1"),
                Partition(at=2.0, duration_s=3.0, nodes=("vm-2",)),
            ),
        )
        injector, ledgers, committed = self.run_incident(platform, plan)
        availability = injector.fault_availability()
        # The replicated persistent class rides the incident out...
        assert availability["Ledger"] is not None
        assert availability["Ledger"] >= 0.999
        # ...the single-copy ephemeral class demonstrably does not.
        assert availability["Scratch"] is not None
        assert availability["Scratch"] < 0.999
        # No committed state was lost, through crash, partition, rejoin.
        for obj, expected in committed.items():
            assert platform.get_object(obj)["state"]["balance"] == expected
        # The crashed node is back and serving DHT ownership.
        assert "vm-1" in platform.cluster.node_names
        assert "vm-1" in platform.crm.runtime("Ledger").dht.nodes

    def test_windows_and_events_recorded(self):
        platform = make_platform()
        plan = FaultPlan(
            "windows",
            (
                NodeCrash(at=1.0, duration_s=2.0, node="vm-1"),
                Partition(at=4.0, duration_s=1.0, nodes=("vm-2",)),
            ),
        )
        injector, _, _ = self.run_incident(platform, plan, rounds=20, interval=0.3)
        assert injector.injected == 2 and injector.recovered == 2
        # Disjoint faults open disjoint windows.
        assert len(injector.windows) == 2
        assert all(not w.open for w in injector.windows)
        assert injector.fault_time_s() == pytest.approx(3.0)
        inject_events = platform.platform_events("chaos.inject")
        recover_events = platform.platform_events("chaos.recover")
        assert [e.fields["kind"] for e in inject_events] == ["NodeCrash", "Partition"]
        assert len(recover_events) == 2
        assert all(e.fields["plan"] == "windows" for e in inject_events)

    def test_storage_faults_delay_but_never_lose_commits(self):
        platform = make_platform()
        plan = FaultPlan(
            "lossy-db", (StorageFaults(at=0.5, duration_s=3.0, error_rate=1.0),)
        )
        injector, ledgers, committed = self.run_incident(
            platform, plan, rounds=40, interval=0.1
        )
        assert platform.store.faulted_writes > 0
        stats = platform.crm.runtime("Ledger").dht.write_behind_stats
        assert stats["flush_failures"] > 0
        # Invocations kept succeeding: the write-behind tier absorbs the
        # fault window and retries with capped backoff.
        availability = injector.fault_availability()
        assert availability["Ledger"] == 1.0
        # After the window, everything committed reaches the store.
        platform.flush()
        collection = platform.crm.runtime("Ledger").dht.collection
        for obj, expected in committed.items():
            doc = platform.store.get_sync(collection, obj)
            assert doc is not None and doc["state"]["balance"] == expected

    def test_cold_start_storm_evicts_and_recovers(self):
        platform = make_platform()
        obj = platform.new_object("Ledger", object_id="acct-0")
        platform.invoke(obj, "add", {"amount": 1})
        svc = platform.crm.runtime("Ledger").services["add"]
        assert svc.ready_replicas > 0
        injector = platform.inject_chaos(
            FaultPlan("storm", (ColdStartStorm(at=0.5, classes=("Ledger",)),))
        )
        platform.advance(1.0)
        result = platform.invoke(obj, "add", {"amount": 1}, raise_on_error=False)
        assert result.ok  # survives the storm, at cold-start latency
        assert injector.injected == 1
        assert not injector.windows  # instantaneous: no availability window

    def test_slow_pods_scoped_to_one_class(self):
        platform = make_platform()
        ledger = platform.new_object("Ledger", object_id="acct-0")
        pad = platform.new_object("Scratch", object_id="pad-0")
        platform.inject_chaos(
            FaultPlan(
                "molasses", (SlowPods(at=0.1, duration_s=20.0, factor=200.0, cls="Ledger"),)
            )
        )
        platform.advance(0.2)
        slow = platform.invoke(ledger, "add", {"amount": 1})
        fast = platform.invoke(pad, "bump")
        # Only the targeted class pays the slowdown.
        assert slow.latency_s > 0.2
        assert fast.latency_s < 0.2

    def test_network_delay_inflates_remote_latency(self):
        platform = make_platform()
        obj = platform.new_object("Ledger", object_id="acct-0")
        platform.invoke(obj, "add", {"amount": 1})  # warm up (cold start)
        baseline = platform.invoke(obj, "add", {"amount": 1}).latency_s
        platform.inject_chaos(
            FaultPlan("lag", (NetworkDelay(at=0.1, duration_s=30.0, extra_s=0.05),))
        )
        platform.advance(0.2)
        laggy = platform.invoke(obj, "add", {"amount": 1}).latency_s
        assert laggy > baseline + 0.05

    def test_injector_start_is_idempotent(self):
        platform = make_platform()
        injector = ChaosInjector(
            platform, FaultPlan("noop", (ColdStartStorm(at=0.1),))
        )
        assert injector.start() is injector.start()

    def test_nfr_report_gains_under_fault_rows(self):
        platform = make_platform()
        plan = FaultPlan(
            "incident", (NodeCrash(at=1.0, duration_s=4.0, node="vm-1"),)
        )
        self.run_incident(platform, plan, rounds=40)
        rows = {
            (v.cls, v.requirement): v for v in platform.nfr_report()
        }
        assert ("Ledger", "availability_under_fault") in rows
        assert rows[("Ledger", "availability_under_fault")].met
        under = rows[("Scratch", "availability_under_fault")]
        assert not under.met
        assert "fault windows" in under.detail
        report = platform.observability_report()
        assert report["chaos"]["injected"] == 1


class TestDeterminism:
    """Same seed + same plan = byte-identical observable behaviour."""

    def run_scenario(self, seed: int):
        platform = make_platform(seed=seed, tracing=True)
        plan = FaultPlan(
            "det",
            (
                NodeCrash(at=1.0, duration_s=3.0, node="vm-1"),
                StorageFaults(at=1.5, duration_s=2.0, error_rate=0.5),
                Partition(at=2.0, duration_s=2.0, nodes=("vm-2",)),
            ),
        )
        ledgers = [
            platform.new_object("Ledger", object_id=f"acct-{i}") for i in range(4)
        ]
        pads = [
            platform.new_object("Scratch", object_id=f"pad-{i}") for i in range(4)
        ]
        injector = platform.inject_chaos(plan)
        for round_no in range(40):
            platform.invoke(
                ledgers[round_no % 4], "add", {"amount": 1}, raise_on_error=False
            )
            platform.invoke(pads[round_no % 4], "bump", raise_on_error=False)
            platform.advance(0.1)
        platform.advance(max(0.0, plan.end_s - platform.now) + 0.5)
        platform.shutdown()
        events_text = platform.events.render()
        span_summary = sorted(
            Counter(span.name for span in platform.tracer.spans()).items()
        )
        balances = {
            obj: platform.get_object(obj)["state"]["balance"] for obj in ledgers
        }
        return events_text, span_summary, injector.summary(), balances

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_replay_is_byte_identical(self, seed):
        first = self.run_scenario(seed)
        second = self.run_scenario(seed)
        assert first[0] == second[0]  # event log, byte for byte
        assert first[1] == second[1]  # span-name summary
        assert first[2] == second[2]  # chaos summary incl. availability
        assert first[3] == second[3]  # committed state

    def test_different_seeds_still_complete(self):
        # Sanity: the scenario is seed-sensitive but always terminates
        # with a fully recovered plan.
        _, _, summary, _ = self.run_scenario(11)
        assert summary["injected"] == 3
        assert summary["recovered"] == 3


class TestHashRingFailoverProperties:
    """Property-style checks over random crash/rejoin sequences."""

    KEYS = [f"key-{i}" for i in range(200)]
    REPLICATION = 2

    def owner_sets(self, ring: HashRing) -> dict[str, tuple[str, ...]]:
        return {
            key: tuple(ring.owners(key, self.REPLICATION)) for key in self.KEYS
        }

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_owner_count_and_minimal_movement(self, seed):
        rng = random.Random(seed)
        ring = HashRing(["n0", "n1", "n2", "n3"])
        pool = [f"n{i}" for i in range(8)]
        for step in range(30):
            before = self.owner_sets(ring)
            live = set(ring.nodes)
            candidates_to_add = [n for n in pool if n not in live]
            crash = len(live) > 2 and (not candidates_to_add or rng.random() < 0.5)
            if crash:
                affected = rng.choice(sorted(live))
                ring.remove_node(affected)
            else:
                affected = rng.choice(candidates_to_add)
                ring.add_node(affected)
            after = self.owner_sets(ring)
            expected_owners = min(self.REPLICATION, len(ring))
            for key in self.KEYS:
                owners = after[key]
                # Exactly `replication` live owners (fewer only when the
                # cluster itself is smaller), all distinct, all live.
                assert len(owners) == expected_owners
                assert len(set(owners)) == len(owners)
                assert all(node in ring for node in owners)
                # Minimal movement: keys whose owner set did not involve
                # the affected node keep exactly the same owners.
                if affected not in before[key] and affected not in owners:
                    assert owners == before[key]

    @pytest.mark.parametrize("seed", [0, 1])
    def test_crash_rejoin_roundtrip_restores_ownership(self, seed):
        rng = random.Random(seed)
        ring = HashRing(["n0", "n1", "n2", "n3"])
        before = self.owner_sets(ring)
        victim = rng.choice(sorted(ring.nodes))
        ring.remove_node(victim)
        ring.add_node(victim)
        assert self.owner_sets(ring) == before

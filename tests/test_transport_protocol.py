"""Unit tests for the scheduler/worker wire protocol and the
transport-neutral dispatch core both transports drive."""

from __future__ import annotations

import pytest

from repro.errors import TransportError, ValidationError
from repro.invoker.request import InvocationRequest, InvocationResult
from repro.scheduler.state import WorkerState, WorkerStateMachine
from repro.scheduler.transport import (
    Complete,
    Dispatch,
    DispatchCore,
    DrainCmd,
    Drained,
    Executing,
    FrameDecoder,
    Heartbeat,
    Install,
    InstallAck,
    Ready,
    Register,
    RegisterAck,
    decode_message,
    encode_frame,
    rendezvous_score,
)
from repro.scheduler.transport.protocol import MAX_FRAME_BYTES, _LENGTH

ALL_MESSAGES = [
    Register(worker="w-0", node="node-1"),
    RegisterAck(worker="w-0", epoch=3, classes=("Ledger", "Image")),
    RegisterAck(worker="w-0", epoch=-1, error="already registered"),
    Ready(worker="w-0", epoch=3),
    Heartbeat(worker="w-0", epoch=3),
    Install(cls="Ledger"),
    InstallAck(worker="w-0", epoch=3, cls="Ledger"),
    Dispatch(
        request_id="req-1",
        object_id="Ledger~a",
        fn_name="add",
        epoch=3,
        seq=7,
        cls="Ledger",
        payload={"n": 1},
    ),
    Executing(worker="w-0", epoch=3, request_id="req-1"),
    Complete(worker="w-0", epoch=3, request_id="req-1", ok=True, output={"n": 2}),
    Complete(
        worker="w-0",
        epoch=3,
        request_id="req-2",
        ok=False,
        error="boom",
        error_type="FunctionExecutionError",
    ),
    DrainCmd(),
    Drained(worker="w-0", epoch=3),
]


class TestCodec:
    @pytest.mark.parametrize("message", ALL_MESSAGES, ids=lambda m: m.TYPE)
    def test_round_trip(self, message):
        decoder = FrameDecoder()
        (decoded,) = list(decoder.feed(encode_frame(message)))
        assert decoded == message
        assert decoder.pending_bytes == 0

    def test_byte_at_a_time_chunking(self):
        frame = encode_frame(Heartbeat(worker="w-0", epoch=1))
        decoder = FrameDecoder()
        out = []
        for i in range(len(frame)):
            out.extend(decoder.feed(frame[i : i + 1]))
        assert out == [Heartbeat(worker="w-0", epoch=1)]

    def test_many_frames_in_one_feed(self):
        frames = b"".join(encode_frame(m) for m in ALL_MESSAGES)
        decoder = FrameDecoder()
        assert list(decoder.feed(frames)) == ALL_MESSAGES

    def test_partial_frame_is_buffered(self):
        frame = encode_frame(Register(worker="w-0"))
        decoder = FrameDecoder()
        assert list(decoder.feed(frame[:5])) == []
        assert decoder.pending_bytes == 5
        assert list(decoder.feed(frame[5:])) == [Register(worker="w-0")]

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError):
            decode_message({"type": "teleport"})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValidationError, match="epoch"):
            decode_message({"type": "ready", "worker": "w-0"})

    def test_classes_decode_to_tuple(self):
        message = decode_message(
            {"type": "register_ack", "worker": "w", "epoch": 1, "classes": ["A"]}
        )
        assert message.classes == ("A",)

    def test_oversized_announced_frame_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(TransportError):
            list(decoder.feed(_LENGTH.pack(MAX_FRAME_BYTES + 1)))

    def test_undecodable_payload_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(TransportError):
            list(decoder.feed(_LENGTH.pack(4) + b"\xff\xfe\x00\x01"))

    def test_unknown_wire_fields_ignored(self):
        wire = Heartbeat(worker="w-0", epoch=2).to_wire()
        wire["future_extension"] = {"x": 1}
        assert decode_message(wire) == Heartbeat(worker="w-0", epoch=2)


class FakePort:
    """A minimal WorkerPort for driving DispatchCore directly."""

    def __init__(self, name: str, *, ready: bool = True):
        self.name = name
        self.epoch = 1
        self.installed: set[str] = set()
        self.machine = WorkerStateMachine()
        self.pushed = []
        if ready:
            self.machine.transition(WorkerState.READY, 0.0, "test")

    def push(self, item):
        self.pushed.append(item)

    def take_queue(self):
        items = list(self.pushed)
        self.pushed.clear()
        return items


def _result(request: InvocationRequest, ok: bool = True) -> InvocationResult:
    return InvocationResult(
        request_id=request.request_id,
        cls=request.cls or "",
        object_id=request.object_id,
        fn_name=request.fn_name,
        ok=ok,
    )


def make_core():
    events = []
    core = DispatchCore(
        clock=lambda: 0.0,
        emit=lambda type, **fields: events.append((type, fields)),
    )
    return core, events


class TestDispatchCore:
    def test_routes_to_installed_ready_worker(self):
        core, events = make_core()
        core.note_class("Ledger")
        ready = FakePort("w-0")
        ready.installed.add("Ledger")
        bare = FakePort("w-1")  # READY but never installed the class
        core.add_worker(ready)
        core.add_worker(bare)
        request = InvocationRequest(object_id="Ledger~a", fn_name="add", cls="Ledger")
        core.submit(request)
        assert [i.request for i in ready.pushed] == [request]
        assert bare.pushed == []
        assert events[0][0] == "scheduler.dispatch"

    def test_unknown_class_parks_then_flushes(self):
        core, _ = make_core()
        worker = FakePort("w-0")
        core.add_worker(worker)
        request = InvocationRequest(object_id="Late~a", fn_name="add", cls="Late")
        core.submit(request)
        assert core.parked == 1 and worker.pushed == []
        core.note_class("Late")
        worker.installed.add("Late")
        core.flush_unassigned()
        assert core.parked == 0
        assert [i.request for i in worker.pushed] == [request]

    def test_rendezvous_affinity_is_stable(self):
        core, _ = make_core()
        core.note_class("C")
        workers = [FakePort(f"w-{i}") for i in range(4)]
        for worker in workers:
            worker.installed.add("C")
            core.add_worker(worker)
        request = InvocationRequest(object_id="C~obj", fn_name="f", cls="C")
        picks = {core.pick(request).name for _ in range(10)}
        assert len(picks) == 1
        expected = max(
            workers, key=lambda w: rendezvous_score("C~obj", w.name)
        ).name
        assert picks == {expected}

    def test_reroute_respects_requeue_guard(self):
        core, _ = make_core()
        core.note_class("C")
        first, second = FakePort("w-0"), FakePort("w-1")
        first.installed.add("C")
        second.installed.add("C")
        core.add_worker(first)
        core.add_worker(second)
        request = InvocationRequest(object_id="C~a", fn_name="f", cls="C")
        core.submit(request)
        owner = first if first.pushed else second
        other = second if owner is first else first
        (item,) = owner.take_queue()
        # Completed entries must not be rerouted.
        core.complete(owner.name, request, _result(request))
        assert core.reroute(owner.name, [item]) == 0
        assert other.pushed == []

    def test_first_completion_wins_and_duplicate_suppressed(self):
        core, events = make_core()
        core.note_class("C")
        worker = FakePort("w-0")
        worker.installed.add("C")
        core.add_worker(worker)
        seen = []
        core.on_complete = lambda request, result: seen.append(request.request_id)
        request = InvocationRequest(object_id="C~a", fn_name="f", cls="C")
        core.submit(request)
        assert core.complete("w-0", request, _result(request)) is True
        assert core.complete("w-0", request, _result(request)) is False
        assert seen == [request.request_id]
        assert core.delivered == 1
        types = [t for t, _ in events]
        assert types.count("scheduler.complete") == 1
        assert types.count("scheduler.suppressed") == 1
        assert core.ledger.audit()["suppressed"] == 1

    def test_stop_report_shape(self):
        core, _ = make_core()
        request = InvocationRequest(object_id="Ghost~a", fn_name="f", cls="Ghost")
        core.submit(request)
        assert core.stop_report() == {"pending": 1, "parked": 1}

"""Tests for the ocli command-line interface."""

import pytest

from repro.platform.cli import main

from tests.conftest import LISTING1_YAML


@pytest.fixture
def pkg_file(tmp_path):
    path = tmp_path / "pkg.yml"
    path.write_text(LISTING1_YAML)
    return str(path)


class TestValidate:
    def test_valid_package(self, pkg_file, capsys):
        assert main(["validate", pkg_file]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "LabelledImage" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "ghost.yml")]) == 1
        assert "error" in capsys.readouterr().err

    def test_broken_package(self, tmp_path, capsys):
        path = tmp_path / "bad.yml"
        path.write_text("classes:\n  - name: A\n    parent: Missing\n")
        assert main(["validate", str(path)]) == 1


class TestShow:
    def test_show_all(self, pkg_file, capsys):
        assert main(["show", pkg_file]) == 0
        out = capsys.readouterr().out
        assert "class Image" in out
        assert "ancestry: LabelledImage -> Image" in out

    def test_show_single_class(self, pkg_file, capsys):
        assert main(["show", pkg_file, "--cls", "Image"]) == 0
        out = capsys.readouterr().out
        assert "class Image" in out
        assert "class LabelledImage" not in out

    def test_show_unknown_class(self, pkg_file, capsys):
        assert main(["show", pkg_file, "--cls", "Ghost"]) == 1


class TestTemplates:
    def test_lists_catalog(self, capsys):
        assert main(["templates"]) == 0
        out = capsys.readouterr().out
        for name in ("default", "low-latency", "in-memory-ephemeral"):
            assert name in out


class TestRun:
    def test_run_with_auto_handlers(self, pkg_file, capsys):
        code = main(
            [
                "run",
                pkg_file,
                "--auto-handlers",
                "--new",
                "Image",
                "--invoke",
                'resize:{"width": 10}',
                "--invoke",
                "changeFormat",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "created Image~" in out
        assert "invoke resize: ok" in out
        assert "invoke changeFormat: ok" in out

    def test_run_requires_handlers(self, pkg_file, capsys):
        assert main(["run", pkg_file, "--new", "Image"]) == 2
        assert "handlers" in capsys.readouterr().err

    def test_run_reports_failures(self, pkg_file, capsys):
        code = main(
            ["run", pkg_file, "--auto-handlers", "--new", "Image", "--invoke", "ghost"]
        )
        assert code == 0
        assert "FAILED" in capsys.readouterr().out

    def test_run_with_handlers_module(self, pkg_file, tmp_path, capsys, monkeypatch):
        module = tmp_path / "my_handlers.py"
        module.write_text(
            "def register(platform):\n"
            "    for image in ('img/resize', 'img/change-format', 'img/detect-object'):\n"
            "        platform.register_image(image, lambda ctx: {'ok': True})\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        code = main(
            ["run", pkg_file, "--handlers", "my_handlers:register", "--new", "Image"]
        )
        assert code == 0

    def test_run_bad_handlers_spec(self, pkg_file, capsys):
        assert main(["run", pkg_file, "--handlers", "nocolon", "--new", "Image"]) == 2


WORKLOAD = ["--auto-handlers", "--new", "Image", "--invoke", 'resize:{"width": 4}']


class TestTrace:
    def test_prints_span_tree(self, pkg_file, capsys):
        assert main(["trace", pkg_file, *WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "trace req-" in out
        for name in ("gateway POST", "invoke resize", "route", "faas.execute"):
            assert name in out

    def test_chrome_export_to_stdout(self, pkg_file, capsys):
        import json

        assert main(["trace", pkg_file, *WORKLOAD, "--chrome", "-"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traceEvents"]

    def test_chrome_export_to_file(self, pkg_file, tmp_path, capsys):
        import json

        out_file = tmp_path / "trace.json"
        assert main(["trace", pkg_file, *WORKLOAD, "--chrome", str(out_file)]) == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        doc = json.loads(out_file.read_text())
        assert any(e["name"].startswith("gateway ") for e in doc["traceEvents"])


class TestEvents:
    def test_prints_control_plane_events(self, pkg_file, capsys):
        assert main(["events", pkg_file, *WORKLOAD]) == 0
        out = capsys.readouterr().out
        for event_type in ("scheduler.place", "pod.ready", "class.deploy"):
            assert event_type in out
        assert "event(s):" in out

    def test_type_filter(self, pkg_file, capsys):
        assert main(["events", pkg_file, *WORKLOAD, "--type", "scheduler.place"]) == 0
        out = capsys.readouterr().out
        assert "scheduler.place" in out
        assert "class.deploy" not in out


class TestReport:
    def test_text_report(self, pkg_file, capsys):
        assert main(["report", pkg_file, *WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "NFR compliance" in out
        assert "Image" in out
        assert "met" in out

    def test_json_report(self, pkg_file, capsys):
        import json

        assert main(["report", pkg_file, *WORKLOAD, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "spans" in doc
        assert "nfr" in doc

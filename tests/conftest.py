"""Shared fixtures and suite-wide pytest hooks.

The platform builders live in :mod:`tests.helpers`; this module wires
them into fixtures and re-exports the names older modules import from
``tests.conftest``.

Suite options:

* ``--chaos`` — run the heavier chaos-marked conformance variants
  (skipped by default to keep the tier-1 wall clock tight).
* ``--asyncio-transport`` — run the conformance scenarios over the real
  asyncio TCP transport (wall-clock timing, so slower than the sim).
* ``--shuffle`` / ``--shuffle-seed N`` — run the collected tests in a
  seeded random order.  CI runs a shuffled pass so hidden test-order
  coupling (module-level shared state leaking between tests) fails
  loudly instead of lurking.
"""

from __future__ import annotations

import random

import pytest

from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.sim.kernel import Environment

from tests.helpers import (  # noqa: F401  (re-exported for older imports)
    LISTING1_YAML,
    listing1_platform,
    make_platform,
    register_image_handlers,
    seeded_baseline_run,
)

# -- suite options -----------------------------------------------------------


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--chaos",
        action="store_true",
        default=False,
        help="run the heavier chaos-marked conformance variants",
    )
    parser.addoption(
        "--asyncio-transport",
        action="store_true",
        default=False,
        help="run conformance scenarios over the real asyncio transport",
    )
    parser.addoption(
        "--shuffle",
        action="store_true",
        default=False,
        help="run tests in a seeded random order to expose order coupling",
    )
    parser.addoption(
        "--shuffle-seed",
        type=int,
        default=0,
        help="seed for --shuffle (default 0)",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if not config.getoption("--chaos"):
        skip_chaos = pytest.mark.skip(reason="needs --chaos")
        for item in items:
            if "chaos" in item.keywords:
                item.add_marker(skip_chaos)
    if not config.getoption("--asyncio-transport"):
        skip_aio = pytest.mark.skip(reason="needs --asyncio-transport")
        for item in items:
            if "asyncio_transport" in item.keywords:
                item.add_marker(skip_aio)
    if config.getoption("--shuffle"):
        random.Random(config.getoption("--shuffle-seed")).shuffle(items)


# -- fixtures ----------------------------------------------------------------


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def platform() -> Oparaca:
    """A 3-node platform with Listing 1 deployed."""
    return listing1_platform()


@pytest.fixture
def bare_platform() -> Oparaca:
    """A 3-node platform with nothing deployed."""
    return Oparaca(PlatformConfig(nodes=3))

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.sim.kernel import Environment

#: The paper's Listing 1, extended with structured keys and a macro so
#: every feature has coverage.
LISTING1_YAML = """
name: image-app
classes:
  - name: Image
    qos:
      throughput: 100
    constraint:
      persistent: true
    keySpecs:
      - name: image
        type: FILE
      - name: width
        type: INT
        default: 1024
      - name: format
        type: STR
        default: png
    functions:
      - name: resize
        image: img/resize
      - name: changeFormat
        image: img/change-format
      - name: thumbnail
        type: MACRO
        dataflow:
          steps:
            - id: r
              function: resize
              args: { width: "${input.width}" }
            - id: f
              function: changeFormat
              inputs: [r]
              args: { format: webp }
          output: f
  - name: LabelledImage
    parent: Image
    keySpecs:
      - name: labels
        type: JSON
        default: []
    functions:
      - name: detectObject
        image: img/detect-object
"""


@pytest.fixture
def env() -> Environment:
    return Environment()


def register_image_handlers(platform: Oparaca) -> None:
    """The handlers backing LISTING1_YAML."""

    @platform.function("img/resize", service_time_s=0.004)
    def resize(ctx):
        ctx.state["width"] = int(ctx.payload["width"])
        return {"width": ctx.state["width"]}

    @platform.function("img/change-format", service_time_s=0.002)
    def change_format(ctx):
        ctx.state["format"] = str(ctx.payload["format"])
        return {"format": ctx.state["format"]}

    @platform.function("img/detect-object", service_time_s=0.02)
    def detect(ctx):
        labels = ["cat"] if ctx.state.get("width", 0) < 512 else ["cat", "laptop"]
        ctx.state["labels"] = labels
        return {"labels": labels}


@pytest.fixture
def platform() -> Oparaca:
    """A 3-node platform with Listing 1 deployed."""
    instance = Oparaca(PlatformConfig(nodes=3))
    register_image_handlers(instance)
    instance.deploy(LISTING1_YAML)
    return instance


@pytest.fixture
def bare_platform() -> Oparaca:
    """A 3-node platform with nothing deployed."""
    return Oparaca(PlatformConfig(nodes=3))

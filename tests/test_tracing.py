"""Tests for invocation tracing, the event log, and their exporters."""

import json

import pytest

from repro.monitoring.events import EventLog
from repro.monitoring.export import (
    chrome_trace_json,
    format_summary,
    span_breakdown,
    summary_report,
    to_chrome_trace,
)
from repro.monitoring.nfr_report import (
    format_nfr_report,
    nfr_compliance_report,
)
from repro.monitoring.tracing import Tracer
from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.sim.kernel import Environment

from tests.conftest import LISTING1_YAML, register_image_handlers


@pytest.fixture
def traced_platform():
    platform = Oparaca(PlatformConfig(nodes=3, tracing_enabled=True))
    register_image_handlers(platform)
    platform.deploy(LISTING1_YAML)
    return platform


@pytest.fixture
def observed_platform():
    """Tracing AND the event log on — the full observability surface."""
    platform = Oparaca(
        PlatformConfig(nodes=3, tracing_enabled=True, events_enabled=True)
    )
    register_image_handlers(platform)
    platform.deploy(LISTING1_YAML)
    return platform


class TestTracerUnit:
    def test_disabled_records_nothing(self):
        tracer = Tracer(Environment(), enabled=False)
        assert tracer.start("t", "x") is None
        tracer.finish(None)  # must be a no-op
        assert len(tracer) == 0

    def test_span_timing(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        span = tracer.start("t", "op")
        env.run(until=2.5)
        tracer.finish(span, ok=True)
        assert span.duration_s == 2.5
        assert span.attrs["ok"] is True

    def test_parent_by_span_and_id(self):
        tracer = Tracer(Environment(), enabled=True)
        parent = tracer.start("t", "parent")
        by_span = tracer.start("t", "a", parent=parent)
        by_id = tracer.start("t", "b", parent=parent.span_id)
        assert by_span.parent_id == parent.span_id
        assert by_id.parent_id == parent.span_id

    def test_capacity_bounded(self):
        tracer = Tracer(Environment(), enabled=True, capacity=10)
        for i in range(50):
            tracer.start("t", f"s{i}")
        assert len(tracer) == 10

    def test_engine_respects_injected_empty_tracer(self):
        """Regression: an empty Tracer is falsy (__len__); the engine
        must keep the injected instance anyway."""
        platform = Oparaca(PlatformConfig(nodes=2, tracing_enabled=True))
        assert platform.engine.tracer is platform.tracer


class TestInvocationTraces:
    def test_task_invocation_spans(self, traced_platform):
        platform = traced_platform
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "resize", {"width": 10})
        spans = platform.tracer.trace(result.request_id)
        names = [s.name for s in spans]
        assert names[0] == "invoke resize"
        assert "state.load" in names
        assert any(n.startswith("task.offload") for n in names)
        assert "state.commit" in names
        assert all(s.end is not None for s in spans)

    def test_macro_trace_spans_sub_invocations(self, traced_platform):
        platform = traced_platform
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "thumbnail", {"width": 10})
        spans = platform.tracer.trace(result.request_id)
        names = [s.name for s in spans]
        # One trace covers the macro and both step invocations.
        assert "invoke thumbnail" in names
        assert "step r" in names and "step f" in names
        assert "invoke resize" in names and "invoke changeFormat" in names

    def test_step_spans_parented_to_macro(self, traced_platform):
        platform = traced_platform
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "thumbnail", {"width": 10})
        spans = platform.tracer.trace(result.request_id)
        by_name = {s.name: s for s in spans}
        macro = by_name["invoke thumbnail"]
        assert by_name["step r"].parent_id == macro.span_id
        sub = by_name["invoke resize"]
        assert sub.parent_id == by_name["step r"].span_id

    def test_immutable_invocation_has_no_commit_span(self, traced_platform):
        platform = traced_platform
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "get")
        names = [s.name for s in platform.tracer.trace(result.request_id)]
        assert "state.commit" not in names

    def test_render_tree(self, traced_platform):
        platform = traced_platform
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "resize", {"width": 5})
        text = platform.tracer.render(result.request_id)
        assert "invoke resize" in text
        assert "ms" in text

    def test_render_unknown_trace(self, traced_platform):
        assert "no spans" in traced_platform.tracer.render("ghost")

    def test_tracing_off_by_default(self, platform):
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "resize", {"width": 5})
        assert len(platform.tracer.trace(result.request_id)) == 0

    def test_orphaned_span_renders_as_root(self):
        """A span whose parent fell out of the bounded buffer must still
        render (as a root) instead of silently disappearing."""
        tracer = Tracer(Environment(), enabled=True)
        child = tracer.start("t", "orphan", parent=9999)
        tracer.finish(child)
        text = tracer.render("t")
        assert "orphan" in text

    def test_render_all_traces(self):
        tracer = Tracer(Environment(), enabled=True)
        tracer.finish(tracer.start("a", "one"))
        tracer.finish(tracer.start("b", "two"))
        text = tracer.render()
        assert "trace a" in text and "trace b" in text
        assert "(no spans recorded)" == Tracer(Environment(), enabled=True).render()


class TestGatewayTrace:
    """Acceptance: one HTTP invocation yields the full platform tree."""

    def test_http_invocation_full_span_tree(self, observed_platform):
        platform = observed_platform
        obj = platform.new_object("Image")
        resp = platform.http(
            "POST", f"/api/objects/{obj}/invokes/resize", {"width": 64}
        )
        assert resp.ok
        # The gateway span roots the invocation's trace.
        gateway_spans = [
            s for s in platform.tracer.spans() if s.name.startswith("gateway ")
        ]
        assert len(gateway_spans) == 1
        spans = platform.tracer.trace(gateway_spans[0].trace_id)
        by_name = {s.name.split(" ", 1)[0]: s for s in spans}
        for phase in (
            "gateway",
            "invoke",
            "route",
            "state.load",
            "task.offload",
            "faas.queue",
            "faas.execute",
            "state.commit",
        ):
            assert phase in by_name, f"missing {phase} span in {sorted(by_name)}"
        gateway = by_name["gateway"]
        assert gateway.parent_id is None
        assert by_name["invoke"].parent_id == gateway.span_id
        invoke = by_name["invoke"]
        assert by_name["route"].parent_id == invoke.span_id
        assert by_name["state.load"].parent_id == invoke.span_id
        assert by_name["task.offload"].parent_id == invoke.span_id
        offload = by_name["task.offload"]
        assert by_name["faas.queue"].parent_id == offload.span_id
        assert by_name["faas.execute"].parent_id == offload.span_id
        assert by_name["state.load"].attrs.get("hit") is True
        assert all(s.end is not None for s in spans)

    def test_cold_start_span_attributed_to_request_trace(self, observed_platform):
        platform = observed_platform
        obj = platform.new_object("Image")
        platform.http("POST", f"/api/objects/{obj}/invokes/resize", {"width": 8})
        cold = platform.tracer.spans_named("faas.cold_start")
        assert cold, "scale-from-zero request should record a cold-start span"
        gateway = [
            s for s in platform.tracer.spans() if s.name.startswith("gateway ")
        ][0]
        assert cold[0].trace_id == gateway.trace_id
        assert len(cold) == len(platform.events.of_type("faas.cold_start"))

    def test_write_behind_flush_spans(self, observed_platform):
        platform = observed_platform
        obj = platform.new_object("Image")
        platform.invoke(obj, "resize", {"width": 32})
        platform.flush()
        flushes = platform.tracer.spans_named("wb.flush")
        assert flushes
        assert all(s.trace_id == "write-behind" for s in flushes)
        assert all(s.attrs.get("docs", 0) >= 1 for s in flushes)


class TestChromeExport:
    def test_export_is_valid_trace_event_json(self, observed_platform):
        platform = observed_platform
        obj = platform.new_object("Image")
        platform.http("POST", f"/api/objects/{obj}/invokes/resize", {"width": 64})
        doc = json.loads(platform.export_chrome_trace())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert {"name", "cat", "pid", "tid", "args"} <= set(event)
            assert "trace_id" in event["args"] and "span_id" in event["args"]
        names = {e["name"].split(" ", 1)[0] for e in events}
        assert {"gateway", "invoke", "faas.execute"} <= names

    def test_export_single_trace_and_file(self, observed_platform, tmp_path):
        platform = observed_platform
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "resize", {"width": 4})
        path = tmp_path / "trace.json"
        text = platform.export_chrome_trace(trace_id=result.request_id, path=path)
        doc = json.loads(path.read_text())
        assert doc == json.loads(text)
        assert {e["args"]["trace_id"] for e in doc["traceEvents"]} == {
            result.request_id
        }

    def test_traces_get_distinct_lanes(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        tracer.finish(tracer.start("a", "x"))
        tracer.finish(tracer.start("b", "y"))
        doc = to_chrome_trace(tracer.spans())
        tids = {e["tid"] for e in doc["traceEvents"]}
        assert len(tids) == 2

    def test_unfinished_span_exports_zero_duration(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        tracer.start("a", "open-span")
        doc = json.loads(chrome_trace_json(tracer))
        assert doc["traceEvents"][0]["dur"] == 0


class TestEventLogUnit:
    def test_disabled_records_nothing(self):
        log = EventLog(Environment(), enabled=False)
        assert log.record("x", a=1) is None
        assert len(log) == 0

    def test_record_and_query(self):
        env = Environment()
        log = EventLog(env, enabled=True)
        log.record("pod.bind", pod="p1", node="vm-0")
        env.run(until=2.0)
        log.record("pod.ready", pod="p1", node="vm-0")
        assert len(log) == 2
        assert [e.type for e in log.events()] == ["pod.bind", "pod.ready"]
        assert log.of_type("pod.ready")[0].at == 2.0
        assert log.type_counts() == {"pod.bind": 1, "pod.ready": 1}
        assert log.events()[0].to_dict()["pod"] == "p1"

    def test_capacity_bounded_with_drop_count(self):
        log = EventLog(Environment(), enabled=True, capacity=5)
        for i in range(12):
            log.record("tick", i=i)
        assert len(log) == 5
        assert log.dropped == 7
        assert [e.fields["i"] for e in log.events()] == [7, 8, 9, 10, 11]

    def test_render(self):
        log = EventLog(Environment(), enabled=True)
        log.record("scheduler.place", pod="p", node="vm-1")
        text = log.render()
        assert "scheduler.place" in text and "node=vm-1" in text
        assert "(no events" in log.render(type="ghost")


class TestPlatformEvents:
    def test_deploy_emits_control_plane_events(self, observed_platform):
        platform = observed_platform
        counts = platform.events.type_counts()
        assert counts.get("template.select", 0) >= 2  # Image + LabelledImage
        assert counts.get("class.deploy", 0) >= 2
        assert counts.get("scheduler.place", 0) >= 1
        assert counts.get("pod.bind", 0) >= 1

    def test_cold_start_and_pod_ready_events(self, observed_platform):
        platform = observed_platform
        obj = platform.new_object("Image")
        platform.invoke(obj, "resize", {"width": 2})
        assert platform.events.of_type("faas.cold_start")
        ready = platform.events.of_type("pod.ready")
        assert ready and all(e.fields["startup_s"] >= 0 for e in ready)

    def test_knative_autoscale_event_on_scale_down(self, observed_platform):
        platform = observed_platform
        obj = platform.new_object("Image")
        platform.invoke(obj, "resize", {"width": 2})
        # Idle past the scale-to-zero grace; the autoscaler must record
        # its decision when replicas actually change.
        platform.advance(120.0)
        assert platform.events.of_type("autoscale.knative")

    def test_events_off_by_default(self, platform):
        obj = platform.new_object("Image")
        platform.invoke(obj, "resize", {"width": 2})
        assert len(platform.events) == 0
        assert platform.platform_events() == []


class TestSummaryReport:
    def test_report_covers_all_sources(self, observed_platform):
        platform = observed_platform
        obj = platform.new_object("Image")
        platform.invoke(obj, "resize", {"width": 2})
        report = platform.observability_report()
        assert report["span_count"] > 0
        assert report["event_count"] > 0
        assert "Image" in report["classes"]
        image = report["classes"]["Image"]
        assert image["completed"] >= 2
        assert 0.0 <= image["dht_hit_rate"] <= 1.0
        assert image["cold_starts"] >= 1
        assert any(v["cls"] == "Image" for v in report["nfr"])

    def test_span_breakdown_groups_by_phase(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        for svc in ("Image.resize", "Image.changeFormat"):
            span = tracer.start("t", f"task.offload {svc}")
            tracer.finish(span)
        stats = span_breakdown(tracer.spans())
        assert stats["task.offload"]["count"] == 2

    def test_format_summary_renders(self, observed_platform):
        platform = observed_platform
        obj = platform.new_object("Image")
        platform.invoke(obj, "resize", {"width": 2})
        text = format_summary(
            summary_report(
                tracer=platform.tracer,
                events=platform.events,
                monitoring=platform.monitoring,
                runtimes=platform.crm.runtimes,
            )
        )
        assert "span latency breakdown" in text
        assert "control-plane events" in text
        assert "Image:" in text


class TestNfrCompliance:
    def test_idle_class_meets_capacity_targets(self, observed_platform):
        platform = observed_platform
        obj = platform.new_object("Image")
        platform.invoke(obj, "resize", {"width": 2})
        verdicts = platform.nfr_report()
        # LISTING1 declares throughput: 100 on Image; one quiet request
        # cannot violate a capacity requirement.
        throughput = [v for v in verdicts if v.requirement == "throughput_rps"]
        assert throughput and all(v.met for v in throughput)

    def test_latency_violation_under_overload(self):
        platform = Oparaca(
            PlatformConfig(nodes=2, tracing_enabled=True, events_enabled=True)
        )

        @platform.function("slow/fn", service_time_s=0.5)
        def slow(ctx):
            return {"ok": True}

        platform.deploy(
            """
name: overload
classes:
  - name: Slow
    qos: { latency: 10 }
    functions:
      - name: work
        image: slow/fn
"""
        )
        obj = platform.new_object("Slow")
        for _ in range(12):
            platform.invoke(obj, "work")
        verdicts = nfr_compliance_report(platform.crm.runtimes, platform.monitoring)
        latency = [v for v in verdicts if v.requirement == "latency_p99_ms"]
        assert latency and not latency[0].met
        assert latency[0].margin < 0
        assert "VIOLATED" in format_nfr_report(verdicts)

    def test_throughput_violation_requires_saturation(self):
        """A shortfall only counts while services are saturated."""
        platform = Oparaca(PlatformConfig(nodes=2))

        @platform.function("idle/fn", service_time_s=0.001)
        def handler(ctx):
            return {"ok": True}

        platform.deploy(
            """
name: quiet
classes:
  - name: Quiet
    qos: { throughput: 10000 }
    functions:
      - name: work
        image: idle/fn
"""
        )
        obj = platform.new_object("Quiet")
        platform.invoke(obj, "work")
        verdicts = nfr_compliance_report(platform.crm.runtimes, platform.monitoring)
        throughput = [v for v in verdicts if v.requirement == "throughput_rps"]
        assert throughput and throughput[0].met
        assert "not saturated" in throughput[0].detail

    def test_no_qos_no_verdicts(self):
        platform = Oparaca(PlatformConfig(nodes=2))

        @platform.function("plain/fn")
        def handler(ctx):
            return {"ok": True}

        platform.deploy(
            """
name: plain
classes:
  - name: Plain
    functions:
      - name: work
        image: plain/fn
"""
        )
        assert nfr_compliance_report(platform.crm.runtimes, platform.monitoring) == []
        assert "no classes declare QoS" in format_nfr_report([])


class TestDisabledZeroCost:
    def test_disabled_observability_records_nothing(self, platform):
        obj = platform.new_object("Image")
        platform.invoke(obj, "resize", {"width": 2})
        platform.flush()
        assert len(platform.tracer) == 0
        assert len(platform.events) == 0
        report = platform.observability_report()
        assert report["span_count"] == 0 and report["event_count"] == 0

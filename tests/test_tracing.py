"""Tests for invocation tracing."""

import pytest

from repro.monitoring.tracing import Tracer
from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.sim.kernel import Environment

from tests.conftest import LISTING1_YAML, register_image_handlers


@pytest.fixture
def traced_platform():
    platform = Oparaca(PlatformConfig(nodes=3, tracing_enabled=True))
    register_image_handlers(platform)
    platform.deploy(LISTING1_YAML)
    return platform


class TestTracerUnit:
    def test_disabled_records_nothing(self):
        tracer = Tracer(Environment(), enabled=False)
        assert tracer.start("t", "x") is None
        tracer.finish(None)  # must be a no-op
        assert len(tracer) == 0

    def test_span_timing(self):
        env = Environment()
        tracer = Tracer(env, enabled=True)
        span = tracer.start("t", "op")
        env.run(until=2.5)
        tracer.finish(span, ok=True)
        assert span.duration_s == 2.5
        assert span.attrs["ok"] is True

    def test_parent_by_span_and_id(self):
        tracer = Tracer(Environment(), enabled=True)
        parent = tracer.start("t", "parent")
        by_span = tracer.start("t", "a", parent=parent)
        by_id = tracer.start("t", "b", parent=parent.span_id)
        assert by_span.parent_id == parent.span_id
        assert by_id.parent_id == parent.span_id

    def test_capacity_bounded(self):
        tracer = Tracer(Environment(), enabled=True, capacity=10)
        for i in range(50):
            tracer.start("t", f"s{i}")
        assert len(tracer) == 10

    def test_engine_respects_injected_empty_tracer(self):
        """Regression: an empty Tracer is falsy (__len__); the engine
        must keep the injected instance anyway."""
        platform = Oparaca(PlatformConfig(nodes=2, tracing_enabled=True))
        assert platform.engine.tracer is platform.tracer


class TestInvocationTraces:
    def test_task_invocation_spans(self, traced_platform):
        platform = traced_platform
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "resize", {"width": 10})
        spans = platform.tracer.trace(result.request_id)
        names = [s.name for s in spans]
        assert names[0] == "invoke resize"
        assert "state.load" in names
        assert any(n.startswith("task.offload") for n in names)
        assert "state.commit" in names
        assert all(s.end is not None for s in spans)

    def test_macro_trace_spans_sub_invocations(self, traced_platform):
        platform = traced_platform
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "thumbnail", {"width": 10})
        spans = platform.tracer.trace(result.request_id)
        names = [s.name for s in spans]
        # One trace covers the macro and both step invocations.
        assert "invoke thumbnail" in names
        assert "step r" in names and "step f" in names
        assert "invoke resize" in names and "invoke changeFormat" in names

    def test_step_spans_parented_to_macro(self, traced_platform):
        platform = traced_platform
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "thumbnail", {"width": 10})
        spans = platform.tracer.trace(result.request_id)
        by_name = {s.name: s for s in spans}
        macro = by_name["invoke thumbnail"]
        assert by_name["step r"].parent_id == macro.span_id
        sub = by_name["invoke resize"]
        assert sub.parent_id == by_name["step r"].span_id

    def test_immutable_invocation_has_no_commit_span(self, traced_platform):
        platform = traced_platform
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "get")
        names = [s.name for s in platform.tracer.trace(result.request_id)]
        assert "state.commit" not in names

    def test_render_tree(self, traced_platform):
        platform = traced_platform
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "resize", {"width": 5})
        text = platform.tracer.render(result.request_id)
        assert "invoke resize" in text
        assert "ms" in text

    def test_render_unknown_trace(self, traced_platform):
        assert "no spans" in traced_platform.tracer.render("ghost")

    def test_tracing_off_by_default(self, platform):
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "resize", {"width": 5})
        assert len(platform.tracer.trace(result.request_id)) == 0

"""End-to-end tests of the federation plane: zone topology, NFR-scored
placement, live object migration, geo-routing/jurisdiction enforcement,
zone-level chaos faults, and the off-by-default baseline guarantee."""

from __future__ import annotations

import pytest

from repro.chaos import FaultPlan, WanDegradation, ZonePartition
from repro.errors import (
    DeploymentError,
    SchedulingError,
    SimulationError,
    ValidationError,
)
from repro.federation import FederationConfig, Zone, ZoneTopology

from tests.helpers import make_platform, seeded_baseline_run

FED_YAML = """
name: fed-app
classes:
  - name: Sensor
    qos: {latency: 20}
    constraint: {jurisdictions: [edge-a, region-a]}
    keySpecs: [{name: n, type: INT, default: 0}]
    functions:
      - name: bump
        image: f/bump
  - name: Archive
    keySpecs: [{name: n, type: INT, default: 0}]
    functions:
      - name: bump
        image: f/bump
"""

THREE_TIER = (
    Zone("edge-a", tier="edge", parent="region-a"),
    Zone("region-a", tier="regional", parent="core"),
    Zone("core", tier="core"),
)
RTT = (
    ("edge-a", "region-a", 0.02),
    ("edge-a", "core", 0.08),
    ("region-a", "core", 0.03),
)


def _bump(ctx):
    ctx.state["n"] = int(ctx.state.get("n") or 0) + 1
    return {"n": ctx.state["n"]}


def fed_platform(*, seed=7, nodes=6, **federation_kwargs):
    federation_kwargs.setdefault("zones", THREE_TIER)
    federation_kwargs.setdefault("zone_rtt_s", RTT)
    return make_platform(
        FED_YAML,
        {"f/bump": (_bump, 0.002)},
        nodes=nodes,
        seed=seed,
        regions=("edge-a", "region-a", "core"),
        events_enabled=True,
        federation=FederationConfig(enabled=True, **federation_kwargs),
    )


class TestConfigValidation:
    def test_enabled_requires_zones(self):
        with pytest.raises(ValidationError, match="at least one zone"):
            FederationConfig(enabled=True)

    def test_unknown_placement_mode(self):
        with pytest.raises(ValidationError, match="placement"):
            FederationConfig(placement="nearest")

    def test_default_origin_must_be_declared(self):
        with pytest.raises(ValidationError, match="default_origin_zone"):
            FederationConfig(
                enabled=True, zones=THREE_TIER, default_origin_zone="mars"
            )

    def test_cluster_regions_must_name_zones(self):
        with pytest.raises(ValidationError, match="names no declared zone"):
            fed_platform(zones=(Zone("edge-a", tier="edge"),), zone_rtt_s=())

    def test_disabled_config_constructs_no_plane(self):
        platform = make_platform(federation=FederationConfig())
        assert platform.federation is None


class TestTopology:
    def test_zone_validation(self):
        with pytest.raises(ValidationError, match="tier"):
            Zone("x", tier="orbit")
        with pytest.raises(ValidationError, match="duplicate"):
            ZoneTopology((Zone("a"), Zone("a")))
        with pytest.raises(ValidationError, match="unknown parent"):
            ZoneTopology((Zone("a", parent="nope"),))
        with pytest.raises(ValidationError, match="higher tier"):
            ZoneTopology((Zone("a", tier="core", parent="b"), Zone("b", tier="edge")))

    def test_rtt_matrix_validation(self):
        with pytest.raises(ValidationError, match="unknown zone"):
            ZoneTopology((Zone("a"),), (("a", "b", 0.1),))
        with pytest.raises(ValidationError, match="itself"):
            ZoneTopology((Zone("a"),), (("a", "a", 0.1),))
        with pytest.raises(ValidationError, match="> 0"):
            ZoneTopology((Zone("a"), Zone("b")), (("a", "b", 0),))

    def test_rtt_symmetric_with_flat_fallback(self):
        topo = ZoneTopology(THREE_TIER, RTT)
        assert topo.rtt_s("edge-a", "core") == pytest.approx(0.08)
        assert topo.rtt_s("core", "edge-a") == pytest.approx(0.08)
        assert topo.rtt_s("core", "core") == 0.0
        assert ZoneTopology(THREE_TIER).rtt_s("edge-a", "core") is None

    def test_jurisdiction_matches_zone_name_or_region(self):
        topo = ZoneTopology(
            (Zone("eu-edge", tier="edge", region="eu"), Zone("us-core", tier="core"))
        )
        assert topo.matches_jurisdiction("eu-edge", ("eu",))
        assert topo.matches_jurisdiction("eu-edge", ("eu-edge",))
        assert not topo.matches_jurisdiction("us-core", ("eu",))
        assert topo.matches_jurisdiction("us-core", ())
        assert topo.jurisdiction_labels() == {"eu-edge", "eu", "us-core"}

    def test_unknown_zone_raises(self):
        with pytest.raises(ValidationError, match="known zones"):
            ZoneTopology(THREE_TIER).zone("mars")


class TestPlanner:
    def test_latency_class_pins_to_edge(self):
        platform = fed_platform()
        planner = platform.federation.planner
        plan = planner.plan(platform.crm.runtime("Sensor").resolved.nfr)
        # Sensor declares a latency NFR: only edge-tier nodes qualify.
        assert plan and all(
            planner.zone_of_node(n).tier == "edge" for n in plan
        )

    def test_unconstrained_class_prefers_core(self):
        platform = fed_platform()
        planner = platform.federation.planner
        plan = planner.plan(platform.crm.runtime("Archive").resolved.nfr)
        assert set(plan) == set(platform.cluster.node_names)
        assert planner.zone_of_node(plan[0]).tier == "core"

    def test_core_only_mode_overrides_latency_pin(self):
        platform = fed_platform(placement="core-only")
        planner = platform.federation.planner
        # core-only consolidates on the highest tier *within* the
        # jurisdiction: Sensor may not leave edge-a/region-a.
        plan = planner.plan(platform.crm.runtime("Sensor").resolved.nfr)
        assert plan and all(
            planner.zone_of_node(n).tier == "regional" for n in plan
        )

    def test_jurisdiction_is_a_hard_filter(self):
        platform = fed_platform()
        planner = platform.federation.planner
        plan = planner.plan(platform.crm.runtime("Sensor").resolved.nfr)
        allowed = set(planner.allowed_nodes(("edge-a", "region-a")))
        assert set(plan) <= allowed

    def test_unknown_jurisdiction_label_raises(self):
        platform = fed_platform()
        with pytest.raises(SchedulingError, match="unknown jurisdiction"):
            platform.federation.planner.allowed_nodes(("mars",))

    def test_undeployable_jurisdiction_fails_deploy(self):
        platform = fed_platform()
        with pytest.raises(DeploymentError, match="jurisdiction"):
            platform.deploy(
                "classes:\n  - name: Bad\n    constraint: {jurisdiction: mars}\n"
            )


class TestClusterRegions:
    def test_unknown_region_raises_typed_error(self):
        platform = make_platform(nodes=4, regions=("us-east", "eu-west"))
        with pytest.raises(SchedulingError, match="eu-west"):
            platform.cluster.nodes_in_regions(("eu-wset",))

    def test_known_regions_still_listed(self):
        platform = make_platform(nodes=4, regions=("us-east", "eu-west"))
        assert platform.cluster.nodes_in_regions(("eu-west",)) == ["vm-1", "vm-3"]


class TestBaselineParity:
    def test_disabled_federation_is_byte_identical(self):
        default = seeded_baseline_run()
        explicit_off = seeded_baseline_run(federation=FederationConfig())
        assert explicit_off == default


class TestGeoRouting:
    def test_routes_to_nearest_eligible_replica(self):
        platform = fed_platform()
        fed = platform.federation
        dht = platform.crm.dht_for("Archive")
        obj = platform.new_object("Archive", object_id="arc-1")
        key = obj.split("~", 1)[1] if "~" in obj else obj
        owners = dht.owners(obj)
        for origin in ("edge-a", "region-a", "core"):
            chosen = fed.route(dht, obj, origin)
            legs = [
                fed.zone_rtt_s(origin, fed.planner.zone_of_node(n).name)
                for n in owners
            ]
            chosen_leg = fed.zone_rtt_s(
                origin, fed.planner.zone_of_node(chosen).name
            )
            assert chosen in owners
            assert chosen_leg == min(legs)
        assert key  # object ids embed the class prefix

    def test_cross_jurisdiction_invoke_rejected_with_451(self):
        platform = fed_platform()
        obj = platform.new_object("Sensor", object_id="s-1")
        ok = platform.http(
            "POST",
            f"/api/objects/{obj}/invokes/bump",
            {},
            headers={"X-Origin-Zone": "edge-a"},
        )
        assert ok.status == 200
        rejected = platform.http(
            "POST",
            f"/api/objects/{obj}/invokes/bump",
            {},
            headers={"X-Origin-Zone": "core"},
        )
        assert rejected.status == 451
        assert rejected.body["type"] == "JurisdictionError"
        # The rejection must not have touched state.
        assert platform.get_object(obj)["state"]["n"] == 1
        events = platform.platform_events("federation.reject")
        assert len(events) == 1 and events[0].fields["origin"] == "core"

    def test_unknown_origin_zone_rejected(self):
        platform = fed_platform()
        obj = platform.new_object("Sensor", object_id="s-2")
        r = platform.http(
            "POST",
            f"/api/objects/{obj}/invokes/bump",
            {},
            headers={"X-Origin-Zone": "mars"},
        )
        assert r.status == 400

    def test_no_origin_zone_skips_geo_path(self):
        platform = fed_platform()  # no default_origin_zone
        obj = platform.new_object("Sensor", object_id="s-3")
        result = platform.invoke(obj, "bump", {})
        assert result.ok
        assert platform.federation.class_stats("Sensor")["accesses"] == 0

    def test_jurisdiction_verdict_zero_for_compliant_run(self):
        platform = fed_platform(default_origin_zone="edge-a")
        obj = platform.new_object("Sensor", object_id="s-4")
        for _ in range(3):
            assert platform.http(
                "POST", f"/api/objects/{obj}/invokes/bump", {}
            ).status == 200
        row = [
            v for v in platform.nfr_report() if v.requirement == "jurisdiction"
        ]
        assert len(row) == 1
        assert row[0].cls == "Sensor" and row[0].met and row[0].observed == 0.0

    def test_jurisdiction_verdict_counts_misconfigured_control(self):
        # Deliberately misconfigured control arm: clients default to an
        # origin outside Sensor's jurisdictions.
        platform = fed_platform(default_origin_zone="core")
        obj = platform.new_object("Sensor", object_id="s-5")
        for _ in range(3):
            assert platform.http(
                "POST", f"/api/objects/{obj}/invokes/bump", {}
            ).status == 451
        row = [
            v for v in platform.nfr_report() if v.requirement == "jurisdiction"
        ]
        assert len(row) == 1
        assert not row[0].met and row[0].observed == 3.0


class TestMigration:
    def test_http_migrate_moves_primary_and_preserves_state(self):
        platform = fed_platform()
        obj = platform.new_object("Sensor", object_id="s-1")
        for _ in range(4):
            assert platform.invoke(obj, "bump", {}).ok
        dht = platform.crm.dht_for("Sensor")
        source = dht.owner(obj)
        assert platform.federation.planner.zone_of_node(source).name == "edge-a"
        r = platform.http(
            "POST", f"/api/classes/Sensor/objects/{obj}/migrate", {"zone": "region-a"}
        )
        assert r.status == 200
        summary = r.body
        assert summary["source"] == source
        assert summary["source_zone"] == "edge-a"
        assert summary["target_zone"] == "region-a"
        assert summary["version"] >= 4
        target = summary["target"]
        assert platform.federation.planner.zone_of_node(target).name == "region-a"
        assert dht.owner(obj) == target
        assert platform.get_object(obj)["state"]["n"] == 4
        events = platform.platform_events("federation.migrate")
        assert len(events) == 1 and events[0].fields["target"] == target

    def test_migration_survives_further_writes_exactly_once(self):
        platform = fed_platform()
        obj = platform.new_object("Sensor", object_id="s-2")
        acked = 0
        for _ in range(5):
            if platform.invoke(obj, "bump", {}).ok:
                acked += 1
        summary = platform.migrate_object(obj, "region-a", cls="Sensor")
        assert summary["target_zone"] == "region-a"
        for _ in range(5):
            if platform.invoke(obj, "bump", {}).ok:
                acked += 1
        # Exactly-once visibility across the handoff: the counter equals
        # the number of acknowledged increments — none lost, none doubled.
        assert platform.get_object(obj)["state"]["n"] == acked == 10

    def test_migrate_outside_jurisdiction_rejected(self):
        platform = fed_platform()
        obj = platform.new_object("Sensor", object_id="s-3")
        r = platform.http(
            "POST", f"/api/classes/Sensor/objects/{obj}/migrate", {"zone": "core"}
        )
        assert r.status == 409
        assert "jurisdiction" in r.body["error"]
        assert platform.federation.jurisdiction_rejections("Sensor") == 1

    def test_migrate_unknown_zone_rejected(self):
        platform = fed_platform()
        obj = platform.new_object("Archive", object_id="a-1")
        r = platform.http(
            "POST", f"/api/classes/Archive/objects/{obj}/migrate", {"zone": "mars"}
        )
        assert r.status == 400

    def test_migrate_unknown_object_404(self):
        platform = fed_platform()
        r = platform.http(
            "POST", "/api/classes/Archive/objects/Archive~ghost/migrate",
            {"zone": "core"},
        )
        assert r.status == 404
        assert platform.federation.migration.migrations_failed == 1

    def test_migrate_extends_ring_into_unrepresented_zone(self):
        # Sensor's ring is edge-pinned; migrating into region-a must
        # extend the ring with the zone's best node (operator spill).
        platform = fed_platform()
        obj = platform.new_object("Sensor", object_id="s-4")
        dht = platform.crm.dht_for("Sensor")
        before = set(dht.nodes)
        assert all(
            platform.federation.planner.zone_of_node(n).name == "edge-a"
            for n in before
        )
        summary = platform.migrate_object(obj, "region-a", cls="Sensor")
        assert summary["target"] in set(dht.nodes) - before
        assert dht.owner(obj) == summary["target"]

    def test_pin_dissolves_when_pinned_node_fails(self):
        platform = fed_platform()
        obj = platform.new_object("Sensor", object_id="s-5")
        platform.invoke(obj, "bump", {})
        summary = platform.migrate_object(obj, "region-a", cls="Sensor")
        target = summary["target"]
        platform.fail_node(target)
        dht = platform.crm.dht_for("Sensor")
        assert dht.owner(obj) != target
        # Replicated state survives the pinned node's crash.
        assert platform.invoke(obj, "bump", {}).ok


class TestPlacementLifecycle:
    def test_self_heal_respects_jurisdiction(self):
        platform = fed_platform()
        obj = platform.new_object("Sensor", object_id="s-1")
        platform.invoke(obj, "bump", {})
        allowed = set(platform.federation.planner.allowed_nodes(("edge-a",)))
        victim = next(iter(allowed))
        platform.fail_node(victim)
        platform.advance(1.0)
        platform.invoke(obj, "bump", {})
        runtime = platform.crm.runtime("Sensor")
        for service in runtime.services.values():
            for pod in service.deployment.pods:
                assert pod.node in allowed - {victim}

    def test_joining_edge_node_adopted_only_by_eligible_classes(self):
        platform = fed_platform()
        platform.new_object("Sensor", object_id="s-2")
        platform.add_node("vm-6", region="edge-a")
        assert "vm-6" in set(platform.crm.dht_for("Sensor").nodes)
        platform.add_node("vm-7", region="core")
        # Sensor is pinned to the edge: the new core node stays out.
        assert "vm-7" not in set(platform.crm.dht_for("Sensor").nodes)
        assert "vm-7" in set(platform.crm.dht_for("Archive").nodes)


class TestZoneChaos:
    def test_zone_faults_require_the_plane(self):
        plain = (
            "classes:\n"
            "  - name: Task\n"
            "    keySpecs: [{name: n, type: INT, default: 0}]\n"
            "    functions: [{name: bump, image: f/bump}]\n"
        )
        platform = make_platform(plain, {"f/bump": (_bump, 0.002)}, nodes=3)
        plan = FaultPlan(
            "zp", (ZonePartition(at=0.1, duration_s=0.5, zone="edge-a"),)
        )
        platform.inject_chaos(plan)
        with pytest.raises(SimulationError, match="federation plane"):
            platform.advance(0.2)
        plan = FaultPlan(
            "wan",
            (WanDegradation(at=0.1, duration_s=0.5, src_zone="edge-a", extra_s=0.05),),
        )
        platform.inject_chaos(plan)
        with pytest.raises(SimulationError, match="federation plane"):
            platform.advance(0.2)

    def test_fault_validation(self):
        with pytest.raises(ValidationError):
            ZonePartition(at=0.0, duration_s=0.0, zone="edge-a")
        with pytest.raises(ValidationError):
            ZonePartition(at=0.0, duration_s=1.0, zone="")
        with pytest.raises(ValidationError):
            WanDegradation(at=0.0, duration_s=1.0, src_zone="edge-a", extra_s=0.0)

    def test_migration_under_zone_partition_exactly_once(self):
        # The acceptance drill: increments land before the fault, the
        # object migrates away from the zone about to be cut off, the
        # zone partitions, and every acknowledged increment is visible
        # exactly once afterwards.
        platform = fed_platform()
        obj = platform.new_object("Sensor", object_id="s-1")
        acked = 0
        for _ in range(5):
            if platform.invoke(obj, "bump", {}).ok:
                acked += 1
        summary = platform.migrate_object(obj, "region-a", cls="Sensor")
        assert summary["target_zone"] == "region-a"
        injector = platform.inject_chaos(
            FaultPlan("zp", (ZonePartition(at=0.05, duration_s=0.4, zone="edge-a"),))
        )
        platform.advance(0.1)  # partition is now live
        for _ in range(5):
            if platform.invoke(obj, "bump", {}).ok:
                acked += 1
        platform.advance(0.6)  # heal + anti-entropy
        assert injector.done
        for _ in range(2):
            if platform.invoke(obj, "bump", {}).ok:
                acked += 1
        platform.flush()
        assert platform.get_object(obj)["state"]["n"] == acked
        assert acked >= 7  # pre-fault and post-heal increments all landed

    def test_wan_degradation_slows_cross_zone_transfers(self):
        platform = fed_platform()
        obj = platform.new_object("Archive", object_id="a-1")
        platform.invoke(obj, "bump", {})
        baseline = platform.migrate_object(obj, "edge-a", cls="Archive")
        platform.inject_chaos(
            FaultPlan(
                "wan",
                (
                    WanDegradation(
                        at=0.0,
                        duration_s=5.0,
                        src_zone="edge-a",
                        dst_zone="core",
                        extra_s=0.5,
                    ),
                ),
            )
        )
        platform.advance(0.01)
        degraded = platform.migrate_object(obj, "core", cls="Archive")
        assert degraded["duration_s"] > baseline["duration_s"] + 0.4


class TestDeterminism:
    @staticmethod
    def _run():
        platform = fed_platform(default_origin_zone="edge-a")
        obj = platform.new_object("Sensor", object_id="s-1")
        for _ in range(4):
            platform.http("POST", f"/api/objects/{obj}/invokes/bump", {})
        platform.http(
            "POST", f"/api/objects/{obj}/invokes/bump", {},
            headers={"x-origin-zone": "core"},
        )
        platform.migrate_object(obj, "region-a", cls="Sensor")
        events = [
            (e.at, e.type, tuple(sorted(e.fields.items())))
            for e in platform.platform_events()
        ]
        stats = platform.federation.stats()
        snap = platform.snapshot()
        platform.shutdown()
        return events, stats, snap

    def test_federated_run_is_seed_deterministic(self):
        assert self._run() == self._run()

    def test_snapshot_exposes_federation_counters(self):
        platform = fed_platform(default_origin_zone="edge-a")
        obj = platform.new_object("Sensor", object_id="s-1")
        platform.http(
            "POST", f"/api/objects/{obj}/invokes/bump", {},
            headers={"x-origin-zone": "core"},
        )
        platform.migrate_object(obj, "region-a", cls="Sensor")
        snap = platform.snapshot()
        assert snap["federation.migrations"] == 1.0
        assert snap["federation.rejections"] == 1.0
        report = platform.federation_report()
        assert report["migrations_total"] == 1

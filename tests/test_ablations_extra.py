"""Tests for the replication/burst ablations and the phased generator."""

import pytest

from repro.bench.ablations import run_burst_ablation, run_replication_ablation
from repro.sim.kernel import Environment
from repro.sim.workload import PhasedOpenLoopGenerator


class TestPhasedGenerator:
    def test_phase_rates_respected(self):
        env = Environment()

        def request(index):
            yield env.timeout(0.001)

        generator = PhasedOpenLoopGenerator(
            env,
            request,
            phases=[(5.0, 10.0), (5.0, 100.0)],
            horizon_s=10.0,
            poisson=False,
        )
        env.run(until=11.0)
        low, high = generator.phase_stats
        assert low.issued == pytest.approx(50, abs=3)
        assert high.issued == pytest.approx(500, abs=5)

    def test_phases_cycle_until_horizon(self):
        env = Environment()

        def request(index):
            yield env.timeout(0.001)

        generator = PhasedOpenLoopGenerator(
            env,
            request,
            phases=[(1.0, 10.0), (1.0, 0.0)],  # on/off
            horizon_s=6.0,
            poisson=False,
        )
        env.run(until=7.0)
        # Three on-phases of ~10 requests each.
        assert generator.stats.issued == pytest.approx(30, abs=4)

    def test_validation(self):
        env = Environment()

        def request(index):
            yield env.timeout(0)

        with pytest.raises(ValueError):
            PhasedOpenLoopGenerator(env, request, phases=[], horizon_s=1.0)
        with pytest.raises(ValueError):
            PhasedOpenLoopGenerator(env, request, phases=[(0, 10)], horizon_s=1.0)

    def test_zero_rate_phase_issues_nothing(self):
        env = Environment()

        def request(index):
            yield env.timeout(0.001)

        generator = PhasedOpenLoopGenerator(
            env, request, phases=[(2.0, 0.0)], horizon_s=2.0, poisson=False
        )
        env.run(until=3.0)
        assert generator.stats.issued == 0


class TestReplicationAblation:
    def test_replication_improves_survival(self):
        from repro.bench.config import Fig3Config

        cfg = Fig3Config(
            nodes_sweep=(3,),
            objects=400,
            clients_per_vm=8,
            horizon_s=2.0,
            warmup_s=1.0,
            cold_start_s=0.2,
            max_pending=2000,
        )
        rows = run_replication_ablation(replications=(1, 2), nodes=3, cfg=cfg, probe_objects=150)
        single, double = rows
        assert single.survivors_pct < 95.0
        assert double.survivors_pct > single.survivors_pct
        assert double.survivors_pct >= 99.0


class TestBurstAblation:
    def test_prewarming_absorbs_bursts(self):
        rows = run_burst_ablation(
            min_scales=(1, 4), base_rate=20.0, burst_rate=200.0, phase_s=8.0, cycles=1
        )
        cold, warm = rows
        assert cold.burst_p99_ms > warm.burst_p99_ms * 2
        assert warm.degradation < 3.0
        assert cold.peak_replicas >= warm.peak_replicas


class TestQosAblation:
    def test_plane_protects_hot_class(self):
        from repro.bench.ablations import run_qos_ablation

        rows = run_qos_ablation(
            noisy_backlog=200,
            hot_rps=40.0,
            hot_duration_s=2.0,
            hot_objects=4,
            noisy_objects=8,
        )
        fifo, qos = rows
        assert fifo.hot_completed == qos.hot_completed == 80
        assert not fifo.hot_met  # head-of-line blocking behind the flood
        assert qos.hot_met
        assert qos.hot_p95_ms < fifo.hot_p95_ms / 5
        assert fifo.noisy_shed == 0
        assert fifo.noisy_completed == 200  # baseline drains everything

"""Unit tests for write-behind batching, coalescing, and backpressure."""

import pytest

from repro.errors import StorageError
from repro.storage.kv import DbModel, DocumentStore
from repro.storage.write_behind import WriteBehindConfig, WriteBehindQueue


def make(env, batch_size=10, linger_s=0.01, max_pending=100, capacity=1000.0):
    store = DocumentStore(env, DbModel(capacity_units_per_s=capacity))
    queue = WriteBehindQueue(
        env,
        store,
        "objects",
        WriteBehindConfig(batch_size=batch_size, linger_s=linger_s, max_pending=max_pending),
    )
    return store, queue


class TestConfig:
    def test_batch_size_validation(self, env):
        with pytest.raises(StorageError):
            WriteBehindConfig(batch_size=0)

    def test_linger_validation(self, env):
        with pytest.raises(StorageError):
            WriteBehindConfig(linger_s=-1)

    def test_max_pending_must_cover_batch(self, env):
        with pytest.raises(StorageError):
            WriteBehindConfig(batch_size=100, max_pending=50)


class TestFlushing:
    def test_enqueued_docs_reach_store(self, env):
        store, queue = make(env)
        for i in range(5):
            queue.enqueue({"id": f"k{i}"})
        env.run(until=1.0)
        assert store.count("objects") == 5
        assert queue.pending == 0

    def test_batches_bounded_by_batch_size(self, env):
        store, queue = make(env, batch_size=10, linger_s=0.05)
        for i in range(25):
            queue.enqueue({"id": f"k{i}"})
        env.run(until=2.0)
        assert store.count("objects") == 25
        assert queue.flush_ops >= 3  # at least ceil(25/10)
        assert max(10, queue.docs_flushed // queue.flush_ops) <= 10

    def test_coalescing_last_write_wins(self, env):
        store, queue = make(env, linger_s=0.5)
        queue.enqueue({"id": "hot", "v": 1})
        queue.enqueue({"id": "hot", "v": 2})
        queue.enqueue({"id": "hot", "v": 3})
        env.run(until=2.0)
        assert queue.coalesced == 2
        assert store.count("objects") == 1
        assert store.get_sync("objects", "hot")["v"] == 3
        assert store.docs_written == 1  # one DB write for three updates

    def test_enqueue_requires_id(self, env):
        _, queue = make(env)
        with pytest.raises(StorageError):
            queue.enqueue({"v": 1})

    def test_idle_queue_schedules_nothing(self, env):
        make(env, linger_s=0.01)
        env.run()  # must terminate: flusher blocks on the arrival gate
        assert env.now == 0.0

    def test_drain_flushes_everything_now(self, env):
        store, queue = make(env, batch_size=5, linger_s=10.0)
        for i in range(12):
            queue.enqueue({"id": f"k{i}"})
        env.run(until=env.process(iter_drain(queue)))
        assert store.count("objects") == 12
        assert queue.pending == 0


def iter_drain(queue):
    yield queue.drain()


class TestBackpressure:
    def test_enqueue_blocking_waits_for_space(self, env):
        # Slow store: 1 unit/s, each flush op takes seconds.
        store, queue = make(env, batch_size=2, linger_s=0.0, max_pending=2, capacity=10.0)
        done = []

        def producer(env):
            for i in range(6):
                yield from queue.enqueue_blocking({"id": f"k{i}"})
            done.append(env.now)

        env.process(producer(env))
        env.run(until=10.0)
        assert done, "producer should eventually finish"
        assert done[0] > 0.0  # it had to wait for flushes
        assert queue.blocked_enqueues > 0
        env.run(until=20.0)
        assert store.count("objects") == 6

    def test_coalescing_update_never_blocks(self, env):
        store, queue = make(env, batch_size=2, linger_s=0.0, max_pending=2, capacity=10.0)
        queue.enqueue({"id": "a"})
        queue.enqueue({"id": "b"})

        def producer(env):
            yield from queue.enqueue_blocking({"id": "a", "v": 2})
            return env.now

        at = env.run(until=env.process(producer(env)))
        assert at == 0.0  # coalesced into the buffered 'a' without waiting

    def test_accept_rate_bounded_by_db(self, env):
        # DB does 10 units/s; op_cost 4 + doc 1 => a batch of 2 costs 6
        # units (0.6s) => ~3.3 docs/s sustained.
        store, queue = make(env, batch_size=2, linger_s=0.0, max_pending=2, capacity=10.0)
        accepted = []

        def producer(env):
            index = 0
            while env.now < 30.0:
                yield from queue.enqueue_blocking({"id": f"k{index}"})
                accepted.append(env.now)
                index += 1

        env.process(producer(env))
        env.run(until=30.0)
        rate = len(accepted) / 30.0
        assert rate == pytest.approx(3.3, rel=0.25)


class TestCrashLossAccounting:
    def test_stop_counts_inflight_retry_batch(self, env):
        # Regression: a batch popped by _take_batch() and stuck in the
        # _flush retry loop was dropped uncounted by stop().
        store, queue = make(env, batch_size=10, linger_s=0.01)
        store.set_write_fault(1.0)
        for i in range(3):
            queue.enqueue({"id": f"k{i}"})
        env.run(until=0.2)  # flusher popped the batch; every write faults
        assert queue.flush_failures >= 1
        assert queue.pending == 0  # the three docs are in flight, not buffered
        for i in range(2):
            queue.enqueue({"id": f"x{i}"})
        report = queue.stop()
        assert report["lost"] == 5  # 3 in-flight + 2 buffered
        store.clear_write_fault()
        env.run(until=5.0)
        assert store.count("objects") == 0  # the crash really dropped them

    def test_stop_without_inflight_counts_buffer_only(self, env):
        store, queue = make(env, linger_s=10.0)
        for i in range(4):
            queue.enqueue({"id": f"k{i}"})
        assert queue.stop() == {"lost": 4}

    def test_plain_stop_report_has_no_fenced_key(self, env):
        # The report shape is unchanged outside a snapshot cut.
        store, queue = make(env, batch_size=10, linger_s=0.01)
        store.set_write_fault(1.0)
        queue.enqueue({"id": "k"})
        env.run(until=0.2)  # the batch is in flight
        assert "fenced" not in queue.stop()


class TestSnapshotFence:
    def test_stop_during_cut_counts_fenced_batch_exactly_once(self, env):
        # A crash while the snapshot coordinator holds the fence: the
        # in-flight batch is reported once under "fenced" (and inside
        # "lost"), never double-counted against the buffered docs.
        store, queue = make(env, batch_size=10, linger_s=0.01)
        store.set_write_fault(1.0)
        for i in range(3):
            queue.enqueue({"id": f"k{i}"})
        env.run(until=0.2)  # flusher popped [k0..k2]; writes fault
        assert queue.pending == 0
        queue.begin_fence()
        for i in range(2):
            queue.enqueue({"id": f"x{i}"})
        report = queue.stop()
        assert report["lost"] == 5  # 3 in-flight + 2 buffered
        assert report["fenced"] == 3  # the in-flight batch, exactly once
        # Repeated stop must not count the same batch again.
        assert queue.stop() == {"lost": 0, "fenced": 0}

    def test_batches_popped_under_fence_are_counted(self, env):
        store, queue = make(env, batch_size=10, linger_s=0.01)
        queue.begin_fence()
        for i in range(3):
            queue.enqueue({"id": f"k{i}"})
        env.run(until=env.process(iter_drain(queue)))
        queue.end_fence()
        assert queue.fenced_batches == 1
        # Outside the fence, batches are no longer attributed to a cut.
        for i in range(3):
            queue.enqueue({"id": f"y{i}"})
        env.run(until=env.process(iter_drain(queue)))
        assert queue.fenced_batches == 1

    def test_fences_nest_and_unbalanced_end_rejected(self, env):
        store, queue = make(env)
        queue.begin_fence()
        queue.begin_fence()
        queue.end_fence()
        queue.enqueue({"id": "k"})
        env.run(until=env.process(iter_drain(queue)))
        assert queue.fenced_batches == 1  # still fenced after one end
        queue.end_fence()
        with pytest.raises(StorageError):
            queue.end_fence()


class TestDrainVsRetry:
    def test_drain_not_overtaken_by_retried_batch(self, env):
        # Regression: drain() used to write directly while the flusher
        # held an older batch in its retry loop; once the store healed,
        # the retried (older) version overwrote the newer one the drain
        # had already flushed.  Routing drain through the flusher keeps
        # batches in pop order: v1 lands before v2, last write wins.
        store, queue = make(env, batch_size=5, linger_s=0.01)
        queue.enqueue({"id": "k", "v": 1})
        store.set_write_fault(1.0)
        env.run(until=0.2)  # flusher popped [v1] and is failing/backing off
        assert queue.flush_failures >= 1
        store.clear_write_fault()
        queue.enqueue({"id": "k", "v": 2})
        env.run(until=env.process(iter_drain(queue)))
        assert store.get_sync("objects", "k")["v"] == 2
        assert queue.pending == 0

    def test_drain_waits_for_inflight_retry(self, env):
        store, queue = make(env, batch_size=5, linger_s=0.01)
        queue.enqueue({"id": "a", "v": 1})
        store.set_write_fault(1.0)
        env.run(until=0.1)
        assert queue.pending == 0  # batch is in flight, buffer empty
        store.clear_write_fault()
        # Drain must not resolve before the retried batch is durable.
        env.run(until=env.process(iter_drain(queue)))
        assert store.get_sync("objects", "a")["v"] == 1

    def test_discard_reaches_inflight_batch(self, env):
        # A delete racing a retry must not resurrect the object.
        store, queue = make(env, batch_size=5, linger_s=0.01)
        queue.enqueue({"id": "doomed", "v": 1})
        store.set_write_fault(1.0)
        env.run(until=0.1)
        assert queue.pending == 0  # in the retry loop
        assert queue.discard("doomed") is True
        store.clear_write_fault()
        env.run(until=env.process(iter_drain(queue)))
        assert store.get_sync("objects", "doomed") is None

"""Unit tests for the document store and its throughput model."""

import pytest

from repro.errors import StorageError
from repro.storage.kv import DbModel, DocumentStore


def run(env, generator):
    return env.run(until=env.process(generator))


class TestDbModel:
    def test_write_units(self):
        model = DbModel(op_cost=4, doc_cost=1)
        assert model.write_units(1) == 5
        assert model.write_units(100) == 104

    def test_read_units(self):
        model = DbModel(op_cost=4, read_cost=1)
        assert model.read_units() == 5


class TestDocumentStore:
    def test_write_then_read(self, env):
        store = DocumentStore(env)

        def scenario(env):
            yield store.write("c", [{"id": "x", "value": 1}])
            doc = yield store.read("c", "x")
            return doc

        assert run(env, scenario(env))["value"] == 1

    def test_read_missing_returns_none(self, env):
        store = DocumentStore(env)

        def scenario(env):
            doc = yield store.read("c", "ghost")
            return doc

        assert run(env, scenario(env)) is None

    def test_write_requires_id(self, env):
        store = DocumentStore(env)
        with pytest.raises(StorageError, match="'id'"):
            store.write("c", [{"value": 1}])

    def test_upsert_by_id(self, env):
        store = DocumentStore(env)

        def scenario(env):
            yield store.write("c", [{"id": "x", "v": 1}])
            yield store.write("c", [{"id": "x", "v": 2}])
            doc = yield store.read("c", "x")
            return doc

        assert run(env, scenario(env))["v"] == 2
        assert store.count("c") == 1

    def test_batch_write_cheaper_than_singles(self, env):
        model = DbModel(capacity_units_per_s=100, op_cost=4, doc_cost=1)
        store = DocumentStore(env, model)
        docs = [{"id": f"k{i}"} for i in range(10)]

        def singles(env):
            for doc in docs:
                yield store.write("a", [doc])
            return env.now

        t_singles = run(env, singles(env))

        env2_store = DocumentStore(env, model)

        def batch(env):
            start = env.now
            yield env2_store.write("a", docs)
            return env.now - start

        t_batch = run(env, batch(env))
        # 10 ops x 5 units vs 1 op x 14 units.
        assert t_singles == pytest.approx(0.5)
        assert t_batch == pytest.approx(0.14)

    def test_capacity_is_shared_backlog(self, env):
        store = DocumentStore(env, DbModel(capacity_units_per_s=10, op_cost=0, doc_cost=1))

        def scenario(env):
            first = store.write("c", [{"id": "a"}] * 5)   # 0.5s
            second = store.write("c", [{"id": "b"}] * 5)  # queues behind
            yield first
            t_first = env.now
            yield second
            return t_first, env.now

        t_first, t_second = run(env, scenario(env))
        assert t_first == pytest.approx(0.5)
        assert t_second == pytest.approx(1.0)

    def test_mutation_applied_only_after_completion(self, env):
        store = DocumentStore(env, DbModel(capacity_units_per_s=1))
        store.write("c", [{"id": "x"}])
        assert store.get_sync("c", "x") is None  # still in flight
        env.run()
        assert store.get_sync("c", "x") is not None

    def test_delete(self, env):
        store = DocumentStore(env)
        store.put_sync("c", {"id": "x"})

        def scenario(env):
            yield store.delete("c", "x")

        run(env, scenario(env))
        assert store.get_sync("c", "x") is None

    def test_stats_counters(self, env):
        store = DocumentStore(env)

        def scenario(env):
            yield store.write("c", [{"id": "a"}, {"id": "b"}])
            yield store.read("c", "a")
            yield store.read("c", "ghost")

        run(env, scenario(env))
        assert store.write_ops == 1
        assert store.docs_written == 2
        assert store.read_ops == 2
        assert store.docs_read == 1

    def test_put_sync_requires_id(self, env):
        with pytest.raises(StorageError):
            DocumentStore(env).put_sync("c", {"x": 1})

    def test_keys_sorted(self, env):
        store = DocumentStore(env)
        for key in ("b", "a", "c"):
            store.put_sync("c", {"id": key})
        assert store.keys("c") == ["a", "b", "c"]

    def test_read_returns_copy(self, env):
        store = DocumentStore(env)
        store.put_sync("c", {"id": "x", "nested": 1})

        def scenario(env):
            doc = yield store.read("c", "x")
            doc["nested"] = 999
            fresh = yield store.read("c", "x")
            return fresh

        assert run(env, scenario(env))["nested"] == 1


class TestEmptyWrites:
    def test_empty_write_is_true_noop(self, env):
        store = DocumentStore(env)

        def scenario(env):
            written = yield store.write("c", [])
            return written

        assert run(env, scenario(env)) == 0
        assert store.write_ops == 0
        assert store.docs_written == 0
        assert env.now == 0.0  # consumed no work units, no limiter time


class TestReadMany:
    def test_multi_get_single_op_pricing(self, env):
        store = DocumentStore(
            env, DbModel(capacity_units_per_s=100.0, op_cost=4.0, read_cost=1.0)
        )
        for index in range(3):
            store.put_sync("c", {"id": f"k{index}", "v": index})

        def scenario(env):
            docs = yield store.read_many("c", ["k0", "k1", "k2", "ghost"])
            return docs

        docs = run(env, scenario(env))
        assert docs["k1"]["v"] == 1
        assert docs["ghost"] is None
        assert store.read_ops == 1
        assert store.multi_read_ops == 1
        assert store.docs_read == 3
        # One op_cost amortized over four keys: (4 + 4*1) / 100 units/s.
        assert env.now == pytest.approx(0.08)

    def test_multi_get_cheaper_than_point_reads(self, env):
        store = DocumentStore(
            env, DbModel(capacity_units_per_s=100.0, op_cost=4.0, read_cost=1.0)
        )
        keys = [f"k{i}" for i in range(10)]
        for key in keys:
            store.put_sync("c", {"id": key})

        def batched(env):
            yield store.read_many("c", keys)

        run(env, batched(env))
        batched_time = env.now

        def pointwise(env):
            for key in keys:
                yield store.read("c", key)

        run(env, pointwise(env))
        pointwise_time = env.now - batched_time
        assert batched_time < pointwise_time / 2

    def test_empty_read_many_is_noop(self, env):
        store = DocumentStore(env)

        def scenario(env):
            docs = yield store.read_many("c", [])
            return docs

        assert run(env, scenario(env)) == {}
        assert store.read_ops == 0
        assert env.now == 0.0

    def test_read_many_returns_copies(self, env):
        store = DocumentStore(env)
        store.put_sync("c", {"id": "x", "nested": 1})

        def scenario(env):
            docs = yield store.read_many("c", ["x"])
            docs["x"]["nested"] = 999
            fresh = yield store.read("c", "x")
            return fresh

        assert run(env, scenario(env))["nested"] == 1

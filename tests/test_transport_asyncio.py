"""Tests for the real asyncio scheduler/worker transport: registration,
dispatch/complete round trips, connection-drop crashes with epoch
fencing, stale/duplicate completions, drain, and the HTTP front end.

All asyncio here is driven through ``asyncio.run`` inside sync tests so
the suite needs no pytest plugin.  Wall-clock timings are generous
multiples of the heartbeat interval — the assertions are about protocol
invariants, never about exact timing.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import SchedulingError
from repro.invoker.request import InvocationRequest
from repro.scheduler.plane import SchedulerConfig
from repro.scheduler.transport.aio import AsyncSchedulerServer, AsyncWorkerClient
from repro.scheduler.transport.protocol import (
    Complete,
    Dispatch,
    FrameDecoder,
    InstallAck,
    Message,
    Ready,
    Register,
    RegisterAck,
    encode_frame,
)

CONFIG = SchedulerConfig(
    enabled=True,
    transport="asyncio",
    pool_size=2,
    heartbeat_interval_s=0.05,
    degraded_after_misses=2,
    dead_after_misses=4,
)


async def start_server(classes=("C",)) -> AsyncSchedulerServer:
    server = AsyncSchedulerServer(config=CONFIG, classes=list(classes))
    await server.start()
    return server


def echo_executor(delay_s: float = 0.0):
    async def executor(dispatch: Dispatch, client: AsyncWorkerClient) -> dict:
        if delay_s:
            await asyncio.sleep(delay_s * client.slow_factor)
        return {"ok": True, "output": {"fn": dispatch.fn_name}}

    return executor


async def connect_worker(
    server: AsyncSchedulerServer, name: str, executor=None
) -> AsyncWorkerClient:
    client = AsyncWorkerClient(
        name,
        "127.0.0.1",
        server.port,
        executor or echo_executor(),
        heartbeat_interval_s=CONFIG.heartbeat_interval_s,
    )
    await client.connect()
    return client


async def wait_for(predicate, timeout_s: float = 5.0, message: str = "condition"):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while loop.time() < deadline:
        if predicate():
            return
        await asyncio.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


def request_for(suffix: str) -> InvocationRequest:
    return InvocationRequest(object_id=f"C~{suffix}", fn_name="f", cls="C")


class RawWorker:
    """A hand-rolled protocol speaker for adversarial server tests."""

    def __init__(self, name: str):
        self.name = name
        self.epoch = -1
        self.inbox: asyncio.Queue[Message] = asyncio.Queue()
        self._reader = None
        self._writer = None
        self._task = None

    async def connect(self, port: int) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            "127.0.0.1", port
        )
        self.send(Register(worker=self.name))
        self._task = asyncio.ensure_future(self._pump())
        ack = await self.recv(RegisterAck)
        if ack.error is not None:
            raise SchedulingError(ack.error)
        self.epoch = ack.epoch
        for cls in ack.classes:
            self.send(InstallAck(worker=self.name, epoch=self.epoch, cls=cls))
        self.send(Ready(worker=self.name, epoch=self.epoch))

    async def _pump(self) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await self._reader.read(65536)
                if not data:
                    return
                for message in decoder.feed(data):
                    self.inbox.put_nowait(message)
        except (ConnectionError, asyncio.CancelledError):
            pass

    def send(self, message: Message) -> None:
        self._writer.write(encode_frame(message))

    async def recv(self, kind, timeout_s: float = 5.0):
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while loop.time() < deadline:
            try:
                message = await asyncio.wait_for(self.inbox.get(), 0.25)
            except asyncio.TimeoutError:
                continue
            if isinstance(message, kind):
                return message
        raise AssertionError(f"no {kind.__name__} frame arrived")

    async def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
        if self._writer is not None:
            self._writer.close()
        await asyncio.sleep(0)


class TestRoundTrip:
    def test_register_dispatch_complete(self):
        async def scenario():
            server = await start_server()
            workers = [
                await connect_worker(server, f"w-{i}", echo_executor(0.002))
                for i in range(2)
            ]
            await wait_for(
                lambda: server.core.live_workers == 2
                and all(
                    w.machine.is_dispatchable for w in server.core.workers.values()
                ),
                message="pool ready",
            )
            futures = [server.submit(request_for(str(i))) for i in range(10)]
            results = await asyncio.wait_for(asyncio.gather(*futures), 10)
            assert all(r.ok for r in results)
            assert server.core.ledger.audit() == {
                "accepted": 10,
                "completed": 10,
                "outstanding": 0,
                "requeues": 0,
                "suppressed": 0,
            }
            types = [e.type for e in server.events]
            assert types.count("scheduler.register") == 2
            assert types.count("scheduler.ready") == 2
            assert types.count("scheduler.dispatch") == 10
            assert types.count("scheduler.complete") == 10
            for worker in workers:
                await worker.close()
            assert await server.stop() == {"pending": 0, "parked": 0}

        asyncio.run(scenario())

    def test_duplicate_registration_rejected(self):
        async def scenario():
            server = await start_server()
            first = await connect_worker(server, "w-0")
            with pytest.raises(SchedulingError, match="already registered"):
                await connect_worker(server, "w-0")
            # The rejection must not have crashed the live registration.
            assert server.core.live_workers == 1
            await first.close()
            await server.stop()

        asyncio.run(scenario())

    def test_unknown_class_parks_until_deploy(self):
        async def scenario():
            server = await start_server(classes=())
            worker = await connect_worker(server, "w-0")
            await wait_for(lambda: server.core.live_workers == 1)
            future = server.submit(
                InvocationRequest(object_id="Late~a", fn_name="f", cls="Late")
            )
            await asyncio.sleep(0.1)
            assert server.core.parked == 1 and not future.done()
            server.on_deploy("Late")  # install + flush
            result = await asyncio.wait_for(future, 5)
            assert result.ok
            await worker.close()
            await server.stop()

        asyncio.run(scenario())


class TestConnectionDropCrash:
    def test_mid_dispatch_drop_fences_and_requeues(self):
        """The satellite edge case: a connection drop while the worker
        is mid-execution must fence its epoch and requeue the item, and
        the redispatched attempt completes exactly once."""

        async def scenario():
            server = await start_server()
            hold = asyncio.Event()

            async def sticky(dispatch: Dispatch, client: AsyncWorkerClient) -> dict:
                if client.name == "victim":
                    await hold.wait()  # never released: the crash wins
                return {"ok": True, "output": {}}

            victim = await connect_worker(server, "victim", sticky)
            backup = await connect_worker(server, "backup", sticky)
            await wait_for(
                lambda: all(
                    w.machine.is_dispatchable for w in server.core.workers.values()
                )
            )
            # Find an object the victim owns under rendezvous hashing.
            suffix = next(
                s
                for s in (f"o{i}" for i in range(64))
                if server.core.pick(request_for(s)).name == "victim"
            )
            request = request_for(suffix)
            future = server.submit(request)
            port = server.core.workers["victim"]
            await wait_for(
                lambda: request.request_id in port.executing,
                message="victim executing",
            )
            epoch_before = port.epoch
            victim.kill()  # real connection drop, no goodbye
            result = await asyncio.wait_for(future, 10)
            assert result.ok
            assert port.epoch == epoch_before + 1  # fenced
            assert port.machine.is_dead
            audit = server.core.ledger.audit()
            assert audit["requeues"] == 1
            assert audit["completed"] == 1 and audit["outstanding"] == 0
            dead = [e for e in server.events if e.type == "scheduler.dead"]
            assert dead and dead[0].fields["reason"] == "connection-lost"
            assert dead[0].fields["requeued"] == 1
            await backup.close()
            await server.stop()

        asyncio.run(scenario())

    def test_heartbeat_timeout_crashes_zombie(self):
        async def scenario():
            server = await start_server()
            zombie = await connect_worker(server, "zombie")
            spare = await connect_worker(server, "spare")
            await wait_for(
                lambda: all(
                    w.machine.is_dispatchable for w in server.core.workers.values()
                )
            )
            zombie.suppress_heartbeats(30.0)
            await wait_for(
                lambda: server.core.workers["zombie"].machine.is_dead,
                message="zombie declared dead",
            )
            reasons = [
                e.fields["reason"]
                for e in server.events
                if e.type == "scheduler.dead"
            ]
            assert "heartbeat-timeout" in reasons
            # Submissions keep flowing through the survivor.
            result = await asyncio.wait_for(server.submit(request_for("x")), 10)
            assert result.ok
            await spare.close()
            await zombie.close()
            await server.stop()

        asyncio.run(scenario())

    def test_lost_worker_can_rejoin_with_fresh_epoch(self):
        async def scenario():
            server = await start_server()
            first = await connect_worker(server, "w-0")
            await wait_for(lambda: server.core.live_workers == 1)
            first_epoch = server.core.workers["w-0"].epoch
            first.kill()
            await wait_for(lambda: server.core.live_workers == 0)
            second = await connect_worker(server, "w-0")
            await wait_for(
                lambda: server.core.live_workers == 1
                and server.core.workers["w-0"].machine.is_dispatchable
            )
            assert server.core.workers["w-0"].epoch > first_epoch
            assert len(server.core.registrations) == 2
            result = await asyncio.wait_for(server.submit(request_for("y")), 10)
            assert result.ok
            await second.close()
            await server.stop()

        asyncio.run(scenario())


class TestFencingAndDuplicates:
    def test_same_epoch_duplicate_complete_suppressed(self):
        """A duplicate completion over the same registration is
        suppressed by the ledger exactly like the sim path, emitting
        ``scheduler.suppressed``."""

        async def scenario():
            server = await start_server()
            raw = RawWorker("raw-0")
            await raw.connect(server.port)
            await wait_for(
                lambda: server.core.workers["raw-0"].machine.is_dispatchable
            )
            request = request_for("dup")
            future = server.submit(request)
            dispatch = await raw.recv(Dispatch)
            done = Complete(
                worker="raw-0",
                epoch=dispatch.epoch,
                request_id=dispatch.request_id,
                ok=True,
            )
            raw.send(done)
            raw.send(done)  # the duplicate
            result = await asyncio.wait_for(future, 10)
            assert result.ok
            await wait_for(
                lambda: server.core.ledger.audit()["suppressed"] == 1,
                message="duplicate suppressed",
            )
            assert server.core.delivered == 1
            assert any(e.type == "scheduler.suppressed" for e in server.events)
            await raw.close()
            await server.stop()

        asyncio.run(scenario())

    def test_stale_epoch_complete_is_fenced_silently(self):
        """A completion carrying a fenced (old) epoch must be dropped
        without touching the ledger — completing it would wrongly close
        a redispatched entry."""

        async def scenario():
            server = await start_server()
            raw = RawWorker("raw-0")
            await raw.connect(server.port)
            await wait_for(
                lambda: server.core.workers["raw-0"].machine.is_dispatchable
            )
            request = request_for("stale")
            future = server.submit(request)
            dispatch = await raw.recv(Dispatch)
            raw.send(
                Complete(
                    worker="raw-0",
                    epoch=dispatch.epoch - 1,  # a fenced past
                    request_id=dispatch.request_id,
                    ok=True,
                )
            )
            await wait_for(lambda: server.fenced >= 1, message="fence counter")
            audit = server.core.ledger.audit()
            assert audit["completed"] == 0 and audit["suppressed"] == 0
            assert not future.done()
            raw.send(
                Complete(
                    worker="raw-0",
                    epoch=dispatch.epoch,
                    request_id=dispatch.request_id,
                    ok=True,
                )
            )
            result = await asyncio.wait_for(future, 10)
            assert result.ok and server.core.delivered == 1
            await raw.close()
            await server.stop()

        asyncio.run(scenario())


class TestDrain:
    def test_drain_hands_off_and_retires(self):
        async def scenario():
            server = await start_server()
            slow = await connect_worker(server, "w-0", echo_executor(0.01))
            peer = await connect_worker(server, "w-1", echo_executor(0.01))
            await wait_for(
                lambda: all(
                    w.machine.is_dispatchable for w in server.core.workers.values()
                )
            )
            futures = [server.submit(request_for(str(i))) for i in range(8)]
            server.drain("w-0")
            results = await asyncio.wait_for(asyncio.gather(*futures), 10)
            assert all(r.ok for r in results)
            await asyncio.wait_for(slow.wait_done(), 5)  # Drained handshake
            await wait_for(
                lambda: server.core.workers["w-0"].machine.is_dead,
                message="drained worker retired",
            )
            drained = [
                e
                for e in server.events
                if e.type == "scheduler.dead" and e.fields["worker"] == "w-0"
            ]
            assert drained[0].fields["reason"] == "drained"
            assert server.core.ledger.audit()["outstanding"] == 0
            with pytest.raises(SchedulingError, match="unknown worker"):
                server.drain("nope")
            await slow.close()
            await peer.close()
            await server.stop()

        asyncio.run(scenario())


class TestHttpFrontEnd:
    @staticmethod
    async def _request(host, port, method, path, body=None):
        import json

        reader, writer = await asyncio.open_connection(host, port)
        payload = json.dumps(body or {}).encode()
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Length: {len(payload)}\r\n\r\n"
            ).encode()
            + payload
        )
        head = await reader.readuntil(b"\r\n\r\n")
        status = int(head.split(b" ")[1])
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.partition(b":")[2])
        data = await reader.readexactly(length)
        writer.close()
        return status, json.loads(data)

    def test_concurrent_requests_flow_gateway_to_workers(self):
        from tests.helpers import listing1_platform

        platform = listing1_platform(
            scheduler=SchedulerConfig(
                enabled=True,
                transport="asyncio",
                pool_size=3,
                heartbeat_interval_s=0.25,
                degraded_after_misses=2,
                dead_after_misses=4,
            )
        )
        # The sim plane must NOT exist on the asyncio transport: the sim
        # dispatch path stays at baseline.
        assert platform.scheduler_plane is None

        async def scenario():
            front = await platform.serve_http()
            host, port = front.host, front.port
            status, body = await self._request(
                host, port, "POST", "/api/classes/Image", {"state": {"width": 2}}
            )
            assert status == 201
            object_id = body["id"]
            results = await asyncio.gather(
                *[
                    self._request(
                        host,
                        port,
                        "POST",
                        f"/api/objects/{object_id}/invokes/resize",
                        {"width": i + 1},
                    )
                    for i in range(12)
                ]
            )
            assert [status for status, _ in results] == [200] * 12
            status, listing = await self._request(host, port, "GET", "/api/workers")
            assert status == 200 and listing["count"] == 3
            assert listing["ledger"]["completed"] == 13
            status, body = await self._request(host, port, "GET", "/api/nope")
            assert status == 404 and body["type"] == "NoRouteError"
            assert await front.stop() == {"pending": 0, "parked": 0}

        asyncio.run(scenario())
        platform.shutdown()

    def test_serve_http_requires_asyncio_transport(self):
        from repro.errors import ValidationError
        from tests.helpers import make_platform

        platform = make_platform(nodes=2)

        async def scenario():
            with pytest.raises(ValidationError, match="serve_http requires"):
                await platform.serve_http()

        asyncio.run(scenario())
        platform.shutdown()

"""keySpecs parsing edge cases — the typed schema the storage backends
index is declared here, so malformed declarations must fail loudly at
package-parse time, not at query time."""

import pytest

from repro.errors import PackageError, ValidationError
from repro.model.pkg import loads_package
from repro.model.types import DataType


def package_with(keyspec_yaml: str) -> str:
    return f"""
name: edge-app
classes:
  - name: Thing
{keyspec_yaml}
"""


class TestKeySpecParsing:
    def test_duplicate_key_names_rejected(self):
        text = package_with(
            """    keySpecs:
      - name: total
        type: FLOAT
      - name: total
        type: INT
"""
        )
        with pytest.raises(PackageError, match="invalid class in .*duplicate state keys"):
            loads_package(text)

    def test_unknown_type_rejected(self):
        text = package_with(
            """    keySpecs:
      - name: total
        type: DECIMAL
"""
        )
        with pytest.raises(ValidationError, match="unknown data type 'DECIMAL'"):
            loads_package(text)

    def test_state_spec_alias_parses_identically(self):
        spec = """    keySpecs:
      - name: total
        type: FLOAT
        default: 0.0
"""
        alias = spec.replace("keySpecs:", "stateSpec:")
        via_keyspecs = loads_package(package_with(spec)).cls("Thing")
        via_statespec = loads_package(package_with(alias)).cls("Thing")
        assert via_keyspecs.state == via_statespec.state

    def test_paper_style_annotated_type_takes_first_word(self):
        # The paper's Listing 1 writes "File Image" — the first word is
        # the type, the rest is prose.
        text = package_with(
            """    keySpecs:
      - name: image
        type: File Image
      - name: format
        type: str lowercase
"""
        )
        state = loads_package(text).cls("Thing").state
        assert state.get("image").dtype is DataType.FILE
        assert state.get("format").dtype is DataType.STR

    def test_keyspecs_must_be_a_list(self):
        text = package_with(
            """    keySpecs:
      total: FLOAT
"""
        )
        with pytest.raises(PackageError, match="keySpecs must be a list"):
            loads_package(text)

    def test_key_without_name_rejected(self):
        text = package_with(
            """    keySpecs:
      - type: FLOAT
"""
        )
        with pytest.raises(PackageError, match="missing 'name'"):
            loads_package(text)

    def test_type_defaults_to_json_and_default_is_kept(self):
        text = package_with(
            """    keySpecs:
      - name: labels
        default: []
"""
        )
        spec = loads_package(text).cls("Thing").state.get("labels")
        assert spec.dtype is DataType.JSON
        assert spec.default == []

    def test_unknown_keyspec_field_rejected(self):
        text = package_with(
            """    keySpecs:
      - name: total
        type: FLOAT
        indexed: true
"""
        )
        with pytest.raises(PackageError):
            loads_package(text)

"""Unit tests for durability policy derivation and the ``persistence``
constraint (declaration → validation → policy)."""

import pytest

from repro.crm.template import RuntimeConfig
from repro.durability.plane import DurabilityConfig
from repro.durability.policy import (
    MODE_DISABLED,
    MODE_ON_COMMIT,
    MODE_PERIODIC,
    DurabilityPolicy,
)
from repro.errors import PackageError, ValidationError
from repro.model.nfr import Constraint, NonFunctionalRequirements
from repro.model.pkg import parse_package


def nfr(persistence=None, persistent=None) -> NonFunctionalRequirements:
    kwargs = {}
    if persistence is not None:
        kwargs["persistence"] = persistence
        kwargs["persistent"] = persistence != "none"
    if persistent is not None:
        kwargs["persistent"] = persistent
    return NonFunctionalRequirements(constraint=Constraint(**kwargs))


class TestConstraint:
    def test_levels_accepted(self):
        for level in ("strong", "standard"):
            assert Constraint(persistence=level).persistence_level == level
        ephemeral = Constraint(persistence="none", persistent=False)
        assert ephemeral.persistence_level == "none"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValidationError, match="persistence"):
            Constraint(persistence="eventual")

    def test_contradiction_rejected(self):
        with pytest.raises(ValidationError, match="contradicts"):
            Constraint(persistence="none", persistent=True)
        with pytest.raises(ValidationError, match="contradicts"):
            Constraint(persistence="strong", persistent=False)

    def test_unset_level_derives_from_boolean(self):
        assert Constraint(persistent=True).persistence_level == "standard"
        assert Constraint(persistent=False).persistence_level == "none"

    def test_explicit_level_is_not_default(self):
        assert Constraint().is_default
        assert not Constraint(persistence="standard").is_default


class TestPackageParsing:
    def test_level_parsed_and_boolean_implied(self):
        package = parse_package(
            {
                "classes": [
                    {"name": "Ledger", "constraint": {"persistence": "strong"}},
                    {"name": "Scratch", "constraint": {"persistence": "none"}},
                ]
            }
        )
        by_name = {cls.name: cls for cls in package.classes}
        ledger = by_name["Ledger"].nfr.constraint
        assert ledger.persistence == "strong" and ledger.persistent
        scratch = by_name["Scratch"].nfr.constraint
        assert scratch.persistence == "none" and not scratch.persistent

    def test_contradictory_document_rejected(self):
        with pytest.raises(PackageError):
            parse_package(
                {
                    "classes": [
                        {
                            "name": "A",
                            "constraint": {
                                "persistence": "none",
                                "persistent": True,
                            },
                        }
                    ]
                }
            )

    def test_bad_level_rejected(self):
        with pytest.raises(PackageError):
            parse_package(
                {"classes": [{"name": "A", "constraint": {"persistence": "tough"}}]}
            )


class TestPolicyFromNfr:
    def test_strong_is_on_commit_with_zero_rpo_budget(self):
        policy = DurabilityPolicy.from_nfr(nfr("strong"))
        assert policy.mode == MODE_ON_COMMIT
        assert policy.rpo_budget_s == 0.0
        assert policy.enabled

    def test_standard_is_periodic_with_interval_budget(self):
        policy = DurabilityPolicy.from_nfr(
            nfr("standard"), defaults=DurabilityConfig(default_interval_s=0.25)
        )
        assert policy.mode == MODE_PERIODIC
        assert policy.interval_s == 0.25
        assert policy.rpo_budget_s == 0.25

    def test_none_is_disabled(self):
        policy = DurabilityPolicy.from_nfr(nfr("none"))
        assert policy.mode == MODE_DISABLED
        assert not policy.enabled

    def test_unset_level_follows_persistent_boolean(self):
        assert DurabilityPolicy.from_nfr(nfr(persistent=True)).mode == MODE_PERIODIC
        assert DurabilityPolicy.from_nfr(nfr(persistent=False)).mode == MODE_DISABLED

    def test_template_knobs_win_over_plane_defaults(self):
        policy = DurabilityPolicy.from_nfr(
            nfr("standard"),
            runtime_config=RuntimeConfig(snapshot_interval_s=0.5, retention_s=30.0),
            defaults=DurabilityConfig(default_interval_s=2.0, default_retention_s=9.0),
        )
        assert policy.interval_s == 0.5
        assert policy.retention_s == 30.0

    def test_plane_defaults_fill_unset_template_knobs(self):
        policy = DurabilityPolicy.from_nfr(
            nfr("standard"),
            runtime_config=RuntimeConfig(),
            defaults=DurabilityConfig(default_interval_s=2.0, default_retention_s=9.0),
        )
        assert policy.interval_s == 2.0
        assert policy.retention_s == 9.0

    def test_without_any_source_interval_defaults_to_one_second(self):
        assert DurabilityPolicy.from_nfr(nfr("standard")).interval_s == 1.0


class TestValidation:
    def test_policy_rejects_bad_values(self):
        with pytest.raises(ValidationError):
            DurabilityPolicy(mode="sometimes")
        with pytest.raises(ValidationError):
            DurabilityPolicy(interval_s=0)
        with pytest.raises(ValidationError):
            DurabilityPolicy(retention_s=-1)
        with pytest.raises(ValidationError):
            DurabilityPolicy(rpo_budget_s=-0.1)

    def test_config_rejects_bad_values(self):
        with pytest.raises(ValidationError):
            DurabilityConfig(bucket="")
        with pytest.raises(ValidationError):
            DurabilityConfig(default_interval_s=0)
        with pytest.raises(ValidationError):
            DurabilityConfig(default_interval_s=True)
        with pytest.raises(ValidationError):
            DurabilityConfig(default_retention_s=0)

    def test_runtime_config_validates_snapshot_knobs(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(snapshot_interval_s=0)
        with pytest.raises(ValidationError):
            RuntimeConfig(retention_s=float("nan"))

    def test_describe_shape(self):
        policy = DurabilityPolicy.from_nfr(nfr("strong"))
        assert policy.describe() == {
            "mode": "on_commit",
            "interval_s": 1.0,
            "retention_s": None,
            "rpo_budget_s": 0.0,
        }

"""Tests for in-place class redeployment (update_class)."""

import pytest

from repro.errors import DeploymentError, UnknownClassError
from repro.model.pkg import loads_package

V1 = """
classes:
  - name: Doc
    keySpecs:
      - { name: text, type: STR, default: "" }
    functions:
      - { name: process, image: doc/v1 }
"""

V2_ADDITIVE = """
classes:
  - name: Doc
    keySpecs:
      - { name: text, type: STR, default: "" }
      - { name: words, type: INT, default: 0 }
    functions:
      - { name: process, image: doc/v2 }
      - { name: summarize, image: doc/v2 }
"""

V2_DROPS_KEY = """
classes:
  - name: Doc
    functions:
      - { name: process, image: doc/v2 }
"""

V2_RETYPES_KEY = """
classes:
  - name: Doc
    keySpecs:
      - { name: text, type: INT }
    functions:
      - { name: process, image: doc/v2 }
"""


@pytest.fixture
def versioned_platform(bare_platform):
    platform = bare_platform

    @platform.function("doc/v1")
    def process_v1(ctx):
        ctx.state["text"] = str(ctx.payload.get("text", "")).lower()
        return {"processed_by": "v1"}

    @platform.function("doc/v2")
    def process_v2(ctx):
        text = str(ctx.payload.get("text", ctx.state.get("text") or ""))
        ctx.state["text"] = text.upper()
        if "words" in [k.name for k in platform.crm.resolved("Doc").state]:
            ctx.state["words"] = len(text.split())
        return {"processed_by": "v2"}

    platform.deploy(V1)
    return platform


def resolved_of(yaml_text):
    return loads_package(yaml_text).resolved_classes()["Doc"]


class TestUpdateClass:
    def test_new_image_takes_effect(self, versioned_platform):
        platform = versioned_platform
        obj = platform.new_object("Doc")
        assert platform.invoke(obj, "process", {"text": "Hi"}).output == {
            "processed_by": "v1"
        }
        platform.crm.update_class(resolved_of(V2_ADDITIVE))
        assert platform.invoke(obj, "process", {"text": "Hi"}).output == {
            "processed_by": "v2"
        }

    def test_state_survives_update(self, versioned_platform):
        platform = versioned_platform
        obj = platform.new_object("Doc")
        platform.invoke(obj, "process", {"text": "KeepMe"})
        version_before = platform.get_object(obj)["version"]
        platform.crm.update_class(resolved_of(V2_ADDITIVE))
        record = platform.get_object(obj)
        assert record["state"]["text"] == "keepme"  # v1's lowercase output
        assert record["version"] == version_before

    def test_added_method_available(self, versioned_platform):
        platform = versioned_platform
        platform.crm.update_class(resolved_of(V2_ADDITIVE))
        obj = platform.new_object("Doc")
        assert platform.invoke(obj, "summarize", {"text": "a b c"}).ok

    def test_added_state_key_usable(self, versioned_platform):
        platform = versioned_platform
        platform.crm.update_class(resolved_of(V2_ADDITIVE))
        obj = platform.new_object("Doc")
        platform.invoke(obj, "process", {"text": "one two three"})
        assert platform.get_object(obj)["state"]["words"] == 3

    def test_dropping_key_rejected(self, versioned_platform):
        with pytest.raises(DeploymentError, match="drops state key"):
            versioned_platform.crm.update_class(resolved_of(V2_DROPS_KEY))

    def test_retyping_key_rejected(self, versioned_platform):
        with pytest.raises(DeploymentError, match="changes the type"):
            versioned_platform.crm.update_class(resolved_of(V2_RETYPES_KEY))

    def test_rejected_update_leaves_runtime_intact(self, versioned_platform):
        platform = versioned_platform
        obj = platform.new_object("Doc")
        with pytest.raises(DeploymentError):
            platform.crm.update_class(resolved_of(V2_DROPS_KEY))
        assert platform.invoke(obj, "process", {"text": "Still"}).output == {
            "processed_by": "v1"
        }

    def test_update_unknown_class_rejected(self, versioned_platform):
        other = loads_package(
            "classes:\n  - name: Other\n"
        ).resolved_classes()["Other"]
        with pytest.raises(UnknownClassError):
            versioned_platform.crm.update_class(other)

    def test_update_can_switch_template(self, versioned_platform):
        from repro.crm.template import ClassRuntimeTemplate, RuntimeConfig

        platform = versioned_platform
        assert platform.crm.runtime("Doc").engine_name == "knative"
        bypass = ClassRuntimeTemplate(
            name="bypass", config=RuntimeConfig(engine="deployment", min_scale_override=2)
        )
        runtime = platform.crm.update_class(resolved_of(V2_ADDITIVE), template=bypass)
        assert runtime.engine_name == "deployment"
        obj = platform.new_object("Doc")
        assert platform.invoke(obj, "process", {"text": "x"}).ok

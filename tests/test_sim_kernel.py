"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Environment, all_of, any_of


def run_process(env, generator):
    return env.run(until=env.process(generator))


class TestTimeAdvance:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_timeout_advances_clock(self, env):
        def proc(env):
            yield env.timeout(2.5)
            return env.now

        assert run_process(env, proc(env)) == 2.5

    def test_sequential_timeouts_accumulate(self, env):
        def proc(env):
            yield env.timeout(1.0)
            yield env.timeout(0.5)
            return env.now

        assert run_process(env, proc(env)) == 1.5

    def test_zero_timeout_allowed(self, env):
        def proc(env):
            yield env.timeout(0)
            return env.now

        assert run_process(env, proc(env)) == 0.0

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_sleep_is_timeout_alias(self, env):
        def proc(env):
            yield env.sleep(3.0)
            return env.now

        assert run_process(env, proc(env)) == 3.0

    def test_run_until_time_sets_now(self, env):
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_raises(self, env):
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)


class TestEvents:
    def test_event_succeed_delivers_value(self, env):
        ev = env.event()

        def trigger(env):
            yield env.timeout(1.0)
            ev.succeed("payload")

        def waiter(env):
            value = yield ev
            return value, env.now

        env.process(trigger(env))
        assert run_process(env, waiter(env)) == ("payload", 1.0)

    def test_event_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, env):
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_failed_event_raises_in_waiter(self, env):
        ev = env.event()

        def trigger(env):
            yield env.timeout(0.1)
            ev.fail(ValueError("boom"))

        def waiter(env):
            try:
                yield ev
            except ValueError as exc:
                return str(exc)
            return "no error"

        env.process(trigger(env))
        assert run_process(env, waiter(env)) == "boom"

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_waiting_on_processed_event_returns_immediately(self, env):
        ev = env.event()
        ev.succeed(7)
        env.run()  # process the event

        def late(env):
            value = yield ev
            return value

        assert run_process(env, late(env)) == 7


class TestProcesses:
    def test_process_return_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return 42

        assert run_process(env, proc(env)) == 42

    def test_process_requires_generator(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_process_waits_on_process(self, env):
        def inner(env):
            yield env.timeout(2)
            return "inner-done"

        def outer(env):
            result = yield env.process(inner(env))
            return result, env.now

        assert run_process(env, outer(env)) == ("inner-done", 2.0)

    def test_yielding_non_event_fails_process(self, env):
        def bad(env):
            yield 42

        with pytest.raises(SimulationError):
            env.run(until=env.process(bad(env)))

    def test_unhandled_crash_surfaces_at_run(self, env):
        def crash(env):
            yield env.timeout(1)
            raise RuntimeError("unexpected")

        env.process(crash(env))
        with pytest.raises(SimulationError, match="unhandled failure"):
            env.run()

    def test_watched_crash_propagates_to_waiter(self, env):
        def crash(env):
            yield env.timeout(1)
            raise RuntimeError("boom")

        def waiter(env):
            try:
                yield env.process(crash(env))
            except RuntimeError:
                return "caught"
            return "missed"

        assert run_process(env, waiter(env)) == "caught"

    def test_is_alive(self, env):
        def proc(env):
            yield env.timeout(5)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_same_time_events_fire_in_fifo_order(self, env):
        order = []

        def proc(env, tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(env, tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_deadlock_detected_for_run_until_event(self, env):
        never = env.event()
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=never)


class TestConditions:
    def test_all_of_waits_for_slowest(self, env):
        def worker(env, delay):
            yield env.timeout(delay)
            return delay

        def waiter(env):
            procs = [env.process(worker(env, d)) for d in (3, 1, 2)]
            values = yield all_of(env, procs)
            return values, env.now

        values, now = run_process(env, waiter(env))
        assert values == [3, 1, 2]
        assert now == 3.0

    def test_all_of_empty_fires_immediately(self, env):
        def waiter(env):
            values = yield all_of(env, [])
            return values

        assert run_process(env, waiter(env)) == []

    def test_all_of_fails_if_any_child_fails(self, env):
        def ok(env):
            yield env.timeout(1)

        def bad(env):
            yield env.timeout(0.5)
            raise ValueError("child failed")

        def waiter(env):
            try:
                yield all_of(env, [env.process(ok(env)), env.process(bad(env))])
            except ValueError:
                return "caught"
            return "missed"

        assert run_process(env, waiter(env)) == "caught"

    def test_any_of_returns_first(self, env):
        def worker(env, delay, tag):
            yield env.timeout(delay)
            return tag

        def waiter(env):
            procs = [
                env.process(worker(env, 2, "slow")),
                env.process(worker(env, 1, "fast")),
            ]
            index, value = yield any_of(env, procs)
            return index, value, env.now

        assert run_process(env, waiter(env)) == (1, "fast", 1.0)

    def test_any_of_empty_rejected(self, env):
        with pytest.raises(SimulationError):
            any_of(env, [])


class TestStep:
    def test_step_empty_schedule_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_reports_next_event_time(self, env):
        env.timeout(4.0)
        assert env.peek() == 4.0

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

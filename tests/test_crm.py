"""Unit tests for the control plane: templates, manager, optimizer."""

import pytest

from repro.crm.optimizer import RequirementOptimizer
from repro.crm.template import (
    ClassRuntimeTemplate,
    RuntimeConfig,
    TemplateCatalog,
    TemplateSelector,
    default_catalog,
)
from repro.errors import (
    DeploymentError,
    TemplateSelectionError,
    UnknownClassError,
    UnknownFunctionError,
    ValidationError,
)
from repro.invoker.router import PlacementPolicy
from repro.model.nfr import Constraint, NonFunctionalRequirements, QosRequirement
from repro.platform.oparaca import Oparaca, PlatformConfig

from tests.conftest import LISTING1_YAML, register_image_handlers


def nfr(throughput=None, availability=None, latency=None, persistent=True, budget=None):
    return NonFunctionalRequirements(
        qos=QosRequirement(
            throughput_rps=throughput, availability=availability, latency_ms=latency
        ),
        constraint=Constraint(persistent=persistent, budget_usd_per_month=budget),
    )


class TestSelectors:
    def test_empty_selector_matches_anything(self):
        assert TemplateSelector().matches(nfr())
        assert TemplateSelector().matches(nfr(throughput=1000, persistent=False))

    def test_persistence_condition(self):
        selector = TemplateSelector(persistent=False)
        assert selector.matches(nfr(persistent=False))
        assert not selector.matches(nfr(persistent=True))

    def test_throughput_threshold(self):
        selector = TemplateSelector(min_throughput_rps=500)
        assert selector.matches(nfr(throughput=500))
        assert not selector.matches(nfr(throughput=499))
        assert not selector.matches(nfr())  # undeclared does not match

    def test_latency_bound_requirement(self):
        selector = TemplateSelector(requires_latency_bound=True)
        assert selector.matches(nfr(latency=50))
        assert not selector.matches(nfr())

    def test_availability_threshold(self):
        selector = TemplateSelector(min_availability=0.999)
        assert selector.matches(nfr(availability=0.9995))
        assert not selector.matches(nfr(availability=0.99))

    def test_budget_requirement(self):
        selector = TemplateSelector(requires_budget=True)
        assert selector.matches(nfr(budget=100))
        assert not selector.matches(nfr())


class TestCatalog:
    def test_empty_catalog_rejected(self):
        with pytest.raises(ValidationError):
            TemplateCatalog([])

    def test_duplicate_names_rejected(self):
        template = ClassRuntimeTemplate(name="x")
        with pytest.raises(ValidationError):
            TemplateCatalog([template, template])

    def test_priority_breaks_ties(self):
        low = ClassRuntimeTemplate(name="low", priority=1)
        high = ClassRuntimeTemplate(name="high", priority=9)
        assert TemplateCatalog([low, high]).select(nfr()).name == "high"

    def test_no_match_raises(self):
        only = ClassRuntimeTemplate(
            name="strict", selector=TemplateSelector(requires_budget=True)
        )
        with pytest.raises(TemplateSelectionError):
            TemplateCatalog([only]).select(nfr())

    def test_template_by_name(self):
        catalog = default_catalog()
        assert catalog.template("default").priority == 0
        with pytest.raises(TemplateSelectionError):
            catalog.template("ghost")

    def test_runtime_config_validation(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(engine="lambda")
        with pytest.raises(ValidationError):
            RuntimeConfig(replication=0)


class TestDefaultCatalog:
    @pytest.mark.parametrize(
        "requirements,expected",
        [
            (nfr(), "default"),
            (nfr(persistent=False), "in-memory-ephemeral"),
            (nfr(latency=50), "low-latency"),
            (nfr(availability=0.999), "high-availability"),
            (nfr(throughput=1000), "high-throughput"),
            (nfr(budget=20), "cost-saver"),
            # Combination: ephemeral outranks latency by priority.
            (nfr(latency=50, persistent=False), "in-memory-ephemeral"),
            # Combination: latency outranks throughput.
            (nfr(latency=50, throughput=1000), "low-latency"),
        ],
    )
    def test_selection(self, requirements, expected):
        assert default_catalog().select(requirements).name == expected

    def test_paper_listing1_uses_default(self):
        # throughput: 100 < the high-throughput threshold.
        assert default_catalog().select(nfr(throughput=100)).name == "default"


class TestManager:
    def test_deploy_package_creates_runtimes(self, platform):
        assert platform.crm.deployed_classes() == ("Image", "LabelledImage")
        runtime = platform.crm.runtime("Image")
        assert set(runtime.services) == {"resize", "changeFormat"}
        assert runtime.engine_name == "knative"

    def test_macro_gets_no_service(self, platform):
        runtime = platform.crm.runtime("Image")
        assert "thumbnail" not in runtime.services

    def test_child_runtime_serves_inherited_methods(self, platform):
        runtime = platform.crm.runtime("LabelledImage")
        assert set(runtime.services) == {"resize", "changeFormat", "detectObject"}

    def test_duplicate_deploy_rejected(self, platform):
        with pytest.raises(DeploymentError, match="already deployed"):
            platform.deploy(LISTING1_YAML)

    def test_per_class_dht_collections(self, platform):
        image_dht = platform.crm.dht_for("Image")
        labelled_dht = platform.crm.dht_for("LabelledImage")
        assert image_dht is not labelled_dht
        assert image_dht.collection == "objects.Image"

    def test_unknown_class_lookups(self, platform):
        with pytest.raises(UnknownClassError):
            platform.crm.runtime("Ghost")
        with pytest.raises(UnknownClassError):
            platform.crm.resolved("Ghost")

    def test_unknown_service_lookup(self, platform):
        with pytest.raises(UnknownFunctionError):
            platform.crm.service_for("Image", "thumbnail")

    def test_undeploy_class(self, platform):
        platform.crm.undeploy_class("LabelledImage")
        assert platform.crm.deployed_classes() == ("Image",)
        assert "LabelledImage.detectObject" not in platform.crm.knative.service_names
        with pytest.raises(UnknownClassError):
            platform.crm.undeploy_class("LabelledImage")

    def test_template_override_at_deploy(self, bare_platform):
        register_image_handlers(bare_platform)
        from repro.model.pkg import loads_package

        package = loads_package(LISTING1_YAML)
        resolved = package.resolved_classes()
        forced = ClassRuntimeTemplate(
            name="forced",
            config=RuntimeConfig(engine="deployment", placement=PlacementPolicy.RANDOM),
        )
        runtime = bare_platform.crm.deploy_class(resolved["Image"], template=forced)
        assert runtime.engine_name == "deployment"
        assert runtime.router.policy is PlacementPolicy.RANDOM

    def test_min_scale_override_prewarms(self, bare_platform):
        register_image_handlers(bare_platform)
        from repro.model.pkg import loads_package

        package = loads_package(LISTING1_YAML)
        resolved = package.resolved_classes()
        warm = ClassRuntimeTemplate(
            name="warm", config=RuntimeConfig(engine="deployment", min_scale_override=3)
        )
        runtime = bare_platform.crm.deploy_class(resolved["Image"], template=warm)
        assert all(svc.replicas == 3 for svc in runtime.services.values())

    def test_replication_capped_by_cluster(self, bare_platform):
        register_image_handlers(bare_platform)
        from repro.model.pkg import loads_package

        resolved = loads_package(LISTING1_YAML).resolved_classes()
        replicated = ClassRuntimeTemplate(
            name="r9", config=RuntimeConfig(replication=9)
        )
        runtime = bare_platform.crm.deploy_class(resolved["Image"], template=replicated)
        assert runtime.dht.model.replication == 3  # only 3 nodes exist

    def test_describe_shape(self, platform):
        description = platform.crm.describe()
        assert [d["class"] for d in description] == ["Image", "LabelledImage"]
        assert description[0]["template"] == "default"
        assert "resize" in description[0]["services"]


class TestOptimizer:
    def _busy_platform(self):
        # Pin the class to a plain deployment (no KPA) so every scaling
        # decision observed comes from the requirement optimizer alone.
        pinned = TemplateCatalog(
            [
                ClassRuntimeTemplate(
                    name="pinned",
                    config=RuntimeConfig(engine="deployment", min_scale_override=1),
                )
            ]
        )
        platform = Oparaca(PlatformConfig(nodes=3, catalog=pinned))

        @platform.function("img/slow", service_time_s=0.2)
        def slow(ctx):
            return {}

        platform.deploy(
            """
classes:
  - name: Busy
    qos: { throughput: 400 }
    functions:
      - name: work
        image: img/slow
        provision: { concurrency: 2, minScale: 1 }
"""
        )
        return platform

    def test_scales_up_on_throughput_shortfall(self):
        platform = self._busy_platform()
        optimizer = RequirementOptimizer(
            platform.env, platform.crm, platform.monitoring, interval_s=1.0
        )
        obj = platform.new_object("Busy")

        def client(env):
            from repro.invoker.request import InvocationRequest

            while env.now < 12.0:
                yield platform.engine.invoke(
                    InvocationRequest(object_id=obj, fn_name="work")
                )

        for _ in range(12):
            platform.env.process(client(platform.env))
        platform.env.run(until=12.0)
        optimizer.stop()
        svc = platform.crm.runtime("Busy").services["work"]
        assert svc.replicas > 1
        assert any(d.action == "scale-up" for d in optimizer.decisions)
        reasons = [d.reason for d in optimizer.decisions]
        assert any("throughput" in reason for reason in reasons)

    def test_no_action_without_qos(self, platform):
        optimizer = RequirementOptimizer(
            platform.env, platform.crm, platform.monitoring, interval_s=1.0
        )
        # Image declares throughput: 100 - but LabelledImage inherits it
        # too; with zero load, saturation never holds, so no decisions.
        platform.advance(5.0)
        optimizer.stop()
        assert optimizer.decisions == []

    def test_scale_down_after_idle_grace(self):
        platform = self._busy_platform()
        optimizer = RequirementOptimizer(
            platform.env,
            platform.crm,
            platform.monitoring,
            interval_s=1.0,
            scale_down_grace_s=3.0,
        )
        svc = platform.crm.runtime("Busy").services["work"]
        svc.deployment.scale(4)
        platform.advance(10.0)
        optimizer.stop()
        assert svc.replicas < 4
        assert any(d.action == "scale-down" for d in optimizer.decisions)

"""Tests for object listing and the delete/write-behind interaction."""

import pytest

from repro.errors import UnknownClassError


class TestListObjects:
    def test_lists_created_objects(self, platform):
        ids = {platform.new_object("Image") for _ in range(5)}
        assert set(platform.list_objects("Image")) == ids

    def test_listing_is_per_class(self, platform):
        image = platform.new_object("Image")
        labelled = platform.new_object("LabelledImage")
        assert platform.list_objects("Image") == [image]
        assert platform.list_objects("LabelledImage") == [labelled]

    def test_deleted_objects_disappear(self, platform):
        keep = platform.new_object("Image")
        drop = platform.new_object("Image")
        platform.delete_object(drop)
        assert platform.list_objects("Image") == [keep]

    def test_unknown_class_raises(self, platform):
        with pytest.raises(UnknownClassError):
            platform.list_objects("Ghost")

    def test_gateway_route(self, platform):
        ids = sorted(platform.new_object("Image") for _ in range(3))
        response = platform.http("GET", "/api/classes/Image/objects")
        assert response.status == 200
        assert response.body["count"] == 3
        assert response.body["objects"] == ids

    def test_gateway_unknown_class_404(self, platform):
        assert platform.http("GET", "/api/classes/Ghost/objects").status == 404

    def test_evicted_objects_still_listed_when_persistent(self):
        from repro.crm.template import ClassRuntimeTemplate, RuntimeConfig, TemplateCatalog
        from repro.platform.oparaca import Oparaca, PlatformConfig

        catalog = TemplateCatalog(
            [ClassRuntimeTemplate(name="tiny", config=RuntimeConfig(dht_max_entries=2))]
        )
        platform = Oparaca(PlatformConfig(nodes=2, catalog=catalog))
        platform.deploy("classes:\n  - name: T\n")
        ids = {platform.new_object("T") for _ in range(10)}
        platform.flush()
        assert set(platform.list_objects("T")) == ids


class TestDeleteWriteBehindRace:
    def test_buffered_update_does_not_resurrect_deleted_object(self):
        """An unflushed update must not be re-written after delete."""
        from repro.crm.template import ClassRuntimeTemplate, RuntimeConfig, TemplateCatalog
        from repro.platform.oparaca import Oparaca, PlatformConfig
        from repro.storage.write_behind import WriteBehindConfig

        catalog = TemplateCatalog(
            [
                ClassRuntimeTemplate(
                    name="slow-flush",
                    config=RuntimeConfig(
                        write_behind=WriteBehindConfig(batch_size=100, linger_s=100.0)
                    ),
                )
            ]
        )
        platform = Oparaca(PlatformConfig(nodes=2, catalog=catalog))
        platform.register_image("t/set", lambda ctx: None)
        platform.deploy(
            "classes:\n  - name: T\n    keySpecs: [{name: v, type: INT}]\n"
            "    functions: [{name: set, image: t/set}]\n"
        )
        obj = platform.new_object("T", {"v": 1})
        platform.update_object(obj, {"v": 2})  # buffered, not yet flushed
        platform.delete_object(obj)
        platform.advance(200.0)  # well past the linger window
        assert platform.store.get_sync("objects.T", obj) is None
        assert obj not in platform.list_objects("T")

"""End-to-end scenarios exercising the whole platform stack."""

import pytest

from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.sim.kernel import all_of

from tests.conftest import LISTING1_YAML, register_image_handlers


class TestTutorialFlow:
    """The six tutorial steps (paper §IV) as one scenario."""

    def test_full_walkthrough(self):
        # 1. Install the platform.
        oparaca = Oparaca(PlatformConfig(nodes=3))
        # 3. Create functions.
        register_image_handlers(oparaca)
        # 4-5. Define and deploy the class definition.
        runtimes = oparaca.deploy(LISTING1_YAML)
        assert {r.cls for r in runtimes} == {"Image", "LabelledImage"}
        # 5. Interact with objects (CLI/REST equivalent calls).
        obj = oparaca.new_object("Image", {"width": 640})
        result = oparaca.invoke(obj, "resize", {"width": 64})
        assert result.ok
        # 6. Optimize the deployment via NFRs: the class declared
        # throughput 100, which the catalog maps to the default template.
        assert runtimes[0].template.name == "default"
        oparaca.shutdown()

    def test_durability_across_memory_loss(self):
        """State survives the in-memory tier via write-behind."""
        oparaca = Oparaca(PlatformConfig(nodes=3))
        register_image_handlers(oparaca)
        oparaca.deploy(LISTING1_YAML)
        obj = oparaca.new_object("Image")
        oparaca.invoke(obj, "resize", {"width": 555})
        oparaca.flush()
        # Simulate losing every node's memory.
        dht = oparaca.crm.dht_for("Image")
        for node_mem in dht._mem.values():
            node_mem.clear()
        record = oparaca.get_object(obj)  # reloaded from the document store
        assert record["state"]["width"] == 555

    def test_ephemeral_class_loses_state_on_memory_loss(self):
        oparaca = Oparaca(PlatformConfig(nodes=3))
        oparaca.register_image("img/noop", lambda ctx: {})
        oparaca.deploy(
            """
classes:
  - name: Cache
    constraint: { persistent: false }
    keySpecs:
      - { name: value, type: STR }
"""
        )
        obj = oparaca.new_object("Cache", {"value": "volatile"})
        dht = oparaca.crm.dht_for("Cache")
        for node_mem in dht._mem.values():
            node_mem.clear()
        from repro.errors import UnknownObjectError

        with pytest.raises(UnknownObjectError):
            oparaca.get_object(obj)


class TestMixedWorkload:
    def test_many_objects_many_classes_under_load(self):
        oparaca = Oparaca(PlatformConfig(nodes=4))
        register_image_handlers(oparaca)
        oparaca.deploy(LISTING1_YAML)
        images = [oparaca.new_object("Image") for _ in range(20)]
        labelled = [oparaca.new_object("LabelledImage") for _ in range(10)]

        def drive(object_id, width):
            from repro.invoker.request import InvocationRequest

            result = yield oparaca.engine.invoke(
                InvocationRequest(
                    object_id=object_id, fn_name="resize", payload={"width": width}
                )
            )
            assert result.ok
            return result

        procs = [
            oparaca.env.process(drive(obj, i + 1))
            for i, obj in enumerate(images + labelled)
        ]
        oparaca.run(all_of(oparaca.env, procs))
        for i, obj in enumerate(images + labelled):
            assert oparaca.get_object(obj)["state"]["width"] == i + 1
        oparaca.shutdown()
        # Everything durable after shutdown.
        total_docs = oparaca.store.count("objects.Image") + oparaca.store.count(
            "objects.LabelledImage"
        )
        assert total_docs == 30

    def test_files_isolated_per_object(self, platform):
        a = platform.new_object("Image")
        b = platform.new_object("Image")
        platform.upload_file(a, "image", b"AAA")
        platform.upload_file(b, "image", b"BBB")
        assert platform.download_file(a, "image") == b"AAA"
        assert platform.download_file(b, "image") == b"BBB"

    def test_upload_versions_do_not_collide(self, platform):
        obj = platform.new_object("Image")
        first_key = platform.upload_file(obj, "image", b"v1")
        second_key = platform.upload_file(obj, "image", b"v2")
        assert first_key != second_key
        assert platform.download_file(obj, "image") == b"v2"


class TestCrossClassDataflow:
    def test_pipeline_spanning_classes(self, bare_platform):
        platform = bare_platform

        @platform.function("x/summarize", service_time_s=0.01)
        def summarize(ctx):
            return {"total": sum(ctx.payload.get("values", []))}

        @platform.function("x/emit", service_time_s=0.01)
        def emit(ctx):
            return {"values": [1, 2, 3]}

        @platform.function("x/store", service_time_s=0.01)
        def store(ctx):
            ctx.state["total"] = int(ctx.payload["total"])
            return {"stored": ctx.state["total"]}

        platform.deploy(
            """
classes:
  - name: Report
    keySpecs:
      - { name: total, type: INT, default: 0 }
    functions:
      - { name: store, image: x/store }
  - name: Collector
    functions:
      - { name: emit, image: x/emit, mutable: false }
      - { name: summarize, image: x/summarize, mutable: false }
      - name: rollup
        type: MACRO
        dataflow:
          steps:
            - { id: e, function: emit }
            - id: s
              function: summarize
              args: { values: "${e.values}" }
          output: s
"""
        )
        collector = platform.new_object("Collector")
        report = platform.new_object("Report")
        rollup = platform.invoke(collector, "rollup")
        assert rollup.output == {"total": 6}
        platform.invoke(report, "store", {"total": rollup.output["total"]})
        assert platform.get_object(report)["state"]["total"] == 6


class TestScaleToZeroLifecycle:
    def test_idle_service_scales_to_zero_then_recovers(self):
        from repro.faas.knative import KnativeModel

        oparaca = Oparaca(
            PlatformConfig(
                nodes=3,
                knative=KnativeModel(cold_start_s=0.5, scale_to_zero_grace_s=10.0),
            )
        )
        register_image_handlers(oparaca)
        oparaca.deploy(LISTING1_YAML)
        obj = oparaca.new_object("Image")
        oparaca.invoke(obj, "resize", {"width": 1})
        service = oparaca.crm.runtime("Image").services["resize"]
        oparaca.advance(30.0)  # idle beyond grace; autoscaler ticks run
        assert service.replicas == 0
        result = oparaca.invoke(obj, "resize", {"width": 2})
        assert result.ok
        assert result.latency_s >= 0.5  # cold start paid
        assert service.cold_starts >= 1

"""Unit tests for the dataflow abstraction."""

import pytest

from repro.errors import DataflowError
from repro.model.dataflow import (
    DataflowSpec,
    DataflowStep,
    resolve_path,
    resolve_template,
)


def spec_of(*steps, output=None):
    return DataflowSpec(steps=tuple(steps), output=output)


class TestReferences:
    def test_resolve_path_dict(self):
        assert resolve_path("input.a.b", {"input": {"a": {"b": 7}}}) == 7

    def test_resolve_path_list_index(self):
        assert resolve_path("s.items.1", {"s": {"items": [10, 20]}}) == 20

    def test_resolve_path_unknown_root(self):
        with pytest.raises(DataflowError, match="unknown reference root"):
            resolve_path("nope.x", {"input": {}})

    def test_resolve_path_missing_field(self):
        with pytest.raises(DataflowError, match="missing field"):
            resolve_path("input.x", {"input": {}})

    def test_resolve_path_bad_index(self):
        with pytest.raises(DataflowError):
            resolve_path("s.5", {"s": [1]})

    def test_resolve_path_scalar_descend(self):
        with pytest.raises(DataflowError, match="cannot descend"):
            resolve_path("input.a.b", {"input": {"a": 3}})

    def test_whole_reference_preserves_type(self):
        assert resolve_template("${input.n}", {"input": {"n": 42}}) == 42

    def test_interpolation_stringifies(self):
        out = resolve_template("w=${input.w},h=${input.h}", {"input": {"w": 1, "h": 2}})
        assert out == "w=1,h=2"

    def test_plain_string_passthrough(self):
        assert resolve_template("constant", {}) == "constant"


class TestDataflowStep:
    def test_invalid_id(self):
        with pytest.raises(DataflowError):
            DataflowStep(id="bad id", function="f")

    def test_missing_function(self):
        with pytest.raises(DataflowError):
            DataflowStep(id="a", function="")

    def test_dependencies_from_inputs(self):
        step = DataflowStep(id="c", function="f", inputs=("a", "$", "b"))
        assert step.dependencies() == {"a", "b"}

    def test_dependencies_from_target(self):
        step = DataflowStep(id="c", function="f", target="@maker")
        assert "maker" in step.dependencies()

    def test_dependencies_from_args(self):
        step = DataflowStep(id="c", function="f", args={"x": "${a.out}", "y": "${input.z}"})
        assert step.dependencies() == {"a"}


class TestDataflowSpec:
    def test_empty_rejected(self):
        with pytest.raises(DataflowError, match="no steps"):
            spec_of()

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DataflowError, match="duplicate"):
            spec_of(
                DataflowStep(id="a", function="f"),
                DataflowStep(id="a", function="g"),
            )

    def test_unknown_reference_rejected(self):
        with pytest.raises(DataflowError, match="unknown step"):
            spec_of(DataflowStep(id="a", function="f", inputs=("ghost",)))

    def test_bad_target_rejected(self):
        with pytest.raises(DataflowError, match="target"):
            spec_of(DataflowStep(id="a", function="f", target="other"))

    def test_unknown_output_rejected(self):
        with pytest.raises(DataflowError, match="output"):
            spec_of(DataflowStep(id="a", function="f"), output="ghost")

    def test_cycle_rejected(self):
        with pytest.raises(DataflowError, match="cycle"):
            spec_of(
                DataflowStep(id="a", function="f", inputs=("b",)),
                DataflowStep(id="b", function="g", inputs=("a",)),
            )

    def test_self_cycle_rejected(self):
        with pytest.raises(DataflowError, match="cycle"):
            spec_of(DataflowStep(id="a", function="f", inputs=("a",)))

    def test_waves_linear_chain(self):
        spec = spec_of(
            DataflowStep(id="a", function="f"),
            DataflowStep(id="b", function="g", inputs=("a",)),
            DataflowStep(id="c", function="h", inputs=("b",)),
        )
        assert [[s.id for s in wave] for wave in spec.waves()] == [["a"], ["b"], ["c"]]

    def test_waves_diamond_parallelism(self):
        spec = spec_of(
            DataflowStep(id="src", function="f"),
            DataflowStep(id="left", function="g", inputs=("src",)),
            DataflowStep(id="right", function="h", inputs=("src",)),
            DataflowStep(id="sink", function="k", inputs=("left", "right")),
        )
        waves = [[s.id for s in wave] for wave in spec.waves()]
        assert waves == [["src"], ["left", "right"], ["sink"]]

    def test_independent_steps_one_wave(self):
        spec = spec_of(
            DataflowStep(id="a", function="f"),
            DataflowStep(id="b", function="g"),
        )
        assert [[s.id for s in wave] for wave in spec.waves()] == [["a", "b"]]

    def test_step_lookup(self):
        spec = spec_of(DataflowStep(id="a", function="f"))
        assert spec.step("a").function == "f"
        with pytest.raises(DataflowError):
            spec.step("missing")

    def test_referenced_functions(self):
        spec = spec_of(
            DataflowStep(id="a", function="resize"),
            DataflowStep(id="b", function="resize", inputs=("a",)),
            DataflowStep(id="c", function="label", inputs=("b",)),
        )
        assert spec.referenced_functions() == {"resize", "label"}

"""Unit tests for the FaaS substrate: contract, registry, engines."""

import pytest

from repro.errors import InvocationError, ValidationError
from repro.faas.deployment_engine import DeploymentEngine, DeploymentModel
from repro.faas.knative import KnativeEngine, KnativeModel
from repro.faas.registry import FunctionRegistry
from repro.faas.runtime import InvocationTask, TaskCompletion, TaskContext
from repro.model.function import FunctionDefinition, ProvisionSpec
from repro.orchestrator.cluster import Cluster
from repro.orchestrator.resources import ResourceSpec
from repro.orchestrator.scheduler import Scheduler


def task(**kwargs):
    defaults = dict(
        request_id="r1", cls="C", object_id="o1", fn_name="f", image="img/f"
    )
    defaults.update(kwargs)
    return InvocationTask(**defaults)


class TestTaskContext:
    def test_state_diffing(self):
        ctx = TaskContext(task(state={"a": 1, "b": 2}))
        ctx.state["a"] = 10
        ctx.state["c"] = 3
        assert ctx.state_updates() == {"a": 10, "c": 3}

    def test_unchanged_state_no_updates(self):
        ctx = TaskContext(task(state={"a": 1}))
        assert ctx.state_updates() == {}

    def test_completion_carries_output_and_updates(self):
        ctx = TaskContext(task(state={"a": 1}))
        ctx.state["a"] = 2
        ctx.update_file("image", "bucket/key")
        completion = ctx.completion({"done": True})
        assert completion.ok
        assert completion.output == {"done": True}
        assert completion.state_updates == {"a": 2}
        assert completion.file_updates == {"image": "bucket/key"}

    def test_immutable_task_rejects_mutation(self):
        ctx = TaskContext(task(state={"a": 1}, immutable=True))
        ctx.state["a"] = 2
        completion = ctx.completion({})
        assert not completion.ok
        assert "immutable" in completion.error

    def test_immutable_task_allows_pure_read(self):
        ctx = TaskContext(task(state={"a": 1}, immutable=True))
        assert ctx.completion({"read": ctx.state["a"]}).ok

    def test_services_lookup(self):
        ctx = TaskContext(task(), services={"db": "the-db"})
        assert ctx.service("db") == "the-db"
        with pytest.raises(ValidationError):
            ctx.service("missing")

    def test_failure_completion(self):
        completion = TaskCompletion.failure("r9", "boom")
        assert not completion.ok
        assert completion.request_id == "r9"


class TestRegistry:
    def test_register_and_get(self):
        registry = FunctionRegistry()
        registry.register("img/a", lambda ctx: {}, service_time_s=0.5)
        assert registry.get("img/a").service_time(task()) == 0.5
        assert "img/a" in registry

    def test_decorator(self):
        registry = FunctionRegistry()

        @registry.function("img/b", service_time_s=0.1)
        def handler(ctx):
            return {}

        assert registry.get("img/b").handler is handler

    def test_unknown_image(self):
        with pytest.raises(ValidationError, match="not registered"):
            FunctionRegistry().get("ghost")

    def test_callable_service_time(self):
        registry = FunctionRegistry()
        registry.register(
            "img/c", lambda ctx: {}, service_time_s=lambda t: len(t.payload) * 0.1
        )
        assert registry.get("img/c").service_time(task(payload={"a": 1, "b": 2})) == pytest.approx(0.2)

    def test_generator_handler_detected(self):
        registry = FunctionRegistry()

        def gen_handler(ctx):
            yield None

        registry.register("img/d", gen_handler)
        assert registry.get("img/d").is_generator_handler

    def test_invalid_registrations(self):
        registry = FunctionRegistry()
        with pytest.raises(ValidationError):
            registry.register("", lambda ctx: {})
        with pytest.raises(ValidationError):
            registry.register("img/x", "not callable")

    def test_merged_with(self):
        a = FunctionRegistry()
        a.register("img/a", lambda ctx: {"from": "a"})
        b = FunctionRegistry()
        b.register("img/a", lambda ctx: {"from": "b"})
        b.register("img/b", lambda ctx: {})
        merged = a.merged_with(b)
        assert merged.images == ("img/a", "img/b")


def build_engine(env, engine_cls, registry, model=None, nodes=3):
    cluster = Cluster(env)
    for index in range(nodes):
        cluster.add_node(f"vm-{index}", ResourceSpec(4000, 16384))
    scheduler = Scheduler(cluster)
    if model is None:
        return engine_cls(env, scheduler, registry)
    return engine_cls(env, scheduler, registry, model)


def definition(min_scale=1, max_scale=8, concurrency=4):
    return FunctionDefinition(
        name="f",
        image="img/f",
        provision=ProvisionSpec(
            concurrency=concurrency, cpu_millis=500, min_scale=min_scale, max_scale=max_scale
        ),
    )


@pytest.fixture
def registry():
    reg = FunctionRegistry()

    @reg.function("img/f", service_time_s=0.01)
    def handler(ctx):
        ctx.state["hits"] = int(ctx.state.get("hits") or 0) + 1
        return {"echo": ctx.payload.get("msg")}

    @reg.function("img/fail", service_time_s=0.01)
    def failing(ctx):
        raise RuntimeError("application bug")

    return reg


class TestKnativeEngine:
    def test_invoke_returns_completion(self, env, registry):
        engine = build_engine(env, KnativeEngine, registry)
        svc = engine.deploy("f", definition())

        def scenario(env):
            completion = yield svc.invoke(task(payload={"msg": "hi"}, state={"hits": 0}))
            return completion

        completion = env.run(until=env.process(scenario(env)))
        assert completion.ok
        assert completion.output == {"echo": "hi"}
        assert completion.state_updates == {"hits": 1}

    def test_handler_exception_becomes_failed_completion(self, env, registry):
        import dataclasses

        engine = build_engine(env, KnativeEngine, registry)
        svc = engine.deploy("bad", dataclasses.replace(definition(), image="img/fail"))

        def scenario(env):
            completion = yield svc.invoke(task(image="img/fail"))
            return completion

        completion = env.run(until=env.process(scenario(env)))
        assert not completion.ok
        assert "application bug" in completion.error
        assert svc.errors == 1

    def test_scale_to_zero_and_cold_start(self, env, registry):
        model = KnativeModel(cold_start_s=1.0, scale_to_zero_grace_s=5.0)
        engine = build_engine(env, KnativeEngine, registry, model)
        svc = engine.deploy("f", definition(min_scale=0))
        env.run(until=10.0)
        svc.tick()
        assert svc.replicas == 0

        def scenario(env):
            start = env.now
            yield svc.invoke(task())
            return env.now - start

        latency = env.run(until=env.process(scenario(env)))
        assert latency >= 1.0  # paid the cold start
        assert svc.cold_starts >= 1

    def test_autoscaler_adds_replicas_under_load(self, env, registry):
        model = KnativeModel(cold_start_s=0.1, autoscale_interval_s=1.0)
        engine = build_engine(env, KnativeEngine, registry, model)
        svc = engine.deploy("f", definition(concurrency=2, max_scale=8))

        def client(env):
            while env.now < 5.0:
                yield svc.invoke(task())

        for _ in range(16):
            env.process(client(env))
        env.run(until=5.0)
        assert svc.replicas > 1

    def test_autoscaler_respects_max_scale(self, env, registry):
        model = KnativeModel(cold_start_s=0.01, autoscale_interval_s=0.5)
        engine = build_engine(env, KnativeEngine, registry, model)
        svc = engine.deploy("f", definition(concurrency=1, max_scale=2))

        def client(env):
            while env.now < 4.0:
                yield svc.invoke(task())

        for _ in range(20):
            env.process(client(env))
        env.run(until=4.0)
        assert svc.replicas <= 2

    def test_deploy_duplicate_name_rejected(self, env, registry):
        engine = build_engine(env, KnativeEngine, registry)
        engine.deploy("f", definition())
        with pytest.raises(ValidationError):
            engine.deploy("f", definition())

    def test_unknown_service(self, env, registry):
        engine = build_engine(env, KnativeEngine, registry)
        with pytest.raises(InvocationError):
            engine.service("ghost")

    def test_delete_service(self, env, registry):
        engine = build_engine(env, KnativeEngine, registry)
        engine.deploy("f", definition())
        engine.delete("f")
        assert "f" not in engine


class TestDeploymentEngine:
    def test_pre_provisioned_replicas(self, env, registry):
        engine = build_engine(env, DeploymentEngine, registry)
        svc = engine.deploy("f", definition(), replicas=4)
        assert svc.replicas == 4

    def test_no_scale_from_zero(self, env, registry):
        engine = build_engine(env, DeploymentEngine, registry)
        svc = engine.deploy("f", definition(), replicas=1)
        env.run(until=5.0)
        svc.deployment.scale(0)

        def scenario(env):
            try:
                yield svc.invoke(task())
            except InvocationError:
                return "refused"
            return "served"

        assert env.run(until=env.process(scenario(env))) == "refused"

    def test_lower_overhead_than_knative(self, env, registry):
        kn_model = KnativeModel(request_overhead_s=0.005, cold_start_s=0.01)
        dep_model = DeploymentModel(request_overhead_s=0.0004, cold_start_s=0.01)
        kn = build_engine(env, KnativeEngine, registry, kn_model)
        dep = build_engine(env, DeploymentEngine, registry, dep_model)
        kn_svc = kn.deploy("f", definition())
        dep_svc = dep.deploy("f", definition())
        env.run(until=1.0)  # both warm

        def timed(svc):
            start = env.now
            yield svc.invoke(task())
            return env.now - start

        t_kn = env.run(until=env.process(timed(kn_svc)))
        t_dep = env.run(until=env.process(timed(dep_svc)))
        assert t_dep < t_kn

    def test_optional_hpa(self, env, registry):
        model = DeploymentModel(autoscale=True, cold_start_s=0.01)
        engine = build_engine(env, DeploymentEngine, registry, model)
        svc = engine.deploy("f", definition(concurrency=1, max_scale=8), replicas=1)

        def client(env):
            while env.now < 6.0:
                yield svc.invoke(task())

        for _ in range(10):
            env.process(client(env))
        env.run(until=6.0)
        assert svc.replicas > 1
        svc.stop()


class TestGeneratorHandlers:
    def test_handler_can_yield_timed_io(self, env):
        registry = FunctionRegistry()

        def handler(ctx):
            yield ctx.service("env").timeout(0.5)
            return {"waited": True}

        registry.register("img/io", handler, service_time_s=0.0)
        engine = build_engine(env, DeploymentEngine, registry)
        svc = engine.deploy(
            "io",
            FunctionDefinition(name="io", image="img/io"),
            services={"env": env},
            replicas=1,
        )
        env.run(until=2.0)

        def scenario(env):
            start = env.now
            completion = yield svc.invoke(task(image="img/io"))
            return completion, env.now - start

        completion, elapsed = env.run(until=env.process(scenario(env)))
        assert completion.ok
        assert completion.output == {"waited": True}
        assert elapsed >= 0.5

"""Tests for the OOP object-handle client."""

import pytest

from repro.errors import UnknownFunctionError, UnknownObjectError
from repro.platform.client import ObjectHandle


class TestHandleLifecycle:
    def test_create_returns_handle(self, platform):
        image = platform.create("Image", width=640)
        assert isinstance(image, ObjectHandle)
        assert image.cls == "Image"
        assert image.state["width"] == 640
        assert image.version == 1

    def test_object_wraps_existing_id(self, platform):
        object_id = platform.new_object("Image")
        handle = platform.object(object_id)
        assert handle.id == object_id
        assert handle.exists

    def test_dynamic_method_invocation(self, platform):
        image = platform.create("Image")
        result = image.resize(width=256)
        assert result.ok
        assert image.state["width"] == 256

    def test_chainable_through_state(self, platform):
        image = platform.create("Image")
        image.resize(width=64)
        image.changeFormat(format="webp")
        assert image.state == {"width": 64, "format": "webp"}

    def test_macro_invocation(self, platform):
        image = platform.create("Image")
        result = image.thumbnail(width=32)
        assert result.ok
        assert image.state["width"] == 32

    def test_unknown_method_fails_fast(self, platform):
        image = platform.create("Image")
        with pytest.raises(UnknownFunctionError, match="sharpen"):
            image.sharpen(amount=2)

    def test_update_and_delete(self, platform):
        image = platform.create("Image")
        version = image.update(width=7)
        assert version == 2
        image.delete()
        assert not image.exists

    def test_files_via_handle(self, platform):
        image = platform.create("Image")
        image.upload("image", b"JPEG...")
        assert image.download("image") == b"JPEG..."
        assert image.file_url("image").startswith("s3://")

    def test_inherited_methods_on_subclass_handle(self, platform):
        labelled = platform.create("LabelledImage", width=600)
        labelled.resize(width=700)          # inherited from Image
        result = labelled.detectObject()    # own method
        assert result.output["labels"] == ["cat", "laptop"]

    def test_equality_and_hash(self, platform):
        object_id = platform.new_object("Image")
        a = platform.object(object_id)
        b = platform.object(object_id)
        assert a == b
        assert len({a, b}) == 1

    def test_repr(self, platform):
        handle = platform.create("Image")
        assert handle.id in repr(handle)

    def test_stale_handle_raises_on_access(self, platform):
        handle = platform.object("Image~never-created")
        assert not handle.exists
        with pytest.raises(UnknownObjectError):
            handle.record()

    def test_private_attrs_not_proxied(self, platform):
        handle = platform.create("Image")
        with pytest.raises(AttributeError):
            handle._internal_thing

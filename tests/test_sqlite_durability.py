"""Crash/restart durability over the SQLite engine.

The acceptance drill for the backend subsystem: every write the gateway
acknowledged under strong persistence must be served again by a process
that reopens the same database file — first in-process (a platform is
abandoned without shutdown, a second one reopens its file), then for
real (an ``ocli serve`` process is ``kill -9``'d mid-flight).
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.durability.plane import DurabilityConfig
from repro.storage.backends import StorageConfig

from tests.helpers import make_platform

DEMO_PACKAGE = str(
    Path(__file__).resolve().parent.parent / "examples/packages/durability_demo.yaml"
)
DEMO_YAML = Path(DEMO_PACKAGE).read_text()


def sqlite_platform(db_path):
    platform = make_platform(
        nodes=2,
        storage=StorageConfig(backend="sqlite", path=str(db_path)),
        durability=DurabilityConfig(enabled=True),
    )
    for image in ("ledger/add", "cart/add"):
        @platform.function(image, service_time_s=0.001)
        def handler(ctx):
            return dict(ctx.payload)
    platform.deploy(DEMO_YAML)
    return platform


class TestInProcessRestart:
    def test_acknowledged_strong_writes_survive_abandonment(self, tmp_path):
        db = tmp_path / "ledger.db"
        first = sqlite_platform(db)
        ids = []
        for balance in (5, 20, 50):
            response = first.http(
                "POST", "/api/classes/Ledger", {"state": {"balance": balance}}
            )
            assert response.status == 201
            ids.append(response.body["id"])
        first.store.close()  # release the file; everything else abandoned

        second = sqlite_platform(db)
        try:
            listing = second.http("GET", "/api/classes/Ledger/objects")
            assert listing.status == 200
            assert sorted(listing.body["objects"]) == sorted(ids)

            # The recovered file answers an indexed range query.
            query = second.http(
                "GET",
                "/api/classes/Ledger/objects"
                "?where=balance>=20&order=balance:desc&explain=1",
            )
            assert query.status == 200
            assert [d["state"]["balance"] for d in query.body["objects"]] == [50, 20]
            assert query.body["index_used"] is True
            assert "ix_" in query.body["plan"]
        finally:
            second.shutdown()

    def test_objects_readable_and_mutable_after_restart(self, tmp_path):
        db = tmp_path / "ledger.db"
        first = sqlite_platform(db)
        created = first.http(
            "POST", "/api/classes/Ledger", {"state": {"balance": 7}}
        )
        object_id = created.body["id"]
        first.store.close()

        second = sqlite_platform(db)
        try:
            fetched = second.http("GET", f"/api/objects/{object_id}")
            assert fetched.status == 200
            assert fetched.body["state"]["balance"] == 7
            invoked = second.http(
                "POST", f"/api/objects/{object_id}/invokes/add", {"amount": 3}
            )
            assert invoked.status == 200
        finally:
            second.shutdown()

    def test_dict_backend_does_not_survive(self, tmp_path):
        """The contrast case: the ephemeral default loses everything, so
        the durability the SQLite tests see really comes from the engine."""
        first = make_platform(nodes=2)
        @first.function("ledger/add", service_time_s=0.001)
        def add(ctx):
            return dict(ctx.payload)
        @first.function("cart/add", service_time_s=0.001)
        def cart_add(ctx):
            return dict(ctx.payload)
        first.deploy(DEMO_YAML)
        first.http("POST", "/api/classes/Ledger", {"state": {"balance": 5}})
        first.store.close()

        second = sqlite_platform(tmp_path / "fresh.db")
        try:
            listing = second.http("GET", "/api/classes/Ledger/objects")
            assert listing.body["count"] == 0
        finally:
            second.shutdown()


# -- the real thing: kill -9 a serving process --------------------------------


REPO_ROOT = str(Path(__file__).resolve().parent.parent)


def _start_server(db_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{REPO_ROOT}/src" + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.platform.cli", "serve", DEMO_PACKAGE,
            "--auto-handlers", "--new", "Ledger",
            "--backend", "sqlite", "--db", str(db_path),
            "--linger", "--pool", "2",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", line)
    assert match, f"no serving line, got {line!r}"
    return proc, match.group(1), int(match.group(2))


def _request(host, port, method, path, body=None):
    payload = json.dumps(body or {}).encode()
    request = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode() + payload
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(request)
        data = b""
        while b"\r\n\r\n" not in data:
            data += sock.recv(65536)
        head, _, rest = data.partition(b"\r\n\r\n")
        status = int(head.split(b" ")[1])
        length = int(re.search(rb"content-length: (\d+)", head, re.I).group(1))
        while len(rest) < length:
            rest += sock.recv(65536)
    return status, json.loads(rest)


@pytest.mark.asyncio_transport
class TestKillNineDrill:
    def test_kill_nine_loses_nothing_acknowledged(self, tmp_path):
        db = tmp_path / "drill.db"
        proc, host, port = _start_server(db)
        try:
            ids = []
            for balance in (5, 20, 50):
                status, body = _request(
                    host, port, "POST", "/api/classes/Ledger",
                    {"state": {"balance": balance}},
                )
                assert status == 201, (status, body)
                ids.append(body["id"])
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()

        proc2, host, port = _start_server(db)
        try:
            status, listing = _request(host, port, "GET", "/api/classes/Ledger/objects")
            assert status == 200
            assert sorted(listing["objects"]) == sorted(ids)  # RPO 0

            status, result = _request(
                host, port, "GET",
                "/api/classes/Ledger/objects"
                "?where=balance%3E%3D20&order=balance:desc&explain=1",
            )
            assert status == 200
            assert [d["state"]["balance"] for d in result["objects"]] == [50, 20]
            assert result["index_used"] is True
        finally:
            os.kill(proc2.pid, signal.SIGKILL)
            proc2.wait()

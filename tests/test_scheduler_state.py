"""Unit and property tests for the worker lifecycle state machine and
the invocation ledger — the two data structures the conformance
invariants stand on."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.invoker.request import InvocationRequest
from repro.scheduler import (
    PHASE,
    TRANSITIONS,
    EntryState,
    InvocationLedger,
    WorkerState,
    WorkerStateMachine,
)

# -- state machine unit tests ------------------------------------------------


class TestWorkerStateMachine:
    def test_happy_path_register_ready_drain_dead(self):
        machine = WorkerStateMachine()
        machine.transition(WorkerState.READY, at=0.1)
        machine.transition(WorkerState.DRAINING, at=0.2, reason="scale-in")
        machine.transition(WorkerState.DEAD, at=0.3, reason="drained")
        assert machine.is_dead
        assert machine.is_monotone()
        assert [t.target for t in machine.history] == [
            WorkerState.READY,
            WorkerState.DRAINING,
            WorkerState.DEAD,
        ]

    def test_degraded_oscillation_is_legal_and_monotone(self):
        machine = WorkerStateMachine()
        machine.transition(WorkerState.READY, at=0.1)
        for i in range(3):
            machine.transition(WorkerState.DEGRADED, at=0.2 + i)
            machine.transition(WorkerState.READY, at=0.25 + i)
        assert machine.is_dispatchable
        assert machine.is_monotone()

    def test_draining_admits_no_return(self):
        machine = WorkerStateMachine()
        machine.transition(WorkerState.READY, at=0.0)
        machine.transition(WorkerState.DRAINING, at=0.1)
        for target in (WorkerState.READY, WorkerState.DEGRADED):
            with pytest.raises(SchedulingError):
                machine.transition(target, at=0.2)
        assert machine.state is WorkerState.DRAINING  # unchanged on failure

    def test_dead_is_terminal(self):
        machine = WorkerStateMachine()
        machine.transition(WorkerState.DEAD, at=0.0, reason="crash")
        for target in WorkerState:
            with pytest.raises(SchedulingError):
                machine.transition(target, at=0.1)

    def test_registered_cannot_be_dispatched(self):
        machine = WorkerStateMachine()
        assert not machine.is_dispatchable
        assert not machine.is_serving

    def test_draining_serves_but_is_not_dispatchable(self):
        machine = WorkerStateMachine()
        machine.transition(WorkerState.READY, at=0.0)
        machine.transition(WorkerState.DRAINING, at=0.1)
        assert machine.is_serving and not machine.is_dispatchable

    def test_illegal_edge_message_names_both_states(self):
        machine = WorkerStateMachine()
        with pytest.raises(SchedulingError, match="REGISTERED -> DRAINING"):
            machine.transition(WorkerState.DRAINING, at=0.0)

    def test_edge_table_never_decreases_phase(self):
        # Structural check on the table itself, not just the runtime.
        for source, targets in TRANSITIONS.items():
            for target in targets:
                assert PHASE[target] >= PHASE[source], (source, target)


# -- state machine property tests --------------------------------------------


targets = st.sampled_from(list(WorkerState))


class TestStateMachineProperties:
    @given(attempts=st.lists(targets, max_size=40))
    def test_any_interleaving_of_attempts_stays_monotone(self, attempts):
        """Drive the machine with arbitrary transition attempts; illegal
        ones raise and change nothing, and whatever history survives is
        phase-monotone with DEAD terminal."""
        machine = WorkerStateMachine()
        phases = [machine.phase]
        for index, target in enumerate(attempts):
            before = machine.state
            try:
                machine.transition(target, at=float(index))
            except SchedulingError:
                assert machine.state is before  # failed attempt is a no-op
            phases.append(machine.phase)
        assert machine.is_monotone()
        assert all(b >= a for a, b in zip(phases, phases[1:]))
        if WorkerState.DEAD in [t.target for t in machine.history]:
            assert machine.is_dead

    @given(attempts=st.lists(targets, min_size=1, max_size=40))
    def test_history_replays_to_current_state(self, attempts):
        machine = WorkerStateMachine()
        for index, target in enumerate(attempts):
            try:
                machine.transition(target, at=float(index))
            except SchedulingError:
                pass
        state = WorkerState.REGISTERED
        for step in machine.history:
            assert step.source is state
            state = step.target
        assert state is machine.state


# -- ledger unit tests -------------------------------------------------------


def _request(n: int) -> InvocationRequest:
    return InvocationRequest(object_id=f"T~o{n}", fn_name="work")


class TestInvocationLedger:
    def test_accept_dispatch_complete_roundtrip(self):
        ledger = InvocationLedger()
        request = _request(0)
        entry = ledger.accept(request, at=1.0)
        assert entry.seq == 1 and entry.state is EntryState.ACCEPTED
        ledger.dispatch(request.request_id, "worker-0", epoch=0)
        assert entry.worker == "worker-0" and entry.attempts == 1
        assert ledger.complete(request.request_id, ok=True, at=2.0)
        assert ledger.audit() == {
            "accepted": 1,
            "completed": 1,
            "outstanding": 0,
            "requeues": 0,
            "suppressed": 0,
        }

    def test_double_accept_rejected(self):
        ledger = InvocationLedger()
        request = _request(0)
        ledger.accept(request, at=0.0)
        with pytest.raises(SchedulingError):
            ledger.accept(request, at=0.1)

    def test_duplicate_completion_suppressed_not_delivered(self):
        ledger = InvocationLedger()
        request = _request(0)
        ledger.accept(request, at=0.0)
        ledger.dispatch(request.request_id, "worker-0", epoch=0)
        assert ledger.complete(request.request_id, ok=True, at=1.0)
        assert not ledger.complete(request.request_id, ok=True, at=1.5)
        assert ledger.completed == 1 and ledger.suppressed == 1

    def test_requeue_only_from_owning_worker(self):
        ledger = InvocationLedger()
        request = _request(0)
        ledger.accept(request, at=0.0)
        ledger.dispatch(request.request_id, "worker-0", epoch=0)
        assert not ledger.requeue(request.request_id, "worker-1")  # not owner
        assert ledger.requeue(request.request_id, "worker-0")
        assert not ledger.requeue(request.request_id, "worker-0")  # not dispatched
        entry = ledger.entry(request.request_id)
        assert entry.state is EntryState.ACCEPTED and entry.worker is None

    def test_completion_beats_requeue(self):
        ledger = InvocationLedger()
        request = _request(0)
        ledger.accept(request, at=0.0)
        ledger.dispatch(request.request_id, "worker-0", epoch=0)
        ledger.complete(request.request_id, ok=True, at=1.0)
        assert not ledger.requeue(request.request_id, "worker-0")
        assert ledger.entry(request.request_id).state is EntryState.COMPLETED

    def test_unknown_request_raises(self):
        ledger = InvocationLedger()
        with pytest.raises(SchedulingError):
            ledger.dispatch("req-missing", "worker-0", epoch=0)
        with pytest.raises(SchedulingError):
            ledger.complete("req-missing", ok=True, at=0.0)
        assert ledger.entry("req-missing") is None

    def test_outstanding_in_acceptance_order(self):
        ledger = InvocationLedger()
        requests = [_request(n) for n in range(4)]
        for n, request in enumerate(requests):
            ledger.accept(request, at=float(n))
        ledger.dispatch(requests[1].request_id, "worker-0", epoch=0)
        ledger.complete(requests[1].request_id, ok=True, at=5.0)
        assert [e.seq for e in ledger.outstanding()] == [1, 3, 4]


# -- ledger property test ----------------------------------------------------


class TestLedgerProperties:
    @settings(max_examples=60)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["dispatch", "requeue", "complete"]),
                st.integers(0, 5),  # request index
                st.integers(0, 2),  # worker index
            ),
            max_size=60,
        )
    )
    def test_conservation_and_exactly_once_under_any_op_order(self, ops):
        """Apply an arbitrary op sequence; ignoring illegal ops, the
        conservation identity holds and no request completes twice."""
        ledger = InvocationLedger()
        requests = [_request(n) for n in range(6)]
        for request in requests:
            ledger.accept(request, at=0.0)
        delivered: dict[str, int] = {}
        for op, req_index, worker_index in ops:
            request_id = requests[req_index].request_id
            worker = f"worker-{worker_index}"
            if op == "dispatch":
                try:
                    ledger.dispatch(request_id, worker, epoch=0)
                except SchedulingError:
                    pass
            elif op == "requeue":
                ledger.requeue(request_id, worker)
            elif ledger.complete(request_id, ok=True, at=1.0):
                delivered[request_id] = delivered.get(request_id, 0) + 1
        audit = ledger.audit()
        assert audit["accepted"] == audit["completed"] + audit["outstanding"]
        assert all(count == 1 for count in delivered.values())
        assert len(delivered) == audit["completed"]

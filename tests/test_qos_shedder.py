"""Brownout-trigger and observability tests for the overload controller."""

from repro.monitoring.collector import MonitoringSystem
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Tracer
from repro.qos.fairqueue import WeightedFairQueue
from repro.qos.policy import QosPolicy
from repro.qos.shedder import MIN_BROWNOUT_SAMPLES, QOS_TRACE_ID, OverloadController


def feed_latencies(monitoring, cls, latency_s, count):
    obs = monitoring.for_class(cls)
    for _ in range(count):
        obs.record_invocation(latency_s, ok=True)


class TestBrownout:
    def make(self, env, monitoring, policies, queue, **kwargs):
        return OverloadController(
            env,
            [queue],
            policy_for=lambda cls: policies[cls],
            monitoring=monitoring,
            **kwargs,
        )

    def test_p95_over_target_trips_shed_below_depth_watermark(self, env):
        monitoring = MonitoringSystem(env)
        queue = WeightedFairQueue(env)
        policies = {
            "Hot": QosPolicy(cls="Hot", tier=8, deadline_ms=50),
            "Noisy": QosPolicy(cls="Noisy", tier=1),
        }
        controller = self.make(
            env, monitoring, policies, queue, queue_depth_high=1000, target_fraction=0.01
        )
        feed_latencies(monitoring, "Hot", 0.2, MIN_BROWNOUT_SAMPLES)  # 200 ms >> 50
        for i in range(100):
            queue.push("Noisy", i)
        assert controller._brownout_classes() == ["Hot"]
        assert controller.check() > 0
        assert queue.depth("Noisy") <= 10

    def test_too_few_samples_do_not_trip(self, env):
        monitoring = MonitoringSystem(env)
        queue = WeightedFairQueue(env)
        policies = {"Hot": QosPolicy(cls="Hot", deadline_ms=50)}
        controller = self.make(env, monitoring, policies, queue)
        feed_latencies(monitoring, "Hot", 0.2, MIN_BROWNOUT_SAMPLES - 1)
        assert controller._brownout_classes() == []

    def test_meeting_target_does_not_trip(self, env):
        monitoring = MonitoringSystem(env)
        queue = WeightedFairQueue(env)
        policies = {"Hot": QosPolicy(cls="Hot", deadline_ms=50)}
        controller = self.make(env, monitoring, policies, queue)
        feed_latencies(monitoring, "Hot", 0.01, MIN_BROWNOUT_SAMPLES * 2)
        assert controller._brownout_classes() == []

    def test_no_latency_declaration_never_trips(self, env):
        monitoring = MonitoringSystem(env)
        queue = WeightedFairQueue(env)
        policies = {"Batch": QosPolicy(cls="Batch")}
        controller = self.make(env, monitoring, policies, queue)
        feed_latencies(monitoring, "Batch", 5.0, MIN_BROWNOUT_SAMPLES * 2)
        assert controller._brownout_classes() == []

    def test_brownout_with_empty_queue_is_noop(self, env):
        monitoring = MonitoringSystem(env)
        queue = WeightedFairQueue(env)
        policies = {"Hot": QosPolicy(cls="Hot", deadline_ms=50)}
        controller = self.make(env, monitoring, policies, queue)
        feed_latencies(monitoring, "Hot", 0.2, MIN_BROWNOUT_SAMPLES)
        assert controller.check() == 0


class TestShedObservability:
    def test_shed_emits_event_and_span(self, env):
        events = EventLog(env, enabled=True)
        tracer = Tracer(env, enabled=True)
        queue = WeightedFairQueue(env)
        policies = {"A": QosPolicy(cls="A", tier=1)}
        controller = OverloadController(
            env,
            [queue],
            policy_for=lambda cls: policies[cls],
            events=events,
            tracer=tracer,
            queue_depth_high=2,
            target_fraction=0.5,
        )
        for i in range(10):
            queue.push("A", i)
        shed = controller.check()
        assert shed == 9
        recorded = events.events("qos.shed")
        assert len(recorded) == 1
        assert recorded[0].fields["cls"] == "A"
        assert recorded[0].fields["count"] == 9
        spans = tracer.trace(QOS_TRACE_ID)
        assert [span.name for span in spans] == ["qos.shed"]

    def test_stats_shape(self, env):
        queue = WeightedFairQueue(env)
        policies = {"A": QosPolicy(cls="A", tier=1)}
        controller = OverloadController(
            env,
            [queue],
            policy_for=lambda cls: policies[cls],
            queue_depth_high=2,
            target_fraction=0.0,
        )
        for i in range(4):
            queue.push("A", i)
        controller.check()
        stats = controller.stats()
        assert stats["passes"] == 1
        assert stats["shed_total"] == 4
        assert stats["shed_by_class"] == {"A": 4}
        assert stats["queue_depth"] == 0

"""Tests for warm-capacity-first pod selection during scale-up.

Regression suite for a burst meltdown: requests arriving mid-scale-up
must prefer warm pods over idle-but-cold STARTING pods, spilling onto
booting pods only when every warm pod is saturated.
"""

from repro.orchestrator.cluster import Cluster
from repro.orchestrator.deployment import Deployment
from repro.orchestrator.pod import PodSpec
from repro.orchestrator.resources import ResourceSpec
from repro.orchestrator.scheduler import Scheduler


def make_deployment(env, replicas=1, concurrency=4, startup_delay_s=5.0):
    cluster = Cluster(env)
    for index in range(4):
        cluster.add_node(f"vm-{index}", ResourceSpec(8000, 16384))
    spec = PodSpec(
        image="i",
        resources=ResourceSpec(500, 128),
        concurrency=concurrency,
        startup_delay_s=startup_delay_s,
    )
    return Deployment(env, "web", spec, Scheduler(cluster), replicas=replicas)


def occupy(pod, count):
    for _ in range(count):
        pod.slots.request()


class TestWarmFirstSelection:
    def test_ready_pod_preferred_over_idle_starting(self, env):
        deployment = make_deployment(env, replicas=1, startup_delay_s=5.0)
        env.run(until=6.0)  # first pod warm
        warm = deployment.pods[0]
        deployment.scale(2)  # second pod cold for 5s
        occupy(warm, 3)  # warm but lightly loaded
        chosen = deployment.least_loaded_pod(include_starting=True)
        assert chosen is warm

    def test_spill_to_starting_when_warm_saturated(self, env):
        deployment = make_deployment(env, replicas=1, concurrency=4, startup_delay_s=5.0)
        env.run(until=6.0)
        warm = deployment.pods[0]
        deployment.scale(2)
        cold = [p for p in deployment.pods if p is not warm][0]
        occupy(warm, 9)  # > 2x concurrency: deeply backlogged
        chosen = deployment.least_loaded_pod(include_starting=True)
        assert chosen is cold

    def test_no_spill_when_starting_also_loaded(self, env):
        deployment = make_deployment(env, replicas=1, concurrency=4, startup_delay_s=5.0)
        env.run(until=6.0)
        warm = deployment.pods[0]
        deployment.scale(2)
        cold = [p for p in deployment.pods if p is not warm][0]
        occupy(warm, 9)
        occupy(cold, 12)  # the cold pod is even worse
        chosen = deployment.least_loaded_pod(include_starting=True)
        assert chosen is warm

    def test_starting_only_when_no_ready(self, env):
        deployment = make_deployment(env, replicas=2, startup_delay_s=5.0)
        # Nothing ready yet.
        chosen = deployment.least_loaded_pod(include_starting=True)
        assert chosen is not None
        assert not chosen.is_ready

    def test_exclude_starting_returns_none_when_cold(self, env):
        deployment = make_deployment(env, replicas=2, startup_delay_s=5.0)
        assert deployment.least_loaded_pod(include_starting=False) is None

    def test_ready_tie_breaks_deterministic(self, env):
        deployment = make_deployment(env, replicas=3, startup_delay_s=0.0)
        env.run(until=0.1)
        first = deployment.least_loaded_pod()
        second = deployment.least_loaded_pod()
        assert first is second

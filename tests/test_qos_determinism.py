"""Shed decisions must be a pure function of the seed.

Shedding discards work; if the victims varied run-to-run at one seed,
chaos experiments (and the ABL-QOS ablation) would stop being
reproducible.  These tests run the same overloaded workload twice on
fresh platforms and require identical outcomes — including the exact
event sequence, not just totals.
"""

from repro.chaos.plans import named_plan
from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.qos.plane import QosConfig

PACKAGE = """
name: det
classes:
  - name: Hot
    qos: {throughput: 50, latency: 50, priority: 8}
    functions:
      - name: work
        image: d/hot
  - name: Noisy
    constraint: {budget: 10}
    functions:
      - name: work
        image: d/noisy
"""


def run_overloaded(seed: int, chaos: bool = False):
    platform = Oparaca(
        PlatformConfig(
            nodes=2,
            seed=seed,
            events_enabled=True,
            qos=QosConfig(
                enabled=True, shed_queue_depth=32, shed_check_interval_s=0.1
            ),
        )
    )
    platform.register_image("d/hot", lambda ctx: {}, 0.002)
    platform.register_image("d/noisy", lambda ctx: {}, 0.02)
    platform.deploy(PACKAGE)
    # Explicit ids: default object ids are uuid4-based, which would
    # randomize DHT placement independently of the seed.
    hot = platform.new_object("Hot", object_id="hot-0")
    noisy = [
        platform.new_object("Noisy", object_id=f"noisy-{i}") for i in range(8)
    ]
    if chaos:
        platform.inject_chaos(
            named_plan("overload", list(platform.cluster.node_names))
        )
    for i in range(200):
        platform.invoke_async(noisy[i % 8], "work")
    for _ in range(20):
        platform.invoke_async(hot, "work")
    platform.advance(15.0)
    outcome = {
        "shed": platform.queue.shed,
        "rejected": platform.queue.rejected,
        "completed": platform.queue.completed,
        "shed_events": [
            (event.at, dict(event.fields))
            for event in platform.platform_events("qos.shed")
        ],
        "snapshot": platform.snapshot(),
    }
    platform.shutdown()
    return outcome


class TestShedDeterminism:
    def test_identical_outcomes_without_chaos(self):
        first = run_overloaded(seed=5)
        second = run_overloaded(seed=5)
        assert first["shed"] > 0
        assert first == second

    def test_identical_outcomes_under_overload_chaos(self):
        first = run_overloaded(seed=5, chaos=True)
        second = run_overloaded(seed=5, chaos=True)
        assert first["shed"] > 0
        assert first["shed_events"] == second["shed_events"]
        assert first == second

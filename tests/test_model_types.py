"""Unit tests for state typing (DataType, KeySpec, StateSpec)."""

import pytest

from repro.errors import ValidationError
from repro.model.types import DataType, KeySpec, StateSpec


class TestDataType:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("INT", DataType.INT),
            ("int", DataType.INT),
            ("File Image", DataType.FILE),  # the paper's comment style
            ("json", DataType.JSON),
            ("Bool", DataType.BOOL),
        ],
    )
    def test_parse(self, raw, expected):
        assert DataType.parse(raw) is expected

    def test_parse_unknown_raises(self):
        with pytest.raises(ValidationError, match="unknown data type"):
            DataType.parse("BLOB")

    def test_parse_empty_raises(self):
        with pytest.raises(ValidationError):
            DataType.parse("")

    @pytest.mark.parametrize(
        "dtype,value,ok",
        [
            (DataType.INT, 5, True),
            (DataType.INT, True, False),  # bool is not an INT
            (DataType.INT, 5.5, False),
            (DataType.FLOAT, 5, True),
            (DataType.FLOAT, 5.5, True),
            (DataType.FLOAT, True, False),
            (DataType.STR, "x", True),
            (DataType.STR, 5, False),
            (DataType.BOOL, True, True),
            (DataType.BOOL, 1, False),
            (DataType.JSON, {"a": [1]}, True),
            (DataType.JSON, "text", True),
            (DataType.FILE, "bucket-key", True),
            (DataType.FILE, b"bytes", False),
        ],
    )
    def test_accepts(self, dtype, value, ok):
        assert dtype.accepts(value) is ok

    def test_none_always_accepted(self):
        for dtype in DataType:
            assert dtype.accepts(None)


class TestKeySpec:
    def test_valid(self):
        spec = KeySpec("width", DataType.INT, default=10)
        assert spec.name == "width"
        assert not spec.is_file

    def test_invalid_name(self):
        with pytest.raises(ValidationError):
            KeySpec("9bad", DataType.INT)

    def test_default_type_checked(self):
        with pytest.raises(ValidationError):
            KeySpec("width", DataType.INT, default="ten")

    def test_file_key(self):
        assert KeySpec("image", DataType.FILE).is_file


class TestStateSpec:
    def _spec(self):
        return StateSpec(
            (
                KeySpec("image", DataType.FILE),
                KeySpec("width", DataType.INT, default=100),
                KeySpec("format", DataType.STR),
            )
        )

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            StateSpec((KeySpec("a"), KeySpec("a")))

    def test_partitions_file_and_data_keys(self):
        spec = self._spec()
        assert spec.file_keys == ("image",)
        assert spec.data_keys == ("width", "format")

    def test_defaults_excludes_files_and_unset(self):
        assert self._spec().defaults() == {"width": 100}

    def test_get(self):
        spec = self._spec()
        assert spec.get("width").dtype is DataType.INT
        assert spec.get("missing") is None

    def test_validate_state_accepts_valid(self):
        self._spec().validate_state({"width": 5, "format": "png"})

    def test_validate_state_rejects_unknown_key(self):
        with pytest.raises(ValidationError, match="unknown state key"):
            self._spec().validate_state({"height": 5})

    def test_validate_state_rejects_wrong_type(self):
        with pytest.raises(ValidationError):
            self._spec().validate_state({"width": "five"})

    def test_validate_state_rejects_file_writes(self):
        with pytest.raises(ValidationError, match="FILE"):
            self._spec().validate_state({"image": "some-key"})

    def test_merge_adds_child_keys(self):
        parent = StateSpec((KeySpec("a", DataType.INT),))
        child = StateSpec((KeySpec("b", DataType.STR),))
        merged = parent.merged_with(child)
        assert merged.names == ("a", "b")

    def test_merge_same_type_redeclaration_allowed(self):
        parent = StateSpec((KeySpec("a", DataType.INT, default=1),))
        child = StateSpec((KeySpec("a", DataType.INT, default=2),))
        merged = parent.merged_with(child)
        assert merged.get("a").default == 2

    def test_merge_type_conflict_rejected(self):
        parent = StateSpec((KeySpec("a", DataType.INT),))
        child = StateSpec((KeySpec("a", DataType.STR),))
        with pytest.raises(ValidationError, match="redeclared"):
            parent.merged_with(child)

    def test_iteration_and_len(self):
        spec = self._spec()
        assert len(spec) == 3
        assert [k.name for k in spec] == ["image", "width", "format"]

"""The typed query layer: grammar, evaluation semantics, the gateway
surface, and the ``ocli query`` command."""

import json
from pathlib import Path

import pytest

from repro.errors import QueryError
from repro.model.types import DataType
from repro.platform.cli import main
from repro.storage.query import (
    Predicate,
    Query,
    decode_cursor,
    encode_cursor,
    evaluate_query,
    parse_query,
    parse_where,
)

from tests.helpers import listing1_platform

SCHEMA = {
    "width": DataType.INT,
    "price": DataType.FLOAT,
    "region": DataType.STR,
    "active": DataType.BOOL,
    "tags": DataType.JSON,
}


def doc(object_id, **state):
    return {"id": object_id, "cls": "C", "version": 1, "state": state}


class TestParseWhere:
    def test_all_operators(self):
        predicates = parse_where(
            "width==3,width<5,width<=5,width>1,width>=1,region^=eu,region=x",
            SCHEMA,
        )
        assert [p.op for p in predicates] == [
            "eq", "lt", "le", "gt", "ge", "prefix", "eq",
        ]

    def test_values_coerced_by_declared_type(self):
        predicates = parse_where(
            "width==3,price<=2.5,active==true,region==eu-west", SCHEMA
        )
        assert [p.value for p in predicates] == [3, 2.5, True, "eu-west"]

    def test_empty_clauses_skipped(self):
        assert parse_where("", SCHEMA) == ()
        assert parse_where(" , width==3 , ", SCHEMA) == (
            Predicate("width", "eq", 3),
        )

    def test_unknown_key_rejected(self):
        with pytest.raises(QueryError, match="unknown query key 'ghost'"):
            parse_where("ghost==3", SCHEMA)

    def test_bad_value_rejected(self):
        with pytest.raises(QueryError, match="not a valid INT"):
            parse_where("width==abc", SCHEMA)
        with pytest.raises(QueryError, match="not a valid BOOL"):
            parse_where("active==maybe", SCHEMA)

    def test_prefix_requires_str_key(self):
        with pytest.raises(QueryError, match="requires a STR key"):
            parse_where("width^=1", SCHEMA)

    def test_garbage_clause_rejected(self):
        with pytest.raises(QueryError, match="cannot parse predicate"):
            parse_where("width", SCHEMA)


class TestParseQuery:
    def test_order_limit(self):
        query = parse_query({"order": "width:desc", "limit": "5"}, SCHEMA)
        assert query.order_by == "width"
        assert query.descending is True
        assert query.limit == 5

    def test_defaults(self):
        query = parse_query({}, SCHEMA)
        assert query == Query()

    def test_unknown_parameter_rejected(self):
        with pytest.raises(QueryError, match="unknown query parameter"):
            parse_query({"sort": "width"}, SCHEMA)

    def test_bad_order_direction(self):
        with pytest.raises(QueryError, match="asc or desc"):
            parse_query({"order": "width:sideways"}, SCHEMA)

    def test_bad_limit(self):
        with pytest.raises(QueryError, match="limit must be an integer"):
            parse_query({"limit": "many"}, SCHEMA)
        with pytest.raises(QueryError, match="limit must be >= 1"):
            parse_query({"limit": "0"}, SCHEMA)

    def test_cursor_round_trip(self):
        token = encode_cursor(doc("C~b", width=7), "width")
        query = parse_query({"order": "width", "cursor": token}, SCHEMA)
        assert query.cursor == (7, "C~b")

    def test_malformed_cursor(self):
        with pytest.raises(QueryError, match="malformed cursor"):
            decode_cursor("!!!", None)
        # An ordered cursor used on an unordered query mismatches arity.
        token = encode_cursor(doc("C~b", width=7), "width")
        with pytest.raises(QueryError, match="ordering"):
            decode_cursor(token, None)


class TestEvaluateQuery:
    CORPUS = [
        doc("C~a", width=10, region="eu-west"),
        doc("C~b", width=30, region="eu-east"),
        doc("C~c", width=20, region="us-east"),
        doc("C~d", region="eu-north"),  # no width
        doc("C~e", width=20, region="ap-south"),
    ]

    def test_missing_key_never_matches(self):
        result = evaluate_query(self.CORPUS, Query(where=(Predicate("width", "ge", 0),)))
        assert [d["id"] for d in result.docs] == ["C~a", "C~b", "C~c", "C~e"]
        assert result.scanned == 5

    def test_order_excludes_docs_without_order_key(self):
        result = evaluate_query(self.CORPUS, Query(order_by="width"))
        assert [d["id"] for d in result.docs] == ["C~a", "C~c", "C~e", "C~b"]

    def test_descending_with_id_tiebreak(self):
        result = evaluate_query(self.CORPUS, Query(order_by="width", descending=True))
        # width 20 tie: ids descend with the sort direction.
        assert [d["id"] for d in result.docs] == ["C~b", "C~e", "C~c", "C~a"]

    def test_prefix(self):
        result = evaluate_query(
            self.CORPUS, Query(where=(Predicate("region", "prefix", "eu-"),))
        )
        assert [d["id"] for d in result.docs] == ["C~a", "C~b", "C~d"]

    def test_limit_pagination_walk(self):
        query = Query(order_by="width", limit=2)
        page1 = evaluate_query(self.CORPUS, query)
        assert [d["id"] for d in page1.docs] == ["C~a", "C~c"]
        assert page1.next_cursor is not None
        query2 = Query(
            order_by="width", limit=2, cursor=decode_cursor(page1.next_cursor, "width")
        )
        page2 = evaluate_query(self.CORPUS, query2)
        assert [d["id"] for d in page2.docs] == ["C~e", "C~b"]
        assert page2.next_cursor is None

    def test_incomparable_types_do_not_match(self):
        corpus = [doc("C~a", width="wide"), doc("C~b", width=3)]
        result = evaluate_query(corpus, Query(where=(Predicate("width", "lt", 10),)))
        assert [d["id"] for d in result.docs] == ["C~b"]


class TestGatewaySurface:
    @pytest.fixture()
    def platform(self):
        platform = listing1_platform(nodes=2)
        for width in (100, 300, 200):
            platform.new_object("Image", {"width": width})
        yield platform
        platform.shutdown()

    def test_range_query(self, platform):
        response = platform.http(
            "GET", "/api/classes/Image/objects?where=width>=200&order=width"
        )
        assert response.status == 200
        assert [d["state"]["width"] for d in response.body["objects"]] == [200, 300]
        assert response.body["count"] == 2
        assert response.body["scanned"] == 3

    def test_listing_without_query_string_unchanged(self, platform):
        response = platform.http("GET", "/api/classes/Image/objects")
        assert response.status == 200
        assert response.body["count"] == 3
        # The historical listing returns ids, not documents.
        assert all(isinstance(entry, str) for entry in response.body["objects"])

    def test_pagination_via_cursor(self, platform):
        first = platform.http(
            "GET", "/api/classes/Image/objects?order=width&limit=2"
        )
        assert [d["state"]["width"] for d in first.body["objects"]] == [100, 200]
        token = first.body["cursor"]
        assert token
        second = platform.http(
            "GET", f"/api/classes/Image/objects?order=width&limit=2&cursor={token}"
        )
        assert [d["state"]["width"] for d in second.body["objects"]] == [300]
        assert second.body["cursor"] is None

    def test_explain(self, platform):
        response = platform.http(
            "GET", "/api/classes/Image/objects?where=width>0&explain=1"
        )
        assert response.body["plan"] == "dict-scan"
        assert response.body["index_used"] is False

    def test_bad_query_is_400(self, platform):
        response = platform.http("GET", "/api/classes/Image/objects?where=ghost==1")
        assert response.status == 400
        assert response.body["type"] == "QueryError"

    def test_file_key_not_queryable(self, platform):
        response = platform.http("GET", "/api/classes/Image/objects?where=image==x")
        assert response.status == 400
        assert response.body["type"] == "QueryError"

    def test_unknown_class_is_404(self, platform):
        response = platform.http("GET", "/api/classes/Ghost/objects?where=width>0")
        assert response.status == 404

    def test_query_observable(self):
        platform = listing1_platform(nodes=2, tracing_enabled=True, events_enabled=True)
        try:
            platform.new_object("Image", {"width": 64})
            platform.http("GET", "/api/classes/Image/objects?where=width>0")
            assert platform.store.query_ops == 1
            assert platform.store.query_docs_scanned == 1
            events = platform.platform_events("storage.query")
            assert len(events) == 1
            assert events[0].fields["cls"] == "Image"
            spans = [s for s in platform.tracer.spans() if s.name == "storage.query"]
            assert len(spans) == 1
        finally:
            platform.shutdown()

    def test_query_consumes_db_capacity(self, platform):
        store = platform.store
        platform.flush()  # settle dirty writes so only the query is billed
        before = store.units_for("objects.Image")
        platform.http("GET", "/api/classes/Image/objects?where=width>=200")
        after = store.units_for("objects.Image")
        # op_cost up front plus read_cost per scanned document.
        expected = store.model.op_cost + 3 * store.model.read_cost
        assert after - before == pytest.approx(expected)


EPHEMERAL_YAML = """
name: ephemeral-app
classes:
  - name: Counter
    constraint: { persistent: false }
    keySpecs:
      - name: n
        type: INT
        default: 0
"""


class TestEphemeralQuery:
    def test_memory_scan_over_dht_residents(self):
        from tests.helpers import make_platform

        platform = make_platform(EPHEMERAL_YAML, nodes=2)
        try:
            for n in (1, 5, 9):
                platform.new_object("Counter", {"n": n})
            response = platform.http(
                "GET", "/api/classes/Counter/objects?where=n>=5&order=n:desc&explain=1"
            )
            assert response.status == 200
            assert [d["state"]["n"] for d in response.body["objects"]] == [9, 5]
            assert response.body["plan"] == "memory-scan"
        finally:
            platform.shutdown()


class TestCliQuery:
    @pytest.fixture()
    def pkg_file(self):
        path = Path(__file__).resolve().parent.parent / (
            "examples/packages/durability_demo.yaml"
        )
        return str(path)

    def test_query_command(self, pkg_file, capsys):
        code = main(
            [
                "query", pkg_file, "--auto-handlers", "--new", "Ledger",
                "--state", json.dumps({"balance": 5}),
                "--create", json.dumps({"balance": 20}),
                "--create", json.dumps({"balance": 50}),
                "--where", "balance>=20", "--order", "balance:desc",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 object(s), 3 scanned (backend=dict)" in out
        assert "plan: dict-scan" in out

    def test_query_command_sqlite_uses_index(self, pkg_file, capsys):
        code = main(
            [
                "query", pkg_file, "--auto-handlers", "--new", "Ledger",
                "--state", json.dumps({"balance": 5}),
                "--create", json.dumps({"balance": 20}),
                "--where", "balance>=10", "--order", "balance",
                "--backend", "sqlite", "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=sqlite" in out
        assert "index used: True" in out

    def test_bad_query_fails_cleanly(self, pkg_file, capsys):
        code = main(
            [
                "query", pkg_file, "--auto-handlers", "--new", "Ledger",
                "--where", "ghost==1",
            ]
        )
        assert code == 1
        assert "query failed" in capsys.readouterr().err

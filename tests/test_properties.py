"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.dataflow import DataflowSpec, DataflowStep
from repro.model.types import DataType, KeySpec, StateSpec
from repro.object.obj import ObjectRecord
from repro.sim.kernel import Environment
from repro.sim.resources import RateLimiter
from repro.storage.hashring import HashRing
from repro.storage.object_store import ObjectStore, PresignedUrl

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
keys = st.text(alphabet=string.ascii_letters + string.digits + "-_/.", min_size=1, max_size=24)
node_sets = st.lists(names, min_size=1, max_size=8, unique=True)


class TestHashRingProperties:
    @given(nodes=node_sets, lookup=keys)
    def test_owner_always_a_member(self, nodes, lookup):
        ring = HashRing(nodes, vnodes=16)
        assert ring.owner(lookup) in nodes

    @given(nodes=node_sets, lookup=keys, count=st.integers(1, 10))
    def test_owners_distinct_and_led_by_primary(self, nodes, lookup, count):
        ring = HashRing(nodes, vnodes=16)
        owners = ring.owners(lookup, count)
        assert len(owners) == len(set(owners)) == min(count, len(nodes))
        assert owners[0] == ring.owner(lookup)

    @given(nodes=st.lists(names, min_size=2, max_size=8, unique=True), lookup=keys)
    def test_removal_only_moves_keys_of_removed_node(self, nodes, lookup):
        ring = HashRing(nodes, vnodes=16)
        owner_before = ring.owner(lookup)
        victim = sorted(set(nodes) - {owner_before})[0]
        ring.remove_node(victim)
        assert ring.owner(lookup) == owner_before

    @given(nodes=node_sets, new_node=names, lookup=keys)
    def test_addition_moves_keys_only_to_new_node(self, nodes, new_node, lookup):
        if new_node in nodes:
            return
        ring = HashRing(nodes, vnodes=16)
        owner_before = ring.owner(lookup)
        ring.add_node(new_node)
        assert ring.owner(lookup) in (owner_before, new_node)

    @given(nodes=node_sets, new_node=names)
    @settings(max_examples=50)
    def test_add_remove_round_trip_restores_owner_map(self, nodes, new_node):
        if new_node in nodes:
            return
        ring = HashRing(nodes, vnodes=16)
        probes = [f"probe-{i}" for i in range(64)]
        before = {key: ring.owner(key) for key in probes}
        ring.add_node(new_node)
        ring.remove_node(new_node)
        assert {key: ring.owner(key) for key in probes} == before

    @given(nodes=node_sets, lookup=keys, extra=st.integers(0, 8))
    def test_owners_saturate_to_full_membership(self, nodes, lookup, extra):
        # Asking for at least as many replicas as there are nodes must
        # return every node exactly once (dedup across vnodes).
        ring = HashRing(nodes, vnodes=16)
        owners = ring.owners(lookup, len(nodes) + extra)
        assert sorted(owners) == sorted(nodes)


json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-1000, 1000) | st.text(max_size=10),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(string.ascii_lowercase, min_size=1, max_size=4), children, max_size=3),
    max_leaves=8,
)


class TestObjectRecordProperties:
    @given(
        state=st.dictionaries(names, json_values, max_size=5),
        updates=st.dictionaries(names, json_values, max_size=5),
    )
    def test_with_updates_semantics(self, state, updates):
        record = ObjectRecord(id="x", cls="C", version=1, state=state)
        updated = record.with_updates(updates)
        if updates:
            assert updated.version == 2
        for key, value in updates.items():
            assert updated.state[key] == value
        for key in state:
            if key not in updates:
                assert updated.state[key] == state[key]

    @given(
        state=st.dictionaries(names, json_values, max_size=5),
        files=st.dictionaries(names, keys, max_size=3),
        version=st.integers(0, 10_000),
    )
    def test_doc_roundtrip(self, state, files, version):
        record = ObjectRecord(id="x", cls="C", version=version, state=state, files=files)
        assert ObjectRecord.from_doc(record.to_doc()) == record


class TestStateSpecProperties:
    @given(names=st.lists(names, min_size=1, max_size=8, unique=True))
    def test_merge_with_self_is_idempotent(self, names):
        spec = StateSpec(tuple(KeySpec(n, DataType.JSON) for n in names))
        assert spec.merged_with(spec).names == spec.names

    @given(
        parent_names=st.lists(names, min_size=1, max_size=5, unique=True),
        child_names=st.lists(names, min_size=1, max_size=5, unique=True),
    )
    def test_merge_preserves_all_keys(self, parent_names, child_names):
        parent = StateSpec(tuple(KeySpec(n, DataType.JSON) for n in parent_names))
        child = StateSpec(tuple(KeySpec(n, DataType.JSON) for n in child_names))
        merged = parent.merged_with(child)
        assert set(merged.names) == set(parent_names) | set(child_names)
        # Parent keys keep their relative order at the front.
        assert list(merged.names)[: len(parent_names)] == parent_names


class TestDataflowProperties:
    @given(chain=st.integers(1, 12))
    def test_linear_chain_waves(self, chain):
        steps = [DataflowStep(id="s0", function="f")]
        for index in range(1, chain):
            steps.append(
                DataflowStep(id=f"s{index}", function="f", inputs=(f"s{index - 1}",))
            )
        waves = DataflowSpec(steps=tuple(steps)).waves()
        assert len(waves) == chain
        assert all(len(wave) == 1 for wave in waves)

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda e: e[0] < e[1]),
            max_size=20,
        )
    )
    def test_random_dag_waves_respect_dependencies(self, edges):
        inputs = {i: set() for i in range(10)}
        for src, dst in edges:
            inputs[dst].add(src)
        steps = tuple(
            DataflowStep(
                id=f"s{i}", function="f", inputs=tuple(f"s{j}" for j in sorted(inputs[i]))
            )
            for i in range(10)
        )
        waves = DataflowSpec(steps=steps).waves()
        position = {}
        for index, wave in enumerate(waves):
            for step in wave:
                position[step.id] = index
        assert len(position) == 10
        for src, dst in edges:
            assert position[f"s{src}"] < position[f"s{dst}"]


class TestPresignedUrlProperties:
    @given(key=keys, method=st.sampled_from(["GET", "PUT"]), expires=st.floats(1, 1e6))
    def test_parse_render_roundtrip(self, key, method, expires):
        url = PresignedUrl("bucket", key, method, expires, "ab" * 32)
        parsed = PresignedUrl.parse(url.render())
        assert parsed.bucket == "bucket"
        assert parsed.key == key
        assert parsed.method == method
        assert parsed.expires_at == expires

    @given(key=keys, data=st.binary(max_size=256))
    @settings(max_examples=25)
    def test_presign_use_roundtrip(self, key, data):
        env = Environment()
        store = ObjectStore(env)
        store.create_bucket("b")
        store.put_object("b", key, data)
        url = store.presign("b", key, "GET")
        assert store.presigned_get(url).data == data


class TestRateLimiterProperties:
    @given(units=st.lists(st.floats(0.01, 10), min_size=1, max_size=20), rate=st.floats(0.5, 100))
    @settings(max_examples=50)
    def test_total_service_time_is_work_over_rate(self, units, rate):
        env = Environment()
        limiter = RateLimiter(env, rate)

        def work(env):
            for amount in units:
                yield limiter.acquire(amount)
            return env.now

        finish = env.run(until=env.process(work(env)))
        assert abs(finish - sum(units) / rate) < 1e-6 * max(1.0, finish)


class TestKernelProperties:
    @given(delays=st.lists(st.floats(0, 10), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_completion_order_matches_delay_order(self, delays):
        env = Environment()
        completed = []

        def worker(env, index, delay):
            yield env.timeout(delay)
            completed.append(index)

        for index, delay in enumerate(delays):
            env.process(worker(env, index, delay))
        env.run()
        assert len(completed) == len(delays)
        finished_delays = [delays[i] for i in completed]
        assert finished_delays == sorted(finished_delays)

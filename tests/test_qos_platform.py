"""End-to-end tests of the QoS plane wired into the platform."""

from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.qos.plane import QosConfig

from tests.helpers import make_platform, seeded_baseline_run

QOS_YAML = """
name: qos-app
classes:
  - name: Hot
    qos: {throughput: 4, latency: 50, priority: 8}
    functions:
      - name: work
        image: t/hot
  - name: Noisy
    constraint: {budget: 10}
    functions:
      - name: work
        image: t/noisy
"""


def qos_platform(**qos_kwargs) -> Oparaca:
    return make_platform(
        QOS_YAML,
        {
            "t/hot": (lambda ctx: {"ok": True}, 0.001),
            "t/noisy": (lambda ctx: {"ok": True}, 0.001),
        },
        nodes=2,
        qos=QosConfig(enabled=True, **qos_kwargs),
        events_enabled=True,
    )


class TestGatewayAdmission:
    def test_flood_gets_429_with_retry_hint(self):
        platform = qos_platform()
        obj = platform.new_object("Hot")
        statuses = [
            platform.http("POST", f"/api/objects/{obj}/invokes/work").status
            for _ in range(10)
        ]
        assert 200 in statuses
        rejected = [s for s in statuses if s == 429]
        assert rejected  # burst of 1 + rate 4 rps cannot admit 10 at once
        response = platform.http("POST", f"/api/objects/{obj}/invokes/work")
        assert response.status == 429
        assert response.body["type"] == "RateLimitedError"
        assert response.body["retry_after_s"] > 0
        platform.shutdown()

    def test_rejections_counted_and_evented(self):
        platform = qos_platform()
        obj = platform.new_object("Hot")
        for _ in range(10):
            platform.http("POST", f"/api/objects/{obj}/invokes/work")
        assert platform.gateway.rejected > 0
        rejects = platform.platform_events("qos.reject")
        assert rejects and rejects[0].fields["path"] == "http"
        platform.shutdown()

    def test_tokens_refill_with_time(self):
        platform = qos_platform()
        obj = platform.new_object("Hot")
        for _ in range(10):
            platform.http("POST", f"/api/objects/{obj}/invokes/work")
        platform.advance(2.0)  # 4 rps * 2 s = 8 tokens back
        assert platform.http("POST", f"/api/objects/{obj}/invokes/work").status == 200
        platform.shutdown()

    def test_unlimited_class_not_rate_limited(self):
        platform = qos_platform()
        obj = platform.new_object("Noisy")
        statuses = {
            platform.http("POST", f"/api/objects/{obj}/invokes/work").status
            for _ in range(20)
        }
        assert statuses == {200}
        platform.shutdown()

    def test_concurrency_ceiling_503_and_release(self):
        from repro.platform.gateway import HttpRequest

        platform = qos_platform(concurrency_limit=1)
        platform.register_image("t/slow", lambda ctx: {"ok": True}, 5.0)
        platform.deploy(
            "name: extra\nclasses:\n  - name: Slow\n    functions:\n"
            "      - name: work\n        image: t/slow\n"
        )
        slow = platform.new_object("Slow")
        noisy = platform.new_object("Noisy")
        gateway = platform.gateway

        responses = []

        def driver(env):
            first = gateway.handle(
                HttpRequest("POST", f"/api/objects/{slow}/invokes/work")
            )
            yield env.timeout(0.1)  # first request still in flight
            second = yield gateway.handle(
                HttpRequest("POST", f"/api/objects/{noisy}/invokes/work")
            )
            responses.append(second)
            responses.append((yield first))
            third = yield gateway.handle(
                HttpRequest("POST", f"/api/objects/{noisy}/invokes/work")
            )
            responses.append(third)

        platform.run(driver(platform.env))
        assert responses[0].status == 503  # ceiling held by the slow call
        assert responses[1].status == 200
        assert responses[2].status == 200  # slot released after completion
        platform.shutdown()


class TestGatewayErrorPaths:
    def test_unknown_route_has_typed_body(self):
        platform = qos_platform()
        response = platform.http("GET", "/api/nothing/here")
        assert response.status == 404
        assert response.body["type"] == "NoRouteError"
        assert "/api/nothing/here" in response.body["error"]
        platform.shutdown()

    def test_handler_exception_becomes_500_and_releases_slot(self):
        platform = qos_platform(concurrency_limit=4)
        gateway = platform.gateway

        def boom(http):
            raise RuntimeError("router exploded")

        original = gateway._route
        gateway._route = boom
        try:
            response = platform.http("GET", "/api/classes")
        finally:
            gateway._route = original
        assert response.status == 500
        assert response.body["type"] == "InternalError"
        # The in-flight slot must not leak on the exception path.
        assert platform.qos.admission.in_flight == 0
        platform.shutdown()


class TestAsyncPath:
    def test_async_flood_resolves_with_rate_limited_failures(self):
        platform = qos_platform()
        obj = platform.new_object("Hot")
        completions = [platform.invoke_async(obj, "work") for _ in range(10)]
        platform.advance(5.0)
        results = [event.value for event in completions]
        ok = [r for r in results if r.ok]
        limited = [r for r in results if r.error_type == "RateLimitedError"]
        assert ok and limited
        assert len(ok) + len(limited) == 10
        assert platform.queue.rejected == len(limited)
        platform.shutdown()

    def test_flood_is_shed_with_overload_error(self):
        platform = qos_platform(
            shed_queue_depth=16, shed_check_interval_s=0.05
        )
        ids = [platform.new_object("Noisy") for _ in range(4)]
        completions = [
            platform.invoke_async(ids[i % 4], "work") for i in range(200)
        ]
        platform.advance(10.0)
        results = [event.value for event in completions if event.triggered]
        shed = [r for r in results if r.error_type == "OverloadError"]
        assert shed
        assert platform.queue.shed == len(shed)
        assert platform.platform_events("qos.shed")
        platform.shutdown()

    def test_per_object_ordering_preserved_under_wfq(self):
        platform = qos_platform()
        seen = []

        def recorder(ctx):
            seen.append(ctx.payload["seq"])
            return {}

        platform.register_image("t/rec", recorder, 0.002)
        platform.deploy(
            "name: ord\nclasses:\n  - name: Ordered\n    functions:\n"
            "      - name: work\n        image: t/rec\n"
        )
        obj = platform.new_object("Ordered")
        for seq in range(30):
            platform.invoke_async(obj, "work", {"seq": seq})
        platform.advance(5.0)
        assert seen == list(range(30))
        platform.shutdown()

    def test_stop_reports_pending(self):
        platform = qos_platform()
        obj = platform.new_object("Noisy")
        for _ in range(50):
            platform.invoke_async(obj, "work")
        report = platform.queue.stop()
        assert report["pending"] > 0
        platform.shutdown()


class TestReportsAndBaseline:
    def test_qos_report_shape(self):
        platform = qos_platform()
        obj = platform.new_object("Hot")
        noisy = platform.new_object("Noisy")
        platform.http("POST", f"/api/objects/{obj}/invokes/work")
        platform.http("POST", f"/api/objects/{noisy}/invokes/work")
        report = platform.qos_report()
        classes = {p["class"]: p for p in report["policies"]}
        assert classes["Hot"]["rate_rps"] == 4
        assert classes["Hot"]["weight"] == 8
        assert classes["Noisy"]["tier"] == 1  # economy budget
        assert "Hot" in report["admission"]
        assert "fair_queue" in report and "shedder" in report
        platform.shutdown()

    def test_observability_report_and_summary_include_qos(self):
        from repro.monitoring.export import format_summary

        platform = qos_platform()
        obj = platform.new_object("Hot")
        for _ in range(6):
            platform.http("POST", f"/api/objects/{obj}/invokes/work")
        report = platform.observability_report()
        assert "qos" in report
        text = format_summary(report)
        assert "qos enforcement plane:" in text
        platform.shutdown()

    def test_snapshot_gains_qos_keys_only_when_enabled(self):
        platform = qos_platform()
        keys = set(platform.snapshot())
        assert {"gateway.rejected", "qos.in_flight", "qos.queue_depth"} <= keys
        platform.shutdown()

        baseline = Oparaca(PlatformConfig(nodes=2))
        assert not {"gateway.rejected", "qos.in_flight"} & set(baseline.snapshot())
        baseline.shutdown()

    def test_disabled_plane_runs_identically_to_seed_baseline(self):
        default = seeded_baseline_run()
        explicit_off = seeded_baseline_run(qos=QosConfig(enabled=False))
        assert default == explicit_off

    def test_nfr_report_adds_p95_verdict_when_plane_on(self):
        platform = qos_platform()
        obj = platform.new_object("Hot")
        for _ in range(30):
            platform.http("POST", f"/api/objects/{obj}/invokes/work")
            platform.advance(0.3)
        requirements = {v.requirement for v in platform.nfr_report() if v.cls == "Hot"}
        assert "latency_p95_ms" in requirements
        platform.shutdown()

"""Unit tests for the consistent-hash ring."""

import pytest

from repro.errors import StorageError
from repro.storage.hashring import HashRing


class TestHashRing:
    def test_empty_ring_raises(self):
        with pytest.raises(StorageError, match="empty"):
            HashRing().owner("key")

    def test_vnodes_validation(self):
        with pytest.raises(StorageError):
            HashRing(vnodes=0)

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.owner(f"k{i}") == "only" for i in range(50))

    def test_owner_is_deterministic(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.owner("some-key") == ring.owner("some-key")

    def test_duplicate_node_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(StorageError, match="already"):
            ring.add_node("a")

    def test_remove_unknown_node_rejected(self):
        with pytest.raises(StorageError, match="not in ring"):
            HashRing(["a"]).remove_node("b")

    def test_membership(self):
        ring = HashRing(["a", "b"])
        assert "a" in ring
        assert "z" not in ring
        assert len(ring) == 2
        assert ring.nodes == ("a", "b")

    def test_distribution_roughly_balanced(self):
        ring = HashRing([f"node-{i}" for i in range(4)], vnodes=128)
        keys = [f"key-{i}" for i in range(4000)]
        counts = ring.distribution(keys)
        for node, count in counts.items():
            assert 500 < count < 1700, f"{node} owns {count} of 4000"

    def test_minimal_disruption_on_node_add(self):
        ring = HashRing(["a", "b", "c"], vnodes=128)
        keys = [f"key-{i}" for i in range(2000)]
        before = {k: ring.owner(k) for k in keys}
        ring.add_node("d")
        moved = sum(1 for k in keys if ring.owner(k) != before[k])
        # Consistent hashing moves ~1/N of the keys, not most of them.
        assert moved < len(keys) * 0.45

    def test_keys_not_owned_by_removed_node(self):
        ring = HashRing(["a", "b", "c"])
        ring.remove_node("b")
        assert all(ring.owner(f"k{i}") != "b" for i in range(200))

    def test_owners_distinct_replicas(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        owners = ring.owners("some-key", 2)
        assert len(owners) == 2
        assert len(set(owners)) == 2

    def test_owners_capped_at_node_count(self):
        ring = HashRing(["a", "b"])
        assert len(ring.owners("k", 5)) == 2

    def test_owners_first_is_primary(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.owners("k", 3)[0] == ring.owner("k")

    def test_owners_count_validation(self):
        with pytest.raises(StorageError):
            HashRing(["a"]).owners("k", 0)

    def test_surviving_keys_stable_after_removal(self):
        ring = HashRing(["a", "b", "c"], vnodes=128)
        keys = [f"key-{i}" for i in range(1000)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove_node("c")
        for key in keys:
            if before[key] != "c":
                assert ring.owner(key) == before[key]

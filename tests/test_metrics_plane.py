"""Tests for the metrics plane: labeled instruments, scraper, exposition,
SLO burn-rate evaluation, kernel profiling, and the platform wiring."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.errors import ValidationError
from repro.model.nfr import NonFunctionalRequirements, QosRequirement
from repro.monitoring.collector import MonitoringSystem
from repro.monitoring.events import EventLog
from repro.monitoring.exposition import (
    escape_label_value,
    metrics_json,
    render_openmetrics,
    sanitize_metric_name,
)
from repro.monitoring.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlidingWindow,
    label_key,
    render_series_name,
)
from repro.monitoring.plane import MetricsConfig, set_counter
from repro.monitoring.scraper import MetricsScraper
from repro.monitoring.slo import BurnWindow, SloConfig, SloEvaluator

from tests.helpers import LISTING1_YAML, make_platform


# -- labeled instruments -----------------------------------------------------


class TestLabeledRegistry:
    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        plain = registry.counter("req")
        labeled = registry.counter("req", {"class": "Img"})
        plain.inc()
        labeled.inc(2)
        assert plain.value == 1
        assert labeled.value == 2

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.gauge("g", {"x": "1", "y": "2"})
        b = registry.gauge("g", {"y": "2", "x": "1"})
        assert a is b

    def test_label_values_coerced_to_str(self):
        assert label_key({"n": 3}) == (("n", "3"),)

    def test_snapshot_renders_labeled_series(self):
        registry = MetricsRegistry()
        registry.counter("req").inc(5)
        registry.counter("req", {"class": "Img"}).inc(7)
        snap = registry.snapshot()
        assert snap["req"] == 5
        assert snap['req{class=Img}'] == 7

    def test_render_series_name(self):
        assert render_series_name("m", label_key({"b": "2", "a": "1"})) == "m{a=1,b=2}"
        assert render_series_name("m", label_key(None)) == "m"

    def test_len_counts_all_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b", {"k": "v"})
        registry.histogram("c")
        assert len(registry) == 3


class TestValueValidation:
    """Satellite 1: reject NaN/inf/bool at every recording surface."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf"), True, False])
    def test_counter_inc_rejects(self, bad):
        with pytest.raises(ValidationError):
            Counter("c").inc(bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), True])
    def test_gauge_set_rejects(self, bad):
        with pytest.raises(ValidationError):
            Gauge("g").set(bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("-inf"), False])
    def test_gauge_add_rejects(self, bad):
        with pytest.raises(ValidationError):
            Gauge("g").add(bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), True, "0.5"])
    def test_histogram_record_rejects(self, bad):
        with pytest.raises(ValidationError):
            Histogram("h").record(bad)

    def test_rejected_value_leaves_state_untouched(self):
        histogram = Histogram("h")
        histogram.record(1.0)
        with pytest.raises(ValidationError):
            histogram.record(float("nan"))
        assert histogram.count == 1
        assert histogram.sum == 1.0


class TestLabeledReservoirSeed:
    """Satellite 2: the reservoir RNG is seeded from (name, labels)."""

    def test_same_series_same_reservoir(self):
        a = Histogram("lat", max_samples=16, labels={"class": "Img"})
        b = Histogram("lat", max_samples=16, labels={"class": "Img"})
        for i in range(500):
            a.record(i * 0.001)
            b.record(i * 0.001)
        assert a._values == b._values

    def test_distinct_labels_distinct_stream(self):
        a = Histogram("lat", max_samples=16, labels={"class": "Img"})
        b = Histogram("lat", max_samples=16, labels={"class": "Doc"})
        for i in range(500):
            a.record(i * 0.001)
            b.record(i * 0.001)
        # Same data, independent reservoir decisions.
        assert a._values != b._values

    def test_unlabeled_keeps_name_only_seed(self):
        import random
        import zlib

        histogram = Histogram("lat")
        expected = random.Random(zlib.crc32(b"lat"))
        assert histogram._rng.getstate() == expected.getstate()


# -- sliding-window eviction boundaries (satellite 3) ------------------------


class TestSlidingWindowEviction:
    def test_sample_exactly_at_cutoff_is_retained(self):
        window = SlidingWindow(10.0)
        window.record(0.0, 0.5)
        assert window.latency_percentile(10.0, 50) == 0.5
        assert len(window) == 1

    def test_sample_just_past_cutoff_is_evicted(self):
        window = SlidingWindow(10.0)
        window.record(0.0, 0.5)
        assert window.latency_percentile(10.000001, 50) == 0.0
        assert len(window) == 0

    def test_out_of_order_sample_parks_behind_newer(self):
        window = SlidingWindow(10.0)
        window.record(8.0, 0.1)
        window.record(2.0, 0.9)  # out of order: behind the t=8 sample
        # At t=13 the t=2 sample is stale, but eviction stops at the
        # front (t=8, retained), so the stale sample survives with it.
        assert window.error_rate(13.0) == 0.0
        assert len(window) == 2
        # Once the front ages out, both go.
        assert window.throughput(18.5) == 0.0
        assert len(window) == 0


# -- scraper ------------------------------------------------------------------


class TestMetricsScraper:
    def test_scrape_samples_all_instruments(self, env):
        registry = MetricsRegistry()
        registry.counter("c", {"k": "v"}).inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(0.2)
        scraper = MetricsScraper(env, registry, interval_s=1.0)
        scraper.scrape_once()
        assert scraper.series("c", {"k": "v"}).latest == 3
        assert scraper.series("g").latest == 1.5
        assert scraper.series("h:count").latest == 1
        assert scraper.series("h:p50").latest == 0.2

    def test_collectors_run_before_sampling(self, env):
        registry = MetricsRegistry()
        scraper = MetricsScraper(env, registry, interval_s=1.0)
        scraper.collectors.append(lambda: registry.counter("pulled").inc())
        scraper.scrape_once()
        assert scraper.series("pulled").latest == 1

    def test_ring_buffer_capacity(self, env):
        registry = MetricsRegistry()
        registry.gauge("g").set(0.0)
        scraper = MetricsScraper(env, registry, interval_s=1.0, capacity=3)
        for _ in range(7):
            scraper.scrape_once()
        assert len(scraper.series("g")) == 3

    def test_periodic_loop_and_counter_rate(self, env):
        registry = MetricsRegistry()
        counter = registry.counter("ticks")

        def workload(env):
            while True:
                yield env.timeout(0.5)
                counter.inc()

        env.process(workload(env))
        scraper = MetricsScraper(env, registry, interval_s=1.0)
        scraper.start()
        env.run(until=10.0)
        series = scraper.series("ticks")
        assert series is not None and len(series) == 10
        assert series.rate(5.0, env.now) == pytest.approx(2.0)
        scraper.stop()

    def test_on_scrape_receives_timestamp(self, env):
        registry = MetricsRegistry()
        scraper = MetricsScraper(env, registry, interval_s=2.0)
        seen = []
        scraper.on_scrape.append(seen.append)
        scraper.start()
        env.run(until=7.0)
        assert seen == [2.0, 4.0, 6.0]

    def test_validation(self, env):
        with pytest.raises(ValidationError):
            MetricsScraper(env, MetricsRegistry(), interval_s=0)
        with pytest.raises(ValidationError):
            MetricsScraper(env, MetricsRegistry(), capacity=1)


def test_set_counter_is_monotone():
    registry = MetricsRegistry()
    set_counter(registry, "c", 5.0, {"p": "x"})
    set_counter(registry, "c", 3.0, {"p": "x"})  # stale read: no-op
    assert registry.counter("c", {"p": "x"}).value == 5.0
    set_counter(registry, "c", 9.0, {"p": "x"})
    assert registry.counter("c", {"p": "x"}).value == 9.0


# -- exposition ---------------------------------------------------------------


class TestExposition:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("qos.queue_delay_s") == "qos_queue_delay_s"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("a-b c{d}") == "a_b_c_d_"

    def test_escape_label_value(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_render_basic(self):
        registry = MetricsRegistry()
        registry.counter("req.total", {"class": "Img"}).inc(4)
        registry.gauge("depth").set(2.0)
        text = render_openmetrics(registry)
        assert "# TYPE req_total counter" in text
        assert 'req_total{class="Img"} 4' in text
        assert "# TYPE depth gauge" in text
        assert text.endswith("# EOF\n")

    def test_histogram_as_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_s", {"class": "Img"})
        for value in (0.1, 0.2, 0.3):
            histogram.record(value)
        text = render_openmetrics(registry)
        assert 'lat_s_count{class="Img"} 3' in text
        assert 'lat_s_sum{class="Img"} 0.6' in text
        assert 'lat_s{class="Img",quantile="0.50"}' in text

    def test_escaped_label_values_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c", {"path": 'a\\b"c\nd'}).inc()
        text = render_openmetrics(registry)
        assert 'c{path="a\\\\b\\"c\\nd"} 1' in text

    def test_sanitization_collision_keeps_both_samples(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(1)
        registry.gauge("a_b").set(2.0)
        text = render_openmetrics(registry)
        # One TYPE line (first kind wins), both samples present.
        assert text.count("# TYPE a_b") == 1
        assert "# TYPE a_b counter" in text
        assert "a_b 1" in text
        assert "a_b 2" in text

    def test_json_snapshot_includes_series(self, env):
        registry = MetricsRegistry()
        registry.counter("c", {"k": "v"}).inc(2)
        scraper = MetricsScraper(env, registry, interval_s=1.0)
        scraper.scrape_once()
        doc = json.loads(metrics_json(registry, scraper=scraper))
        assert doc["instruments"]["counters"][0]["labels"] == {"k": "v"}
        series = doc["scrape"]["series"][0]
        assert series["series_id"] == "c{k=v}"
        assert series["points"] == [[0.0, 2.0]]


# -- SLO evaluation -----------------------------------------------------------


def _evaluator(env, **config):
    monitoring = MonitoringSystem(env)
    events = EventLog(env, enabled=True)
    evaluator = SloEvaluator(
        env,
        monitoring,
        events=events,
        config=SloConfig(
            windows=(BurnWindow(long_s=10.0, short_s=2.0, burn_rate=2.0, severity="page"),),
            **config,
        ),
    )
    return evaluator, monitoring, events


class TestSloEvaluator:
    def test_availability_burn_fires_and_resolves(self, env):
        evaluator, monitoring, events = _evaluator(env)
        evaluator.watch_class(
            "C", NonFunctionalRequirements(qos=QosRequirement(availability=0.9))
        )
        obs = monitoring.for_class("C")
        for i in range(10):
            obs.record_invocation(0.01, ok=i % 2 == 0)  # 50% bad vs 10% budget
        evaluator.evaluate(now=1.0)
        assert [a.slo for a in evaluator.firing()] == ["availability"]
        assert len(events.of_type("slo.alert")) == 1
        for _ in range(80):
            obs.record_invocation(0.01, ok=True)
        evaluator.evaluate(now=20.0)
        assert evaluator.firing() == []
        assert len(events.of_type("slo.resolve")) == 1
        alert = evaluator.alerts[0]
        assert (alert.fired_at, alert.resolved_at) == (1.0, 20.0)

    def test_min_requests_guard(self, env):
        evaluator, monitoring, _events = _evaluator(env, min_requests=5)
        evaluator.watch_class(
            "C", NonFunctionalRequirements(qos=QosRequirement(availability=0.9))
        )
        obs = monitoring.for_class("C")
        obs.record_invocation(0.01, ok=False)
        obs.record_invocation(0.01, ok=False)
        evaluator.evaluate(now=1.0)
        assert evaluator.firing() == []

    def test_latency_objective_counts_slow_requests(self, env):
        evaluator, monitoring, _events = _evaluator(env)
        evaluator.watch_class(
            "C", NonFunctionalRequirements(qos=QosRequirement(latency_ms=50))
        )
        obs = monitoring.for_class("C")
        assert obs.slo_threshold_s == pytest.approx(0.05)
        for _ in range(8):
            obs.record_invocation(0.2, ok=True)  # all slow, all "ok"
        evaluator.evaluate(now=1.0)
        assert obs.slow == 8
        assert [a.slo for a in evaluator.firing()] == ["latency_p95"]

    def test_throughput_deficit_fires_when_saturated(self, env):
        evaluator, monitoring, _events = _evaluator(env)
        evaluator.watch_class(
            "C",
            NonFunctionalRequirements(qos=QosRequirement(throughput_rps=100)),
            saturated=lambda: True,
        )
        for tick in (1.0, 2.0, 3.0):
            evaluator.evaluate(now=tick)
        firing = evaluator.firing()
        assert [a.slo for a in firing] == ["throughput"]
        assert firing[0].severity == "ticket"

    def test_throughput_quiet_when_not_saturated(self, env):
        evaluator, _monitoring, _events = _evaluator(env)
        evaluator.watch_class(
            "C",
            NonFunctionalRequirements(qos=QosRequirement(throughput_rps=100)),
            saturated=lambda: False,
        )
        for tick in (1.0, 2.0, 3.0):
            evaluator.evaluate(now=tick)
        assert evaluator.firing() == []

    def test_rpo_point_alert(self, env):
        class FakePolicy:
            enabled = True
            rpo_budget_s = 0.1

        class FakeTracker:
            recoveries = 1
            last_recovery = {"rpo_s": 0.5, "rto_s": 0.7, "lost_writes": 3}

        class FakeDurability:
            def tracker_for(self, cls):
                return FakeTracker()

            def policy_for(self, cls):
                return FakePolicy()

        evaluator, _monitoring, events = _evaluator(env)
        evaluator.watch_class(
            "C", NonFunctionalRequirements(qos=QosRequirement(availability=0.9))
        )
        evaluator.watch_durability(FakeDurability())
        evaluator.evaluate(now=1.0)
        rpo_alerts = [a for a in evaluator.alerts if a.slo == "durability_rpo"]
        assert len(rpo_alerts) == 1
        assert rpo_alerts[0].fired_at == rpo_alerts[0].resolved_at == 1.0
        # Already-judged recoveries are not re-alerted.
        evaluator.evaluate(now=2.0)
        assert len([a for a in evaluator.alerts if a.slo == "durability_rpo"]) == 1
        assert len(events.of_type("slo.alert")) == 1

    def test_watch_class_is_idempotent(self, env):
        evaluator, _monitoring, _events = _evaluator(env)
        nfr = NonFunctionalRequirements(qos=QosRequirement(availability=0.9))
        evaluator.watch_class("C", nfr)
        evaluator.watch_class("C", nfr)
        assert len(evaluator._objectives) == 1

    def test_report_shape(self, env):
        evaluator, monitoring, _events = _evaluator(env)
        evaluator.watch_class(
            "C",
            NonFunctionalRequirements(
                qos=QosRequirement(availability=0.9, throughput_rps=50)
            ),
        )
        monitoring.for_class("C").record_invocation(0.01, ok=True)
        evaluator.evaluate(now=1.0)
        report = evaluator.report()
        assert report["evaluations"] == 1
        slos = {(row["cls"], row["slo"]) for row in report["objectives"]}
        assert slos == {("C", "availability"), ("C", "throughput")}
        assert report["alerts"] == [] and report["firing"] == []

    def test_burn_window_validation(self):
        with pytest.raises(ValidationError):
            BurnWindow(long_s=5.0, short_s=5.0, burn_rate=2.0, severity="page")
        with pytest.raises(ValidationError):
            BurnWindow(long_s=10.0, short_s=1.0, burn_rate=1.0, severity="page")
        with pytest.raises(ValidationError):
            SloConfig(windows=())


# -- kernel profiling ---------------------------------------------------------


class TestKernelProfiling:
    def test_off_by_default(self, env):
        assert env.profile is None

    def test_records_dispatches_by_event_type(self, env):
        profile = env.enable_profiling()
        assert env.enable_profiling() is profile  # idempotent

        def proc(env):
            yield env.timeout(1.0)
            yield env.timeout(2.0)

        env.process(proc(env))
        env.run()
        assert profile.total_dispatches >= 2
        assert profile.total_seconds >= 0
        stats = profile.stats()
        assert "Timeout" in stats
        assert stats["Timeout"]["count"] >= 2

    def test_collect_metrics_exports_labeled_series(self, env):
        profile = env.enable_profiling()

        def proc(env):
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        registry = MetricsRegistry()
        profile.collect_metrics(registry)
        counter = registry.counter(
            "sim.dispatch_total", {"event": "Timeout", "plane": "kernel"}
        )
        assert counter.value >= 1


# -- platform integration -----------------------------------------------------


def _workload(platform):
    platform.register_image("img/resize", lambda ctx: {"ok": True}, 0.004)
    platform.register_image("img/change-format", lambda ctx: {"ok": True}, 0.004)
    platform.register_image("img/detect-object", lambda ctx: {"ok": True}, 0.004)
    platform.deploy(LISTING1_YAML)
    obj = platform.new_object("Image")
    for _ in range(10):
        platform.invoke(obj, "resize", {"width": 64})
        platform.advance(0.1)
    return obj


class TestPlatformIntegration:
    def test_metrics_plane_end_to_end(self):
        platform = make_platform(
            events_enabled=True, metrics=MetricsConfig(enabled=True)
        )
        _workload(platform)
        platform.shutdown()
        assert platform.metrics.scraper.scrapes > 0
        text = platform.metrics_exposition()
        assert 'invoker_invocations{plane="invoker"}' in text
        assert 'class_completed{class="Image",plane="invoker"}' in text
        assert "sim_dispatch_total" in text  # kernel profiling hooked up
        report = platform.observability_report()
        assert "metrics" in report and "slo" in report
        slos = {(r["cls"], r["slo"]) for r in report["slo"]["objectives"]}
        assert ("Image", "throughput") in slos
        doc = json.loads(platform.metrics_report())
        assert doc["scrape"]["scrapes"] == platform.metrics.scraper.scrapes

    def test_disabled_plane_builds_nothing(self):
        platform = make_platform()
        assert platform.metrics is None
        assert platform.env.profile is None
        assert platform.metrics_exposition() == ""
        assert platform.metrics_report() == "{}"
        assert platform.slo_report() == {}
        report = _and_report(platform)
        assert "metrics" not in report and "slo" not in report

    def test_disabled_plane_is_behavior_neutral(self):
        """Same seed, same workload: the sim executes identically with
        the plane on and off (pull-model — nothing on the hot path)."""
        results = []
        for metrics in (MetricsConfig(), MetricsConfig(enabled=True)):
            platform = make_platform(seed=7, metrics=metrics)
            _workload(platform)
            platform.shutdown()
            obs = platform.monitoring.for_class("Image")
            results.append(
                (
                    platform.now,
                    obs.completed,
                    obs.failed,
                    obs.latency.count,
                    obs.latency.percentile(99),
                )
            )
        assert results[0] == results[1]

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            MetricsConfig(scrape_interval_s=0)
        with pytest.raises(ValidationError):
            MetricsConfig(retention_points=1)


def _and_report(platform):
    _workload(platform)
    platform.shutdown()
    return platform.observability_report()


# -- CLI ----------------------------------------------------------------------


@pytest.fixture
def pkg_file(tmp_path):
    path = tmp_path / "pkg.yml"
    path.write_text(LISTING1_YAML)
    return str(path)


class TestCliCommands:
    def test_metrics_command_openmetrics(self, pkg_file, capsys):
        from repro.platform.cli import main

        assert (
            main(
                [
                    "metrics", pkg_file, "--auto-handlers", "--new", "Image",
                    "--invoke", "resize", "--rounds", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "# TYPE gateway_requests counter" in out
        assert out.rstrip().endswith("# EOF")

    def test_metrics_command_json(self, pkg_file, capsys):
        from repro.platform.cli import main

        assert (
            main(
                [
                    "metrics", pkg_file, "--auto-handlers", "--new", "Image",
                    "--invoke", "resize", "--rounds", "5", "--json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert "instruments" in doc and "scrape" in doc

    def test_slo_command(self, pkg_file, capsys):
        from repro.platform.cli import main

        assert (
            main(
                [
                    "slo", pkg_file, "--auto-handlers", "--new", "Image",
                    "--invoke", "resize", "--rounds", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "objectives" in out

    def test_slo_command_json_under_chaos(self, pkg_file, capsys):
        from repro.platform.cli import main

        assert (
            main(
                [
                    "slo", pkg_file, "--auto-handlers", "--new", "Image",
                    "--invoke", "resize", "--rounds", "10",
                    "--chaos", "node-crash", "--json",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert {"evaluations", "objectives", "alerts", "firing"} <= set(doc)


# -- bench harness ------------------------------------------------------------


def _load_bench_macro():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_macro.py"
    spec = importlib.util.spec_from_file_location("bench_macro", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchMacro:
    def test_smoke_and_gate(self):
        bench = _load_bench_macro()
        result = bench.run_macro(seed=0, objects=2, rounds=10)
        assert result["sim"]["invocations"] > 0
        assert result["sim"]["dispatches"] > 0
        assert result["wall"]["peak_rss_kb"] > 0
        # A result never regresses against itself.
        assert bench._gate(result, result, threshold=0.10) == []
        # A 2x latency regression trips the gate.
        worse = json.loads(json.dumps(result))
        worse["sim"]["latency_p95_ms"] = result["sim"]["latency_p95_ms"] * 2
        failures = bench._gate(worse, result, threshold=0.10)
        assert any("latency_p95_ms" in f for f in failures)
        # Wall metrics gate only on a matching host fingerprint.
        other_host = json.loads(json.dumps(result))
        other_host["host"] = {"platform": "elsewhere"}
        other_host["wall"]["events_per_sec"] = 1.0
        assert bench._gate(other_host, result, threshold=0.10) == []

    def test_deterministic_sim_section(self):
        bench = _load_bench_macro()
        a = bench.run_macro(seed=3, objects=2, rounds=10)
        b = bench.run_macro(seed=3, objects=2, rounds=10)
        assert a["sim"] == b["sim"]

"""Stop/restart accounting and worker-assignment tests for ConsumerGroup."""

from repro.messaging.topic import ConsumerGroup, Topic


def slow_handler(env, seen, delay=0.01):
    def handler(message):
        yield env.timeout(delay)
        seen.append(message.value)

    return handler


class TestStopAccounting:
    def test_stop_reports_pending_backlog(self, env):
        topic = Topic(env, "t", partitions=2)
        seen = []
        group = ConsumerGroup(env, topic, slow_handler(env, seen))
        for i in range(10):
            topic.publish(f"k{i}", i)
        env.run(until=0.025)  # a few handled, most still queued
        report = group.stop()
        assert report["pending"] == 10 - group.consumed
        assert report["pending"] > 0

    def test_stop_idle_group_reports_zero(self, env):
        topic = Topic(env, "t", partitions=2)
        group = ConsumerGroup(env, topic, slow_handler(env, []))
        for i in range(4):
            topic.publish(f"k{i}", i)
        env.run(until=5.0)
        assert group.stop() == {"pending": 0}

    def test_fetched_message_after_stop_counts_as_stranded(self, env):
        topic = Topic(env, "t", partitions=1)
        seen = []
        group = ConsumerGroup(env, topic, slow_handler(env, seen))
        topic.publish("k", "first")
        env.run(until=1.0)
        assert seen == ["first"]
        # Worker is now blocked in topic.get(); stop, then publish: the
        # blocked fetch completes, and the record must be accounted for.
        report_pending = group.stop()["pending"]
        assert report_pending == 0
        topic.publish("k", "late")
        env.run(until=2.0)
        assert seen == ["first"]  # never handled
        assert group.stranded == 1
        # The published-but-unhandled record shows up if stop is re-read.
        assert topic.published - group.consumed == 1

    def test_messages_survive_in_topic_for_restart(self, env):
        topic = Topic(env, "t", partitions=2)
        first_seen = []
        group = ConsumerGroup(env, topic, slow_handler(env, first_seen))
        for i in range(20):
            topic.publish(f"k{i}", i)
        env.run(until=0.03)
        group.stop()
        pending_before = topic.depth()
        assert pending_before > 0
        # A fresh group picks up the queued backlog.
        second_seen = []
        ConsumerGroup(env, topic, slow_handler(env, second_seen))
        env.run(until=5.0)
        assert len(second_seen) == pending_before
        combined = first_seen + second_seen
        assert len(combined) == len(set(combined))  # nothing handled twice
        assert set(combined) <= set(range(20))


class TestWorkerAssignment:
    def test_more_workers_than_partitions_is_capped(self, env):
        topic = Topic(env, "t", partitions=2)
        seen = []
        group = ConsumerGroup(env, topic, slow_handler(env, seen), workers=8)
        assert len(group.processes) == 2  # one worker per partition, max
        for i in range(10):
            topic.publish(f"k{i}", i)
        env.run(until=5.0)
        assert sorted(seen) == list(range(10))
        group.stop()

    def test_per_object_ordering_across_stop_restart(self, env):
        topic = Topic(env, "t", partitions=4)
        seen = []

        def handler(message):
            yield env.timeout(0.01)
            seen.append(message.value)

        group = ConsumerGroup(env, topic, handler)
        for seq in range(15):
            topic.publish("one-object", ("a", seq))
        env.run(until=0.05)
        group.stop()
        for seq in range(15, 30):
            topic.publish("one-object", ("a", seq))
        ConsumerGroup(env, topic, handler)
        env.run(until=5.0)
        handled = [seq for _, seq in seen]
        # Some records may be stranded at the stop boundary, but the
        # sequence numbers that were handled must be strictly increasing.
        assert handled == sorted(handled)
        assert len(handled) >= 28  # at most the one in-flight fetch lost

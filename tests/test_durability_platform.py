"""End-to-end tests of the durability plane wired into the platform:
crash recovery with measured RPO/RTO, reports, and the off-by-default
baseline guarantee."""

from repro.durability.plane import DurabilityConfig
from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.sim.kernel import all_of

from tests.helpers import make_platform, seeded_baseline_run
from tests.test_durability_snapshot import DURA_YAML, bump, dura_platform


def crash_owner(platform, object_id, cls="Cart"):
    """Fail the node owning ``object_id`` and wait for every recovery."""
    victim = platform.crm.runtime(cls).dht.owner(object_id)
    platform.fail_node(victim)
    recoveries = platform.durability.recoveries()
    if recoveries:
        platform.env.run(until=all_of(platform.env, recoveries))
    return victim


class TestCrashRecovery:
    def test_strong_class_recovers_with_zero_rpo(self):
        platform = dura_platform()
        ids = [platform.new_object("Ledger", object_id=f"led-{i}") for i in range(6)]
        for oid in ids:
            platform.invoke(oid, "bump")
            platform.invoke(oid, "bump")
        crash_owner(platform, ids[0], cls="Ledger")
        for oid in ids:
            assert platform.get_object(oid)["state"]["count"] == 2
        recovery = platform.durability.tracker_for("Ledger").last_recovery
        assert recovery is not None
        assert recovery["rpo_s"] == 0.0 and recovery["lost_writes"] == 0
        assert recovery["rto_s"] > 0.0
        platform.shutdown()

    def test_standard_class_recovers_flushed_state(self):
        platform = dura_platform()
        ids = [platform.new_object("Cart", object_id=f"cart-{i}") for i in range(6)]
        for oid in ids:
            platform.invoke(oid, "bump")
        platform.flush()  # everything durable before the crash
        crash_owner(platform, ids[0])
        for oid in ids:
            assert platform.get_object(oid)["state"]["count"] == 1
        recovery = platform.durability.tracker_for("Cart").last_recovery
        assert recovery["rpo_s"] == 0.0 and recovery["lost_writes"] == 0
        platform.shutdown()

    def test_unflushed_tail_is_measured_as_lost(self):
        platform = dura_platform()
        ids = [platform.new_object("Cart", object_id=f"cart-{i}") for i in range(6)]
        platform.advance(2.0)  # creations flush
        victim = platform.crm.runtime("Cart").dht.owner(ids[0])
        victim_keys = [
            oid
            for oid in ids
            if platform.crm.runtime("Cart").dht.owner(oid) == victim
        ]
        for oid in victim_keys:  # acknowledged, still in the victim's buffer
            platform.invoke(oid, "bump")
        platform.fail_node(victim)
        platform.env.run(
            until=all_of(platform.env, platform.durability.recoveries())
        )
        recovery = platform.durability.tracker_for("Cart").last_recovery
        assert recovery["lost_writes"] == len(victim_keys)
        assert recovery["rpo_s"] >= 0.0
        audited_lost = sum(
            1
            for oid in victim_keys
            if platform.get_object(oid)["state"].get("count", 0) == 0
        )
        assert audited_lost == recovery["lost_writes"]
        platform.shutdown()

    def test_recovery_is_deterministic_at_a_seed(self):
        def drill():
            platform = dura_platform()
            ids = [
                platform.new_object("Ledger", object_id=f"led-{i}") for i in range(4)
            ]
            for oid in ids:
                platform.invoke(oid, "bump")
            crash_owner(platform, ids[0], cls="Ledger")
            recovery = dict(
                platform.durability.tracker_for("Ledger").last_recovery
            )
            counts = [platform.get_object(oid)["state"]["count"] for oid in ids]
            platform.shutdown()
            return recovery, counts

        assert drill() == drill()

    def test_rpo_histograms_and_verdict_after_recovery(self):
        platform = dura_platform()
        ids = [platform.new_object("Ledger", object_id=f"led-{i}") for i in range(4)]
        for oid in ids:
            platform.invoke(oid, "bump")
        crash_owner(platform, ids[0], cls="Ledger")
        samples = platform.monitoring.registry.histogram(
            "durability.rpo_s.Ledger"
        )
        assert samples.count == 1
        verdicts = [
            v
            for v in platform.nfr_report()
            if v.cls == "Ledger" and v.requirement == "durability_rpo_s"
        ]
        assert len(verdicts) == 1
        assert verdicts[0].met and verdicts[0].observed == 0.0
        platform.shutdown()


class TestReportsAndBaseline:
    def test_durability_report_shape(self):
        platform = dura_platform()
        obj = platform.new_object("Cart")
        platform.invoke(obj, "bump")
        platform.http("POST", "/api/classes/Cart/snapshots")
        report = platform.durability_report()
        assert report["bucket"] == "oparaca-snapshots"
        assert report["cuts_total"] == 1
        assert "Cart" in report["classes"] and "Ledger" in report["classes"]
        assert report["classes"]["Cart"]["policy"]["mode"] == "periodic"
        platform.shutdown()

    def test_observability_report_and_summary_include_durability(self):
        from repro.monitoring.export import format_summary

        platform = dura_platform()
        obj = platform.new_object("Cart")
        platform.invoke(obj, "bump")
        platform.http("POST", "/api/classes/Cart/snapshots")
        report = platform.observability_report()
        assert "durability" in report
        text = format_summary(report)
        assert "durability plane:" in text
        platform.shutdown()

    def test_snapshot_gains_durability_keys_only_when_enabled(self):
        platform = dura_platform()
        keys = set(platform.snapshot())
        assert {"durability.cuts", "durability.epoch_writes"} <= keys
        platform.shutdown()

        baseline = Oparaca(PlatformConfig(nodes=2))
        assert not {"durability.cuts", "durability.restores"} & set(
            baseline.snapshot()
        )
        assert baseline.durability is None
        baseline.shutdown()

    def test_disabled_plane_runs_identically_to_seed_baseline(self):
        default = seeded_baseline_run()
        explicit_off = seeded_baseline_run(
            durability=DurabilityConfig(enabled=False)
        )
        assert default == explicit_off


class TestGatewayRoutes:
    def test_routes_fall_through_to_404_when_plane_off(self):
        platform = make_platform(
            DURA_YAML.replace("persistence: strong", "persistent: true")
            .replace("persistence: standard", "persistent: true")
            .replace("persistence: none", "persistent: false"),
            {"t/bump": (bump, 0.001)},
            nodes=2,
            seed=5,
        )
        for method, path in (
            ("POST", "/api/classes/Cart/snapshots"),
            ("GET", "/api/classes/Cart/snapshots"),
            ("POST", "/api/classes/Cart/restore"),
        ):
            response = platform.http(method, path)
            assert response.status == 404
            assert response.body["type"] == "NoRouteError"
        platform.shutdown()

    def test_unknown_class_is_404_and_unenforced_class_is_400(self):
        platform = dura_platform()
        assert platform.http("POST", "/api/classes/Nope/snapshots").status == 404
        response = platform.http("POST", "/api/classes/Scratch/snapshots")
        assert response.status == 400
        assert response.body["type"] == "ValidationError"
        platform.shutdown()

    def test_snapshot_listing_shape(self):
        platform = dura_platform()
        obj = platform.new_object("Cart")
        platform.invoke(obj, "bump")
        platform.http("POST", "/api/classes/Cart/snapshots")
        listing = platform.http("GET", "/api/classes/Cart/snapshots")
        assert listing.status == 200
        assert listing.body["count"] == 1
        assert listing.body["generations"][0]["generation"] == 1
        platform.shutdown()

    def test_restore_at_must_be_a_number(self):
        platform = dura_platform()
        obj = platform.new_object("Cart")
        platform.invoke(obj, "bump")
        platform.http("POST", "/api/classes/Cart/snapshots")
        for bad in ("soon", True, [1]):
            response = platform.http(
                "POST", "/api/classes/Cart/restore", {"at": bad}
            )
            assert response.status == 400
            assert response.body["type"] == "ValidationError"
        platform.shutdown()

    def test_error_body_shape_matches_other_404s(self):
        platform = dura_platform()
        plain = platform.http("GET", "/api/objects/Cart~missing")
        durability = platform.http("POST", "/api/classes/Cart/restore")
        assert durability.status == plain.status == 404
        assert set(durability.body) == set(plain.body) == {"error", "type"}
        platform.shutdown()

"""Integration-level tests for the invocation engine (data plane)."""

import pytest

from repro.errors import (
    FunctionExecutionError,
    InvocationError,
    UnknownClassError,
    UnknownFunctionError,
    UnknownObjectError,
    ValidationError,
)
from repro.invoker.engine import make_object_id, split_object_id
from repro.invoker.request import InvocationRequest
from repro.invoker.router import ObjectRouter, PlacementPolicy
from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.sim.kernel import all_of
from repro.sim.rng import RngStreams


class TestObjectIds:
    def test_make_and_split(self):
        object_id = make_object_id("Image", "abc")
        assert object_id == "Image~abc"
        assert split_object_id(object_id) == ("Image", "abc")

    def test_split_unprefixed(self):
        assert split_object_id("plain") == (None, "plain")

    def test_make_generates_suffix(self):
        a, b = make_object_id("C"), make_object_id("C")
        assert a != b
        assert a.startswith("C~")


class TestRouter:
    def _router(self, policy):
        platform = Oparaca(PlatformConfig(nodes=4))
        platform.deploy("classes:\n  - name: T\n")
        dht = platform.crm.dht_for("T")
        return ObjectRouter(dht, policy, RngStreams(1)), dht

    def test_locality_routes_to_owner(self):
        router, dht = self._router(PlacementPolicy.LOCALITY)
        for i in range(20):
            key = f"T~{i}"
            assert router.place(key) == dht.owner(key)
        assert router.locality_ratio == 1.0

    def test_round_robin_cycles(self):
        router, dht = self._router(PlacementPolicy.ROUND_ROBIN)
        nodes = [router.place(f"T~{i}") for i in range(8)]
        assert nodes[:4] == list(dht.nodes)
        assert nodes[4:] == list(dht.nodes)

    def test_random_uses_all_nodes(self):
        router, dht = self._router(PlacementPolicy.RANDOM)
        nodes = {router.place(f"T~{i}") for i in range(100)}
        assert nodes == set(dht.nodes)

    def test_empty_object_id_rejected(self):
        router, _ = self._router(PlacementPolicy.LOCALITY)
        with pytest.raises(ValidationError):
            router.place("")


class TestBuiltins:
    def test_new_applies_defaults_and_overrides(self, platform):
        obj = platform.new_object("Image", {"width": 5})
        record = platform.get_object(obj)
        assert record["state"] == {"width": 5, "format": "png"}
        assert record["version"] == 1
        assert record["cls"] == "Image"

    def test_new_with_custom_id(self, platform):
        obj = platform.new_object("Image", object_id="my-img")
        assert obj == "Image~my-img"

    def test_new_duplicate_id_rejected(self, platform):
        platform.new_object("Image", object_id="dup")
        with pytest.raises(InvocationError, match="already exists"):
            platform.new_object("Image", object_id="dup")

    def test_new_wrong_prefix_rejected(self, platform):
        with pytest.raises(InvocationError, match="prefix"):
            platform.new_object("Image", object_id="LabelledImage~x")

    def test_new_unknown_class(self, platform):
        with pytest.raises(UnknownClassError):
            platform.new_object("Ghost")

    def test_new_invalid_state_rejected(self, platform):
        with pytest.raises(ValidationError):
            platform.new_object("Image", {"width": "not an int"})

    def test_update_bumps_version(self, platform):
        obj = platform.new_object("Image")
        version = platform.update_object(obj, {"width": 7})
        assert version == 2
        assert platform.get_object(obj)["state"]["width"] == 7

    def test_update_validates_schema(self, platform):
        obj = platform.new_object("Image")
        with pytest.raises(ValidationError):
            platform.update_object(obj, {"nope": 1})

    def test_delete_removes_object(self, platform):
        obj = platform.new_object("Image")
        platform.delete_object(obj)
        with pytest.raises(UnknownObjectError):
            platform.get_object(obj)

    def test_get_unknown_object(self, platform):
        with pytest.raises(UnknownObjectError):
            platform.get_object("Image~ghost")

    def test_file_url_requires_file_key(self, platform):
        obj = platform.new_object("Image")
        with pytest.raises(ValidationError, match="FILE"):
            platform.invoke(obj, "file-url", {"key": "width", "method": "PUT"})

    def test_file_roundtrip(self, platform):
        obj = platform.new_object("Image")
        platform.upload_file(obj, "image", b"bytes!")
        assert platform.download_file(obj, "image") == b"bytes!"
        assert platform.get_object(obj)["files"]["image"]

    def test_file_get_before_upload(self, platform):
        obj = platform.new_object("Image")
        with pytest.raises(UnknownObjectError, match="no file"):
            platform.invoke(obj, "file-url", {"key": "image", "method": "GET"})


class TestTaskPath:
    def test_state_committed(self, platform):
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "resize", {"width": 333})
        assert result.ok
        assert platform.get_object(obj)["state"]["width"] == 333

    def test_unknown_function(self, platform):
        obj = platform.new_object("Image")
        with pytest.raises(UnknownFunctionError):
            platform.invoke(obj, "sharpen")

    def test_latency_recorded(self, platform):
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "resize", {"width": 10})
        assert result.latency_s > 0

    def test_monitoring_records_per_class(self, platform):
        obj = platform.new_object("Image")
        platform.invoke(obj, "resize", {"width": 10})
        obs = platform.monitoring.for_class("Image")
        assert obs.completed >= 2  # new + resize

    def test_handler_error_is_failed_result(self, bare_platform):
        platform = bare_platform

        @platform.function("img/bug")
        def buggy(ctx):
            raise KeyError("missing key")

        platform.deploy(
            "classes:\n  - name: T\n    functions:\n      - {name: f, image: img/bug}\n"
        )
        obj = platform.new_object("T")
        result = platform.invoke(obj, "f", raise_on_error=False)
        assert not result.ok
        assert result.error_type == "FunctionExecutionError"
        assert "missing key" in result.error

    def test_concurrent_updates_serialize_via_cas(self, platform):
        obj = platform.new_object("Image")

        def one(width):
            result = yield platform.engine.invoke(
                InvocationRequest(object_id=obj, fn_name="resize", payload={"width": width})
            )
            return result

        procs = [platform.env.process(one(i)) for i in (100, 200, 300, 400)]
        results = platform.run(all_of(platform.env, procs))
        assert all(r.ok for r in results)
        record = platform.get_object(obj)
        # Every commit landed: version 1 (new) + 4 successful CAS commits.
        assert record["version"] == 5
        assert platform.engine.cas_conflicts > 0

    def test_polymorphic_dispatch_through_parent(self, platform):
        labelled = platform.new_object("LabelledImage")
        # Request typed as Image, object is actually LabelledImage.
        result = platform.invoke(labelled, "resize", {"width": 50}, cls="Image")
        assert result.ok
        assert result.cls == "LabelledImage"

    def test_subtype_check_rejects_wrong_cls(self, platform):
        image = platform.new_object("Image")
        with pytest.raises(InvocationError, match="not a subtype"):
            platform.invoke(image, "resize", {"width": 5}, cls="LabelledImage")

    def test_inherited_method_runs_on_child(self, platform):
        labelled = platform.new_object("LabelledImage")
        result = platform.invoke(labelled, "changeFormat", {"format": "gif"})
        assert result.ok
        assert platform.get_object(labelled)["state"]["format"] == "gif"

    def test_child_only_method_absent_on_parent(self, platform):
        image = platform.new_object("Image")
        with pytest.raises(UnknownFunctionError):
            platform.invoke(image, "detectObject")


class TestAccessControl:
    @pytest.fixture
    def guarded(self, bare_platform):
        platform = bare_platform

        @platform.function("img/secret")
        def secret(ctx):
            return {"secret": True}

        platform.deploy(
            """
classes:
  - name: Vault
    functions:
      - { name: hidden, image: img/secret, access: INTERNAL }
      - name: expose
        type: MACRO
        dataflow:
          steps:
            - { id: s, function: hidden }
          output: s
"""
        )
        return platform

    def test_internal_rejected_externally(self, guarded):
        obj = guarded.new_object("Vault")
        result = guarded.invoke(obj, "hidden", raise_on_error=False)
        assert not result.ok
        assert "INTERNAL" in result.error

    def test_internal_allowed_via_dataflow(self, guarded):
        obj = guarded.new_object("Vault")
        result = guarded.invoke(obj, "expose")
        assert result.ok
        assert result.output == {"secret": True}


class TestOutputObjects:
    def test_output_class_materialized(self, bare_platform):
        platform = bare_platform

        @platform.function("img/derive")
        def derive(ctx):
            return {"size": int(ctx.payload["size"])}

        platform.deploy(
            """
classes:
  - name: Derived
    keySpecs:
      - { name: size, type: INT }
  - name: Source
    functions:
      - { name: derive, image: img/derive, mutable: false, outputClass: Derived }
"""
        )
        source = platform.new_object("Source")
        result = platform.invoke(source, "derive", {"size": 42})
        created = result.created_object_id
        assert created and created.startswith("Derived~")
        assert platform.get_object(created)["state"]["size"] == 42


class TestDataflow:
    def test_macro_executes_chain(self, platform):
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "thumbnail", {"width": 128})
        assert result.ok
        state = platform.get_object(obj)["state"]
        assert state["width"] == 128
        assert state["format"] == "webp"

    def test_macro_output_is_last_step(self, platform):
        obj = platform.new_object("Image")
        result = platform.invoke(obj, "thumbnail", {"width": 64})
        assert result.output == {"format": "webp"}

    def test_macro_step_failure_propagates(self, bare_platform):
        platform = bare_platform

        @platform.function("img/ok")
        def ok(ctx):
            return {}

        @platform.function("img/boom")
        def boom(ctx):
            raise RuntimeError("step exploded")

        platform.deploy(
            """
classes:
  - name: T
    functions:
      - { name: good, image: img/ok }
      - { name: bad, image: img/boom }
      - name: flow
        type: MACRO
        dataflow:
          steps:
            - { id: a, function: good }
            - { id: b, function: bad, inputs: [a] }
"""
        )
        obj = platform.new_object("T")
        result = platform.invoke(obj, "flow", raise_on_error=False)
        assert not result.ok
        assert "step 'b'" in result.error
        assert "step exploded" in result.error

    def test_parallel_steps_overlap_in_time(self, bare_platform):
        platform = bare_platform

        @platform.function("img/slow", service_time_s=0.1)
        def slow(ctx):
            return {"done": True}

        platform.deploy(
            """
classes:
  - name: T
    functions:
      - { name: work, image: img/slow, mutable: false }
      - name: fan
        type: MACRO
        dataflow:
          steps:
            - { id: a, function: work }
            - { id: b, function: work }
            - { id: c, function: work }
"""
        )
        obj = platform.new_object("T")
        platform.invoke(obj, "fan")  # warm the service
        result = platform.invoke(obj, "fan")
        # Three 0.1s steps in parallel: far less than 0.3s sequential.
        assert result.latency_s < 0.25

    def test_macro_on_created_object(self, bare_platform):
        platform = bare_platform

        @platform.function("img/make")
        def make(ctx):
            return {"n": 1}

        @platform.function("img/tag")
        def tag(ctx):
            ctx.state["n"] = int(ctx.state.get("n") or 0) + 10
            return {"n": ctx.state["n"]}

        platform.deploy(
            """
classes:
  - name: Child
    keySpecs:
      - { name: n, type: INT }
    functions:
      - { name: tag, image: img/tag }
  - name: Parent
    functions:
      - { name: make, image: img/make, mutable: false, outputClass: Child }
      - name: makeAndTag
        type: MACRO
        dataflow:
          steps:
            - { id: m, function: make }
            - { id: t, function: tag, target: "@m" }
          output: t
"""
        )
        obj = platform.new_object("Parent")
        result = platform.invoke(obj, "makeAndTag")
        assert result.ok
        assert result.output == {"n": 11}


class TestAsyncQueue:
    def test_async_completion_event(self, platform):
        obj = platform.new_object("Image")
        event = platform.invoke_async(obj, "resize", {"width": 77})
        result = platform.run(event)
        assert result.ok
        assert platform.get_object(obj)["state"]["width"] == 77

    def test_async_results_polled_by_request_id(self, platform):
        obj = platform.new_object("Image")
        event = platform.invoke_async(obj, "resize", {"width": 9})
        result = platform.run(event)
        assert platform.queue.result(result.request_id) is result

    def test_same_object_async_updates_ordered(self, platform):
        obj = platform.new_object("Image")
        events = [
            platform.invoke_async(obj, "resize", {"width": w}) for w in (1, 2, 3, 4, 5)
        ]
        platform.run(all_of(platform.env, events))
        assert platform.get_object(obj)["state"]["width"] == 5
        # Queue serializes per object: no CAS conflicts at all.
        assert platform.engine.cas_conflicts == 0

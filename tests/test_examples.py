"""Smoke tests: every example script must run clean end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "quickstart complete." in result.stdout
        assert "LabelledImage.detectObject" in result.stdout

    def test_multimedia_pipeline(self):
        result = run_example("multimedia_pipeline.py")
        assert result.returncode == 0, result.stderr
        assert "pipeline complete." in result.stdout
        assert "'status': 'published'" in result.stdout

    def test_iot_fleet(self):
        result = run_example("iot_fleet.py")
        assert result.returncode == 0, result.stderr
        assert "in-memory-ephemeral" in result.stdout
        assert "Sensor=0 (ephemeral)" in result.stdout
        assert "cost report" in result.stdout

    def test_multi_datacenter(self):
        result = run_example("multi_datacenter.py")
        assert result.returncode == 0, result.stderr
        assert "multi-datacenter demo complete." in result.stdout
        assert "jurisdictions: ['eu']" in result.stdout
        assert "live migration: eu-edge -> eu-region" in result.stdout
        assert "HTTP 451" in result.stdout

    def test_chaos_resilience(self):
        result = run_example("chaos_resilience.py")
        assert result.returncode == 0, result.stderr
        assert "chaos demo PASSED" in result.stdout
        assert "availability under fault" in result.stdout

    @pytest.mark.slow
    def test_fig3_scalability_quick_subset(self):
        result = run_example(
            "fig3_scalability.py", "--systems", "knative,oprc-bypass-nonpersist"
        )
        assert result.returncode == 0, result.stderr
        assert "throughput" in result.stdout
        assert "knative" in result.stdout

"""Unit tests for class definitions, inheritance, and polymorphism."""

import pytest

from repro.errors import ClassResolutionError, ValidationError
from repro.model.cls import AccessModifier, ClassDefinition, FunctionBinding
from repro.model.dataflow import DataflowSpec, DataflowStep
from repro.model.function import FunctionDefinition, FunctionType
from repro.model.nfr import Constraint, NonFunctionalRequirements, QosRequirement
from repro.model.resolver import ClassResolver
from repro.model.types import DataType, KeySpec, StateSpec


def task(name, image=None):
    return FunctionDefinition(name=name, image=image or f"img/{name}")


def binding(name, **kwargs):
    return FunctionBinding(name=name, function=task(name), **kwargs)


def cls(name, parent=None, keys=(), bindings=(), nfr=None):
    return ClassDefinition(
        name=name,
        parent=parent,
        state=StateSpec(tuple(keys)),
        bindings=tuple(bindings),
        nfr=nfr or NonFunctionalRequirements.none(),
    )


class TestClassDefinition:
    def test_invalid_name(self):
        with pytest.raises(ValidationError):
            cls("1bad")

    def test_self_parent_rejected(self):
        with pytest.raises(ValidationError):
            cls("A", parent="A")

    def test_duplicate_methods_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            cls("A", bindings=[binding("f"), binding("f")])

    def test_macro_self_invocation_rejected(self):
        macro = FunctionBinding(
            name="loop",
            function=FunctionDefinition(
                name="loop",
                ftype=FunctionType.MACRO,
                dataflow=DataflowSpec(
                    steps=(DataflowStep(id="s", function="loop"),)
                ),
            ),
        )
        with pytest.raises(ValidationError, match="invokes itself"):
            cls("A", bindings=[macro])

    def test_binding_lookup(self):
        definition = cls("A", bindings=[binding("f")])
        assert definition.binding("f").name == "f"
        assert definition.binding("g") is None


class TestResolver:
    def _resolver(self, *definitions):
        return ClassResolver({d.name: d for d in definitions})

    def test_flat_class(self):
        resolver = self._resolver(cls("A", keys=[KeySpec("x", DataType.INT)], bindings=[binding("f")]))
        resolved = resolver.resolve("A")
        assert resolved.ancestry == ("A",)
        assert resolved.state.names == ("x",)
        assert resolved.method_names == ("f",)

    def test_unknown_class(self):
        with pytest.raises(ClassResolutionError, match="unknown class"):
            self._resolver().resolve("Ghost")

    def test_unknown_parent(self):
        resolver = self._resolver(cls("B", parent="A"))
        with pytest.raises(ClassResolutionError, match="unknown class 'A'"):
            resolver.resolve("B")

    def test_inheritance_chain(self):
        resolver = self._resolver(
            cls("A", keys=[KeySpec("a", DataType.INT)], bindings=[binding("fa")]),
            cls("B", parent="A", keys=[KeySpec("b", DataType.INT)], bindings=[binding("fb")]),
            cls("C", parent="B", keys=[KeySpec("c", DataType.INT)], bindings=[binding("fc")]),
        )
        resolved = resolver.resolve("C")
        assert resolved.ancestry == ("C", "B", "A")
        assert resolved.state.names == ("a", "b", "c")  # parent-first
        assert resolved.method_names == ("fa", "fb", "fc")

    def test_cycle_detected(self):
        resolver = self._resolver(cls("A", parent="B"), cls("B", parent="A"))
        with pytest.raises(ClassResolutionError, match="cycle"):
            resolver.resolve("A")

    def test_override_replaces_parent_binding(self):
        child_fn = FunctionBinding(
            name="f", function=FunctionDefinition(name="f", image="img/f-v2")
        )
        resolver = self._resolver(
            cls("A", bindings=[binding("f")]),
            ClassDefinition(name="B", parent="A", bindings=(child_fn,)),
        )
        assert resolver.resolve("B").methods["f"].function.image == "img/f-v2"
        # The parent still resolves to its own implementation.
        assert resolver.resolve("A").methods["f"].function.image == "img/f"

    def test_override_changing_mutability_rejected(self):
        resolver = self._resolver(
            cls("A", bindings=[binding("f", mutable=True)]),
            cls("B", parent="A", bindings=[binding("f", mutable=False)]),
        )
        with pytest.raises(ClassResolutionError, match="mutability"):
            resolver.resolve("B")

    def test_is_subclass(self):
        resolver = self._resolver(cls("A"), cls("B", parent="A"), cls("C"))
        assert resolver.is_subclass("B", "A")
        assert resolver.is_subclass("A", "A")
        assert not resolver.is_subclass("A", "B")
        assert not resolver.is_subclass("C", "A")

    def test_is_subclass_unknown_class(self):
        with pytest.raises(ClassResolutionError):
            self._resolver(cls("A")).is_subclass("X", "A")

    def test_nfr_inherited_and_overridden(self):
        parent_nfr = NonFunctionalRequirements(
            qos=QosRequirement(throughput_rps=100, latency_ms=50)
        )
        child_nfr = NonFunctionalRequirements(qos=QosRequirement(throughput_rps=500))
        resolver = self._resolver(
            cls("A", nfr=parent_nfr), cls("B", parent="A", nfr=child_nfr)
        )
        resolved = resolver.resolve("B")
        assert resolved.nfr.qos.throughput_rps == 500
        assert resolved.nfr.qos.latency_ms == 50

    def test_constraint_inherited(self):
        parent_nfr = NonFunctionalRequirements(constraint=Constraint(persistent=False))
        resolver = self._resolver(cls("A", nfr=parent_nfr), cls("B", parent="A"))
        assert resolver.resolve("B").nfr.constraint.persistent is False

    def test_macro_referencing_missing_method_rejected(self):
        macro = FunctionBinding(
            name="m",
            function=FunctionDefinition(
                name="m",
                ftype=FunctionType.MACRO,
                dataflow=DataflowSpec(steps=(DataflowStep(id="s", function="ghost"),)),
            ),
        )
        resolver = self._resolver(ClassDefinition(name="A", bindings=(macro,)))
        with pytest.raises(ClassResolutionError, match="unknown method"):
            resolver.resolve("A")

    def test_macro_using_inherited_method_ok(self):
        macro = FunctionBinding(
            name="m",
            function=FunctionDefinition(
                name="m",
                ftype=FunctionType.MACRO,
                dataflow=DataflowSpec(steps=(DataflowStep(id="s", function="f"),)),
            ),
        )
        resolver = self._resolver(
            cls("A", bindings=[binding("f")]),
            ClassDefinition(name="B", parent="A", bindings=(macro,)),
        )
        assert "m" in resolver.resolve("B").methods

    def test_effective_nfr_per_method(self):
        method_nfr = NonFunctionalRequirements(qos=QosRequirement(latency_ms=10))
        class_nfr = NonFunctionalRequirements(qos=QosRequirement(throughput_rps=100))
        definition = ClassDefinition(
            name="A",
            bindings=(
                FunctionBinding(name="fast", function=task("fast"), nfr=method_nfr),
                FunctionBinding(name="plain", function=task("plain")),
            ),
            nfr=class_nfr,
        )
        resolved = self._resolver(definition).resolve("A")
        assert resolved.effective_nfr("fast").qos.latency_ms == 10
        assert resolved.effective_nfr("fast").qos.throughput_rps == 100
        assert resolved.effective_nfr("plain").qos.latency_ms is None

    def test_resolve_all(self):
        resolver = self._resolver(cls("A"), cls("B", parent="A"))
        resolved = resolver.resolve_all()
        assert set(resolved) == {"A", "B"}

    def test_cache_returns_same_object(self):
        resolver = self._resolver(cls("A"))
        assert resolver.resolve("A") is resolver.resolve("A")

    def test_access_modifier_preserved(self):
        resolver = self._resolver(
            cls("A", bindings=[binding("f", access=AccessModifier.INTERNAL)])
        )
        assert resolver.resolve("A").methods["f"].access is AccessModifier.INTERNAL

"""Unit tests for messaging (topic log) and monitoring."""

import pytest

from repro.errors import MessagingError, ValidationError
from repro.messaging.topic import ConsumerGroup, Topic
from repro.monitoring.collector import MonitoringSystem
from repro.monitoring.metrics import Counter, Gauge, Histogram, MetricsRegistry, SlidingWindow


class TestTopic:
    def test_partition_count_validation(self, env):
        with pytest.raises(MessagingError):
            Topic(env, "t", partitions=0)

    def test_publish_assigns_offsets_per_partition(self, env):
        topic = Topic(env, "t", partitions=1)
        first = topic.publish("a", 1)
        second = topic.publish("b", 2)
        assert (first.offset, second.offset) == (0, 1)

    def test_same_key_same_partition(self, env):
        topic = Topic(env, "t", partitions=8)
        partitions = {topic.publish("hot", i).partition for i in range(10)}
        assert len(partitions) == 1

    def test_empty_key_rejected(self, env):
        with pytest.raises(MessagingError):
            Topic(env, "t").publish("", 1)

    def test_get_out_of_range_partition(self, env):
        with pytest.raises(MessagingError):
            Topic(env, "t", partitions=2).get(5)

    def test_depth_and_history(self, env):
        topic = Topic(env, "t", partitions=1)
        topic.publish("a", 1)
        topic.publish("a", 2)
        assert topic.depth() == 2
        assert [m.value for m in topic.history(0)] == [1, 2]

    def test_consume_blocks_until_publish(self, env):
        topic = Topic(env, "t", partitions=1)
        got = []

        def consumer(env):
            message = yield topic.get(0)
            got.append((message.value, env.now))

        def producer(env):
            yield env.timeout(2.0)
            topic.publish("k", "data")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [("data", 2.0)]


class TestConsumerGroup:
    def test_processes_all_messages(self, env):
        topic = Topic(env, "t", partitions=4)
        seen = []

        def handler(message):
            yield env.timeout(0.01)
            seen.append(message.value)

        group = ConsumerGroup(env, topic, handler)
        for i in range(20):
            topic.publish(f"key-{i}", i)
        env.run(until=5.0)
        assert sorted(seen) == list(range(20))
        assert group.consumed == 20
        group.stop()

    def test_per_key_ordering(self, env):
        topic = Topic(env, "t", partitions=4)
        seen = []

        def handler(message):
            yield env.timeout(0.05)
            seen.append(message.value)

        ConsumerGroup(env, topic, handler)
        for i in range(10):
            topic.publish("same-key", i)
        env.run(until=5.0)
        assert seen == list(range(10))

    def test_fewer_workers_than_partitions(self, env):
        topic = Topic(env, "t", partitions=4)
        seen = []

        def handler(message):
            yield env.timeout(0.01)
            seen.append(message.value)

        ConsumerGroup(env, topic, handler, workers=2)
        for i in range(8):
            topic.publish(f"k{i}", i)
        env.run(until=5.0)
        assert len(seen) == 8


class TestMetrics:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValidationError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value == 3

    def test_histogram_percentiles(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.record(value)
        assert histogram.percentile(50) == 50
        assert histogram.percentile(99) == 99
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.max == 100

    def test_histogram_empty(self):
        histogram = Histogram("h")
        assert histogram.percentile(99) == 0.0
        assert histogram.mean == 0.0

    def test_histogram_percentile_bounds(self):
        with pytest.raises(ValidationError):
            Histogram("h").percentile(0)

    def test_registry_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.gauge("b").set(2)
        registry.histogram("lat").record(0.5)
        snapshot = registry.snapshot()
        assert snapshot["a"] == 5
        assert snapshot["b"] == 2
        assert snapshot["lat.mean"] == 0.5

    def test_registry_reuses_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestHistogramReservoir:
    """The histogram bounds memory via reservoir sampling: aggregates
    (count/mean/max) stay exact, percentiles come from the sample."""

    def test_memory_bounded(self):
        histogram = Histogram("h", max_samples=100)
        for value in range(10_000):
            histogram.record(float(value))
        assert len(histogram._values) == 100
        assert histogram.count == 10_000
        assert histogram.overflowed == 9_900

    def test_exact_aggregates_survive_overflow(self):
        histogram = Histogram("h", max_samples=50)
        values = [float(v) for v in range(1, 1001)]
        for value in values:
            histogram.record(value)
        assert histogram.count == 1000
        assert histogram.mean == pytest.approx(sum(values) / len(values))
        assert histogram.max == 1000.0

    def test_percentiles_approximate_distribution(self):
        histogram = Histogram("h", max_samples=512)
        for value in range(1, 10_001):
            histogram.record(float(value))
        # Reservoir sampling keeps a uniform sample; p50 of a uniform
        # 1..10000 stream must land near the middle.
        assert 3000 < histogram.percentile(50) < 7000

    def test_below_capacity_is_exact(self):
        histogram = Histogram("h", max_samples=1000)
        for value in range(1, 101):
            histogram.record(float(value))
        assert histogram.overflowed == 0
        assert histogram.percentile(50) == 50

    def test_deterministic_across_instances(self):
        """Same name + same stream → same reservoir (seeded by name, not
        the process-salted str hash)."""
        a, b = Histogram("same", max_samples=20), Histogram("same", max_samples=20)
        for value in range(500):
            a.record(float(value))
            b.record(float(value))
        assert a._values == b._values

    def test_validation(self):
        with pytest.raises(ValidationError):
            Histogram("h", max_samples=0)


class TestSlidingWindow:
    def test_throughput_over_window(self):
        window = SlidingWindow(window_s=10.0)
        for t in range(10):
            window.record(float(t), 0.01)
        assert window.throughput(10.0) == pytest.approx(1.0, rel=0.15)

    def test_old_samples_evicted(self):
        window = SlidingWindow(window_s=5.0)
        window.record(0.0, 0.01)
        window.record(10.0, 0.01)
        assert len(window) == 1

    def test_error_rate(self):
        window = SlidingWindow(window_s=100.0)
        window.record(1.0, 0.01, ok=True)
        window.record(2.0, 0.01, ok=False)
        assert window.error_rate(3.0) == 0.5

    def test_latency_percentile(self):
        window = SlidingWindow(window_s=100.0)
        for latency in (0.1, 0.2, 0.9):
            window.record(1.0, latency)
        assert window.latency_percentile(1.0, 99) == 0.9

    def test_validation(self):
        with pytest.raises(ValidationError):
            SlidingWindow(0)


class TestMonitoringSystem:
    def test_per_class_observations(self, env):
        monitoring = MonitoringSystem(env)
        obs = monitoring.for_class("Image")
        obs.record_invocation(0.05, ok=True)
        obs.record_invocation(0.10, ok=False)
        assert obs.completed == 1
        assert obs.failed == 1
        assert monitoring.for_class("Image") is obs
        assert monitoring.observed_classes == ("Image",)

    def test_snapshot_includes_class_metrics(self, env):
        monitoring = MonitoringSystem(env)
        monitoring.for_class("A").record_invocation(0.01, ok=True)
        snapshot = monitoring.snapshot()
        assert "class.A.throughput_rps" in snapshot
        assert "class.A.latency_p99_ms" in snapshot

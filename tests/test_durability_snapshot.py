"""Consistent cuts, incremental generations, GC, and point-in-time
restore, exercised through a real platform (DHT + write-behind + store)."""

import pytest

from repro.durability.plane import DurabilityConfig
from repro.durability.snapshot import data_key, epoch_key, manifest_key
from repro.errors import SnapshotNotFoundError, ValidationError
from repro.platform.oparaca import Oparaca

from tests.helpers import make_platform

DURA_YAML = """
name: dura-app
classes:
  - name: Ledger
    constraint: {persistence: strong}
    keySpecs: [{name: count, type: INT, default: 0}]
    functions:
      - name: bump
        image: t/bump
  - name: Cart
    constraint: {persistence: standard}
    keySpecs: [{name: count, type: INT, default: 0}]
    functions:
      - name: bump
        image: t/bump
  - name: Scratch
    constraint: {persistence: none}
    keySpecs: [{name: count, type: INT, default: 0}]
    functions:
      - name: bump
        image: t/bump
"""


def bump(ctx):
    ctx.state["count"] = int(ctx.state.get("count") or 0) + 1
    return {"count": ctx.state["count"]}


def dura_platform(**config_kwargs) -> Oparaca:
    """Platform with the plane on but the periodic loop effectively idle
    (huge interval), so tests control every cut explicitly."""
    config_kwargs.setdefault("default_interval_s", 1000.0)
    return make_platform(
        DURA_YAML,
        {"t/bump": (bump, 0.001)},
        nodes=3,
        seed=5,
        events_enabled=True,
        durability=DurabilityConfig(enabled=True, **config_kwargs),
    )


def take_cut(platform, cls):
    response = platform.http("POST", f"/api/classes/{cls}/snapshots")
    assert response.status in (200, 201), response.body
    return response.body


class TestCuts:
    def test_cut_captures_dirty_objects_then_skips_when_clean(self):
        platform = dura_platform()
        a = platform.new_object("Cart")
        b = platform.new_object("Cart")
        platform.invoke(a, "bump")
        platform.invoke(b, "bump")
        body = take_cut(platform, "Cart")
        assert body["generation"] == 1
        assert body["captured"] == 2
        # Nothing changed since: the second cut is a no-op.
        again = platform.http("POST", "/api/classes/Cart/snapshots")
        assert again.status == 200 and again.body["generation"] is None
        tracker = platform.durability.tracker_for("Cart")
        assert tracker.cuts_taken == 1 and tracker.cuts_skipped == 1
        platform.shutdown()

    def test_incremental_index_points_at_owning_generation(self):
        platform = dura_platform()
        a = platform.new_object("Cart", object_id="cart-a")
        b = platform.new_object("Cart", object_id="cart-b")
        take_cut(platform, "Cart")
        platform.invoke(a, "bump")
        body = take_cut(platform, "Cart")
        assert body["generation"] == 2 and body["captured"] == 1
        tracker = platform.durability.tracker_for("Cart")
        assert tracker.index[a][0] == 2
        assert tracker.index[b][0] == 1  # untouched bytes stay in gen 1
        store = platform.durability.object_store
        bucket = platform.durability.config.bucket
        for generation in (1, 2):
            assert store.head_object(bucket, data_key("Cart", generation))
            assert store.head_object(bucket, manifest_key("Cart", generation))
        platform.shutdown()

    def test_delete_tombstones_drop_object_from_next_cut(self):
        platform = dura_platform()
        a = platform.new_object("Cart")
        b = platform.new_object("Cart")
        take_cut(platform, "Cart")
        platform.delete_object(a)
        body = take_cut(platform, "Cart")
        tracker = platform.durability.tracker_for("Cart")
        assert a not in tracker.index and b in tracker.index
        assert body["captured"] == 0
        platform.shutdown()

    def test_strong_class_epoch_writes_every_commit(self):
        platform = dura_platform()
        obj = platform.new_object("Ledger")
        for _ in range(3):
            platform.invoke(obj, "bump")
        tracker = platform.durability.tracker_for("Ledger")
        assert tracker.epoch_writes >= 4  # create + three bumps
        store = platform.durability.object_store
        bucket = platform.durability.config.bucket
        assert store.head_object(bucket, epoch_key("Ledger", obj))
        platform.shutdown()

    def test_none_class_gets_no_tracker(self):
        platform = dura_platform()
        obj = platform.new_object("Scratch")
        platform.invoke(obj, "bump")
        assert platform.durability.tracker_for("Scratch") is None
        assert platform.durability.policy_for("Scratch").enabled is False
        with pytest.raises(ValidationError):
            platform.durability._tracker("Scratch")
        platform.shutdown()

    def test_commit_and_snapshot_events_recorded(self):
        platform = dura_platform()
        obj = platform.new_object("Cart")
        platform.invoke(obj, "bump")
        take_cut(platform, "Cart")
        commits = platform.platform_events("durability.commit")
        assert commits and commits[-1].fields["object"] == obj
        snapshots = platform.platform_events("durability.snapshot")
        assert snapshots and snapshots[-1].fields["cls"] == "Cart"
        platform.shutdown()


class TestGc:
    def test_unreferenced_generations_past_retention_are_deleted(self):
        platform = dura_platform(default_retention_s=5.0)
        a = platform.new_object("Cart", object_id="cart-a")
        b = platform.new_object("Cart", object_id="cart-b")
        take_cut(platform, "Cart")  # gen 1 holds both
        platform.invoke(a, "bump")
        platform.invoke(b, "bump")
        take_cut(platform, "Cart")  # gen 2 re-captures both; gen 1 unreferenced
        platform.advance(10.0)
        platform.invoke(a, "bump")
        take_cut(platform, "Cart")  # gen 3; gen 1 old + unreferenced -> GC
        tracker = platform.durability.tracker_for("Cart")
        retained = [entry["generation"] for entry in tracker.generations]
        assert 1 not in retained
        assert tracker.gc_generations == 1
        store = platform.durability.object_store
        bucket = platform.durability.config.bucket
        assert store.head_object(bucket, data_key("Cart", 1)) is None
        platform.shutdown()

    def test_referenced_generation_survives_past_retention(self):
        platform = dura_platform(default_retention_s=5.0)
        a = platform.new_object("Cart", object_id="cart-a")
        b = platform.new_object("Cart", object_id="cart-b")
        take_cut(platform, "Cart")  # gen 1 holds a and b
        platform.advance(10.0)
        platform.invoke(a, "bump")
        take_cut(platform, "Cart")  # gen 2: only a; b's bytes still in gen 1
        tracker = platform.durability.tracker_for("Cart")
        retained = [entry["generation"] for entry in tracker.generations]
        assert retained == [1, 2]  # old but referenced -> kept
        assert tracker.gc_generations == 0
        platform.shutdown()


class TestRestore:
    def test_class_restore_rolls_back_to_cut(self):
        platform = dura_platform()
        a = platform.new_object("Cart")
        b = platform.new_object("Cart")
        platform.invoke(a, "bump")
        platform.invoke(b, "bump")
        take_cut(platform, "Cart")
        platform.invoke(a, "bump")
        platform.invoke(a, "bump")
        created_after = platform.new_object("Cart")
        response = platform.http("POST", "/api/classes/Cart/restore")
        assert response.status == 200
        assert response.body["restored"] == 2
        assert response.body["purged"] == 1
        assert platform.get_object(a)["state"]["count"] == 1
        assert platform.get_object(b)["state"]["count"] == 1
        missing = platform.http("GET", f"/api/objects/{created_after}")
        assert missing.status == 404
        platform.shutdown()

    def test_point_in_time_picks_latest_cut_at_or_before(self):
        platform = dura_platform()
        a = platform.new_object("Cart")
        platform.invoke(a, "bump")
        take_cut(platform, "Cart")
        first_cut_time = platform.durability.tracker_for("Cart").generations[-1][
            "cut_time"
        ]
        platform.advance(1.0)
        platform.invoke(a, "bump")
        take_cut(platform, "Cart")
        platform.invoke(a, "bump")
        response = platform.http(
            "POST", "/api/classes/Cart/restore", {"at": first_cut_time + 0.5}
        )
        assert response.status == 200
        assert response.body["generation"] == 1
        assert platform.get_object(a)["state"]["count"] == 1
        platform.shutdown()

    def test_restore_before_first_cut_is_snapshot_not_found(self):
        platform = dura_platform()
        a = platform.new_object("Cart")
        platform.invoke(a, "bump")
        take_cut(platform, "Cart")
        response = platform.http("POST", "/api/classes/Cart/restore", {"at": -1.0})
        assert response.status == 404
        assert response.body["type"] == "SnapshotNotFoundError"
        platform.shutdown()

    def test_object_restore_leaves_other_objects_alone(self):
        platform = dura_platform()
        a = platform.new_object("Cart")
        b = platform.new_object("Cart")
        platform.invoke(a, "bump")
        platform.invoke(b, "bump")
        take_cut(platform, "Cart")
        platform.invoke(a, "bump")
        platform.invoke(b, "bump")
        response = platform.http(
            "POST", "/api/classes/Cart/restore", {"object": a}
        )
        assert response.status == 200 and response.body["object"] == a
        assert platform.get_object(a)["state"]["count"] == 1
        assert platform.get_object(b)["state"]["count"] == 2
        platform.shutdown()

    def test_object_absent_from_manifest_is_snapshot_not_found(self):
        platform = dura_platform()
        a = platform.new_object("Cart")
        platform.invoke(a, "bump")
        take_cut(platform, "Cart")
        ghost = platform.new_object("Cart")
        response = platform.http(
            "POST", "/api/classes/Cart/restore", {"object": ghost}
        )
        assert response.status == 404
        assert response.body["type"] == "SnapshotNotFoundError"
        platform.shutdown()

    def test_restore_resets_history_floor(self):
        platform = dura_platform()
        a = platform.new_object("Cart")
        platform.invoke(a, "bump")
        take_cut(platform, "Cart")
        platform.invoke(a, "bump")
        tracker = platform.durability.tracker_for("Cart")
        assert tracker.commit_history(a)
        platform.http("POST", "/api/classes/Cart/restore")
        assert tracker.history_floor == platform.now
        assert tracker.commit_history(a) == []
        platform.shutdown()

    def test_direct_restore_raises_typed_error(self):
        platform = dura_platform()
        platform.new_object("Cart")
        with pytest.raises(SnapshotNotFoundError):
            platform.run(platform.durability.restore_class("Cart"))
        platform.shutdown()

"""Tests for bounded DHT memory (LRU eviction)."""

import pytest

from repro.errors import StorageError
from repro.sim.network import Network
from repro.storage.dht import Dht, DhtModel
from repro.storage.kv import DocumentStore
from repro.storage.write_behind import WriteBehindConfig


def make_dht(env, cap, persistent=True, nodes=1, linger=0.0):
    network = Network(env)
    store = DocumentStore(env) if persistent else None
    dht = Dht(
        env,
        [f"n{i}" for i in range(nodes)],
        network,
        store,
        DhtModel(
            persistent=persistent,
            max_entries_per_node=cap,
            write_behind=WriteBehindConfig(batch_size=10, linger_s=linger),
        ),
    )
    return dht, store


def run(env, generator):
    return env.run(until=env.process(generator))


def doc(key, **state):
    return {"id": key, "cls": "T", "version": 1, "state": state}


class TestEviction:
    def test_cap_validation(self, env):
        with pytest.raises(StorageError):
            DhtModel(max_entries_per_node=0)

    def test_unbounded_by_default(self, env):
        dht, _ = make_dht(env, cap=None)
        for i in range(500):
            dht.seed(doc(f"k{i}"))
        assert dht.mem_count("n0") == 500
        assert dht.evictions == 0

    def test_cap_enforced_on_put(self, env):
        dht, _ = make_dht(env, cap=10)

        def scenario(env):
            for i in range(30):
                yield dht.put(doc(f"k{i}"), caller="n0")
            yield dht.flush_all()
            # Entries buffered for write-behind are pinned; the next
            # access trims the cache back under the cap.
            yield dht.get("k29", caller="n0")

        run(env, scenario(env))
        env.run()
        assert dht.mem_count("n0") <= 10
        assert dht.evictions >= 20

    def test_lru_order_respected(self, env):
        dht, _ = make_dht(env, cap=3, linger=0.0)

        def scenario(env):
            for key in ("a", "b", "c"):
                yield dht.put(doc(key), caller="n0")
            yield dht.flush_all()
            # Touch 'a' so 'b' becomes the least recently used.
            yield dht.get("a", caller="n0")
            yield dht.put(doc("d"), caller="n0")
            yield dht.flush_all()

        run(env, scenario(env))
        env.run()
        assert dht.peek("a") is not None
        assert dht.peek("b") is None  # evicted
        assert dht.peek("d") is not None

    def test_persistent_evicted_entries_reload(self, env):
        dht, store = make_dht(env, cap=5)

        def scenario(env):
            for i in range(20):
                yield dht.put(doc(f"k{i}", v=i), caller="n0")
            yield dht.flush_all()
            loaded = yield dht.get("k0", caller="n0")  # long evicted
            return loaded

        loaded = run(env, scenario(env))
        assert loaded is not None
        assert loaded["state"]["v"] == 0
        assert dht.mem_misses >= 1

    def test_pending_write_behind_entries_not_evicted(self, env):
        # Huge linger: everything stays buffered; eviction must spare
        # buffered entries or durability would be lost.
        dht, store = make_dht(env, cap=3, linger=1000.0)

        def scenario(env):
            for i in range(10):
                yield dht.put(doc(f"k{i}"), caller="n0")

        run(env, scenario(env))
        # All ten are pinned by the write-behind buffer despite cap=3.
        assert dht.mem_count("n0") == 10

        def drain(env):
            yield dht.flush_all()

        run(env, drain(env))
        assert store.count("objects") == 10

    def test_ephemeral_eviction_is_loss(self, env):
        dht, _ = make_dht(env, cap=5, persistent=False)

        def scenario(env):
            for i in range(20):
                yield dht.put(doc(f"k{i}"), caller="n0")
            loaded = yield dht.get("k0", caller="n0")
            return loaded

        assert run(env, scenario(env)) is None

    def test_template_knob_wires_through(self):
        from repro.crm.template import ClassRuntimeTemplate, RuntimeConfig, TemplateCatalog
        from repro.platform.oparaca import Oparaca, PlatformConfig

        catalog = TemplateCatalog(
            [
                ClassRuntimeTemplate(
                    name="small-cache",
                    config=RuntimeConfig(dht_max_entries=7),
                )
            ]
        )
        platform = Oparaca(PlatformConfig(nodes=2, catalog=catalog))
        platform.register_image("x/f", lambda ctx: {})
        platform.deploy("classes:\n  - name: T\n")
        assert platform.crm.dht_for("T").model.max_entries_per_node == 7

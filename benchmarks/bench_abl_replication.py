"""ABL-REPL — DHT replication factor: fan-out cost vs crash survival.

Runs the memory-only configuration (so the document store cannot mask
losses), measures saturated throughput, then crashes one of six nodes
and probes how much state survived.
"""

from __future__ import annotations

import pytest

from repro.bench.ablations import run_replication_ablation
from repro.bench.report import format_table

_ROWS = []


@pytest.mark.parametrize("replication", (1, 2))
def test_abl_replication(benchmark, replication):
    def run():
        return run_replication_ablation(replications=(replication,), nodes=6)[0]

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append(row)
    benchmark.extra_info["replication"] = replication
    benchmark.extra_info["throughput_rps"] = round(row.throughput_rps, 1)
    benchmark.extra_info["survivors_pct"] = round(row.survivors_pct, 1)


def teardown_module(module):
    if not _ROWS:
        return
    print("\n\n=== ABL-REPL: replication factor (memory-only, 6 VMs, 1 node crashed) ===")
    print(
        format_table(
            ("replication", "throughput_rps", "mean_ms", "survivors"),
            [
                (
                    r.replication,
                    f"{r.throughput_rps:.0f}",
                    f"{r.mean_latency_ms:.1f}",
                    f"{r.survivors_pct:.0f}%",
                )
                for r in sorted(_ROWS, key=lambda r: r.replication)
            ],
        )
    )
    ordered = sorted(_ROWS, key=lambda r: r.replication)
    assert ordered[-1].survivors_pct > ordered[0].survivors_pct

"""ABL-QOS — the QoS enforcement plane vs a noisy neighbour.

A latency-declared Hot class (``qos: {throughput: 100, latency: 50,
priority: 8}``) offers a steady 80 rps while a budget-capped Noisy
class dumps an 800-invocation backlog onto the shared async path.  With
the plane off (``fifo``) Hot queues behind the whole backlog and blows
its 50 ms target by two orders of magnitude; with the plane on
(``qos``) deficit-round-robin weights serve Hot around the flood and
the overload controller sheds queued Noisy work past the depth
watermark.
"""

from __future__ import annotations

import pytest

from repro.bench.ablations import run_qos_ablation
from repro.bench.report import format_table

MODES = ("fifo", "qos")

_ROWS = []


@pytest.mark.parametrize("mode", MODES)
def test_abl_qos(benchmark, mode):
    def run():
        return run_qos_ablation(modes=(mode,))[0]

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append(row)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["hot_p95_ms"] = round(row.hot_p95_ms, 3)
    benchmark.extra_info["noisy_shed"] = row.noisy_shed
    assert row.hot_completed > 0


def teardown_module(module):
    if not _ROWS:
        return
    print("\n\n=== ABL-QOS: hot class vs flooding neighbour (3 VMs) ===")
    print(
        format_table(
            ("mode", "hot_p95_ms", "target_ms", "hot_met", "hot_ok", "noisy_ok", "noisy_shed"),
            [
                (
                    r.mode,
                    f"{r.hot_p95_ms:.1f}",
                    f"{r.hot_target_ms:.0f}",
                    "yes" if r.hot_met else "NO",
                    r.hot_completed,
                    r.noisy_completed,
                    r.noisy_shed,
                )
                for r in _ROWS
            ],
        )
    )
    by_mode = {r.mode: r for r in _ROWS}
    if "fifo" in by_mode and "qos" in by_mode:
        assert not by_mode["fifo"].hot_met
        assert by_mode["qos"].hot_met
        assert by_mode["qos"].noisy_shed > 0

"""ABL-LOCALITY — data-locality-aware routing (paper §II-A).

OaaS "can easily find the data associated with each method and
proactively distribute them ... close to the deployed method".  This
ablation compares routing invocations to the node owning the object's
DHT partition against random spraying.
"""

from __future__ import annotations

import pytest

from repro.bench.ablations import run_locality_ablation
from repro.bench.report import format_table

_ROWS = []


def test_abl_locality(benchmark):
    def run():
        return run_locality_ablation(nodes=6)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.extend(rows)
    for row in rows:
        benchmark.extra_info[row.policy] = round(row.throughput_rps, 1)
    by_policy = {row.policy: row for row in rows}
    assert by_policy["LOCALITY"].locality_ratio == pytest.approx(1.0)
    assert by_policy["LOCALITY"].mean_latency_ms < by_policy["RANDOM"].mean_latency_ms
    assert by_policy["LOCALITY"].throughput_rps > by_policy["RANDOM"].throughput_rps


def teardown_module(module):
    if not _ROWS:
        return
    print("\n\n=== ABL-LOCALITY: placement policy (oprc-bypass, 6 VMs) ===")
    print(
        format_table(
            ("policy", "throughput_rps", "mean_ms", "local_ratio", "remote_transfers"),
            [
                (
                    r.policy,
                    f"{r.throughput_rps:.0f}",
                    f"{r.mean_latency_ms:.2f}",
                    f"{r.locality_ratio:.2f}",
                    r.remote_transfers,
                )
                for r in _ROWS
            ],
        )
    )

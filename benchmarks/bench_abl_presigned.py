"""ABL-PRESIGN — presigned direct data path vs platform proxying (§III-D).

Presigned URLs let client code exchange unstructured data with the
object store directly; proxying the same bytes through the platform
pays an extra hop per transfer.
"""

from __future__ import annotations

from repro.bench.ablations import run_presigned_ablation
from repro.bench.report import format_table

SIZES = (10_000, 1_000_000, 10_000_000)


def test_abl_presigned(benchmark):
    rows = benchmark.pedantic(run_presigned_ablation, args=(SIZES,), rounds=1, iterations=1)
    print("\n\n=== ABL-PRESIGN: direct vs proxied unstructured data ===")
    print(
        format_table(
            ("size_bytes", "direct_ms", "proxied_ms", "overhead"),
            [
                (
                    r.size_bytes,
                    f"{r.direct_ms:.2f}",
                    f"{r.proxied_ms:.2f}",
                    f"{r.overhead_factor:.2f}x",
                )
                for r in rows
            ],
        )
    )
    for row in rows:
        benchmark.extra_info[f"{row.size_bytes}B"] = f"{row.overhead_factor:.2f}x"
        assert row.proxied_ms > row.direct_ms

"""FIG3 — scalability of Oparaca vs Knative (paper §V, Fig. 3).

One benchmark per (system, VM count) cell.  The simulated throughput —
the series Fig. 3 plots — is attached as ``extra_info`` and printed in
the summary at the end of the session.
"""

from __future__ import annotations

import pytest

from repro.bench.report import format_fig3, format_fig3_chart
from repro.bench.scalability import run_cell
from repro.bench.systems import SYSTEMS

from conftest import fig3_config, fig3_nodes

_ROWS = []


@pytest.mark.parametrize("nodes", fig3_nodes())
@pytest.mark.parametrize("system", SYSTEMS)
def test_fig3_cell(benchmark, system, nodes):
    cfg = fig3_config()

    def run():
        return run_cell(system, nodes, cfg)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append(row)
    benchmark.extra_info["system"] = system
    benchmark.extra_info["vms"] = nodes
    benchmark.extra_info["throughput_rps"] = round(row.throughput_rps, 1)
    benchmark.extra_info["p99_ms"] = round(row.p99_latency_ms, 1)
    assert row.completed > 0


def teardown_module(module):
    if _ROWS:
        print("\n\n=== Fig. 3 reproduction (simulated) ===")
        print(format_fig3(sorted(_ROWS, key=lambda r: (r.system, r.nodes))))
        print()
        print(format_fig3_chart(_ROWS))

"""FIG1 — FaaS-style manual chaining vs OaaS dataflow (paper Fig. 1).

Regenerates the measurable gap behind the conceptual figure: round
trips per pipeline execution and end-to-end latency (the dataflow runs
independent stages in parallel).
"""

from __future__ import annotations

from repro.bench.abstraction import run_fig1


def test_fig1_abstraction_gap(benchmark):
    result = benchmark.pedantic(run_fig1, kwargs={"service_time_s": 0.05}, rounds=1, iterations=1)
    benchmark.extra_info["manual_round_trips"] = result.manual_round_trips
    benchmark.extra_info["macro_round_trips"] = result.macro_round_trips
    benchmark.extra_info["manual_latency_ms"] = round(result.manual_latency_s * 1000, 1)
    benchmark.extra_info["macro_latency_ms"] = round(result.macro_latency_s * 1000, 1)
    benchmark.extra_info["latency_speedup"] = round(result.latency_speedup, 2)
    print(
        f"\nFIG1: manual={result.manual_round_trips} round trips, "
        f"{result.manual_latency_s * 1000:.1f} ms; "
        f"macro=1 round trip, {result.macro_latency_s * 1000:.1f} ms "
        f"(speedup {result.latency_speedup:.2f}x)"
    )
    assert result.macro_round_trips < result.manual_round_trips
    assert result.macro_latency_s < result.manual_latency_s

"""ABL-BATCH — write-behind batch size (the knob behind Fig. 3's gap).

Sweeps the batch size on ``oprc-bypass`` under an operation-dominated
DB cost profile: batch 1 degenerates to Knative-style per-update writes
and throughput pins to the DB ceiling; larger batches amortize the
per-operation cost until the CPU becomes the bottleneck again.
"""

from __future__ import annotations

import pytest

from repro.bench.ablations import run_batching_ablation
from repro.bench.report import format_table

BATCH_SIZES = (1, 10, 100)

_ROWS = []


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_abl_batching(benchmark, batch_size):
    def run():
        return run_batching_ablation(batch_sizes=(batch_size,), nodes=6)[0]

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append(row)
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["throughput_rps"] = round(row.throughput_rps, 1)
    benchmark.extra_info["docs_per_op"] = round(row.docs_per_op, 1)
    assert row.throughput_rps > 0


def teardown_module(module):
    if not _ROWS:
        return
    print("\n\n=== ABL-BATCH: write-behind batch size (oprc-bypass, 6 VMs) ===")
    print(
        format_table(
            ("batch", "throughput_rps", "db_ops", "docs/op", "mean_ms"),
            [
                (
                    r.batch_size,
                    f"{r.throughput_rps:.0f}",
                    r.db_write_ops,
                    f"{r.docs_per_op:.1f}",
                    f"{r.mean_latency_ms:.1f}",
                )
                for r in sorted(_ROWS, key=lambda r: r.batch_size)
            ],
        )
    )
    ordered = sorted(_ROWS, key=lambda r: r.batch_size)
    assert ordered[-1].throughput_rps > ordered[0].throughput_rps * 1.5

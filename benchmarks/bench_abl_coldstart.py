"""ABL-COLD — scale-to-zero cold starts vs pre-warmed replicas.

The tutorial's "optimal configurations to avoid potential overheads":
``min_scale=0`` buys scale-to-zero economics but charges the first
burst a cold start; pre-warming trades idle replicas for tail latency.
"""

from __future__ import annotations

import pytest

from repro.bench.ablations import run_coldstart_ablation
from repro.bench.report import format_table

_ROWS = []


@pytest.mark.parametrize("min_scale", (0, 1, 2))
def test_abl_coldstart(benchmark, min_scale):
    def run():
        return run_coldstart_ablation(min_scales=(min_scale,), burst=24)[0]

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append(row)
    # The observability layer must agree with the engine's own counter:
    # every cold start yields exactly one faas.cold_start span and event.
    assert row.traced_cold_starts == row.cold_starts
    assert row.event_cold_starts == row.cold_starts
    benchmark.extra_info["min_scale"] = min_scale
    benchmark.extra_info["first_latency_ms"] = round(row.first_latency_ms, 1)
    benchmark.extra_info["burst_p99_ms"] = round(row.burst_p99_ms, 1)
    benchmark.extra_info["idle_replicas"] = row.idle_replicas
    benchmark.extra_info["cold_starts"] = row.cold_starts


def teardown_module(module):
    if not _ROWS:
        return
    print("\n\n=== ABL-COLD: cold start vs pre-warmed replicas ===")
    print(
        format_table(
            ("min_scale", "idle_replicas", "first_ms", "burst_p99_ms", "cold_starts"),
            [
                (
                    r.min_scale,
                    r.idle_replicas,
                    f"{r.first_latency_ms:.0f}",
                    f"{r.burst_p99_ms:.0f}",
                    r.cold_starts,
                )
                for r in sorted(_ROWS, key=lambda r: r.min_scale)
            ],
        )
    )
    ordered = sorted(_ROWS, key=lambda r: r.min_scale)
    if len(ordered) >= 2:
        assert ordered[0].first_latency_ms > ordered[-1].first_latency_ms

"""ABL-DURABILITY — the durability plane's crash-restore drill.

A ``persistence: strong`` Ledger and a ``persistence: standard`` Cart
take steady counter increments until one node crashes, taking its DHT
partition memory and unflushed write-behind buffer with it.  With the
plane off, recently acknowledged Cart increments vanish silently; with
the plane on, recovery reloads each class from its best durable source
(commit epochs / snapshot generations / flushed store copies) and
reports measured RPO and RTO.  Ledger must come back with RPO 0 — its
commits are synchronously durable — while Cart's RPO stays bounded by
the snapshot cadence.
"""

from __future__ import annotations

import pytest

from repro.bench.ablations import run_durability_ablation
from repro.bench.report import format_table

MODES = ("off", "on")

_ROWS = []


@pytest.mark.parametrize("mode", MODES)
def test_abl_durability(benchmark, mode):
    def run():
        return run_durability_ablation(modes=(mode,))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.extend(rows)
    by_cls = {r.cls: r for r in rows}
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["ledger_rpo_s"] = round(by_cls["Ledger"].rpo_s, 6)
    benchmark.extra_info["cart_rpo_s"] = round(by_cls["Cart"].rpo_s, 6)
    benchmark.extra_info["cart_lost_acked"] = by_cls["Cart"].lost_acked
    for row in rows:
        assert row.acked_writes > 0


def teardown_module(module):
    if not _ROWS:
        return
    print("\n\n=== ABL-DURABILITY: crash drill, plane off vs on (3 VMs) ===")
    print(
        format_table(
            (
                "mode",
                "class",
                "policy",
                "acked",
                "survived",
                "lost",
                "rpo_s",
                "rto_s",
                "cuts",
                "epochs",
            ),
            [
                (
                    r.mode,
                    r.cls,
                    r.policy,
                    r.acked_writes,
                    r.surviving_count,
                    r.lost_acked,
                    f"{r.rpo_s:.4f}" if r.recovered else "-",
                    f"{r.rto_s:.4f}" if r.recovered else "-",
                    r.cuts,
                    r.epoch_writes,
                )
                for r in _ROWS
            ],
        )
    )
    on = {r.cls: r for r in _ROWS if r.mode == "on"}
    if on:
        # Strong durability: zero acknowledged writes lost, measured.
        assert on["Ledger"].recovered
        assert on["Ledger"].rpo_s == 0.0
        assert on["Ledger"].lost_acked == 0
        # Standard durability: bounded loss window, measured.
        assert on["Cart"].recovered
        assert on["Cart"].rpo_s <= 0.5

"""Shared helpers for the benchmark suite.

Each benchmark runs a *simulated* experiment: pytest-benchmark measures
the wall-clock cost of the simulation run (useful for tracking harness
regressions), while the scientifically meaningful outputs — simulated
throughput, latency, DB counters — are attached as ``extra_info`` and
printed, so ``pytest benchmarks/ --benchmark-only`` regenerates the
paper's rows/series.

Set ``REPRO_FULL=1`` for the paper-scale Fig. 3 sweep (minutes); the
default quick configuration preserves the qualitative shape in seconds
per cell.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.config import Fig3Config


def fig3_config() -> Fig3Config:
    if os.environ.get("REPRO_FULL") == "1":
        return Fig3Config()
    return Fig3Config.quick()


def fig3_nodes() -> tuple[int, ...]:
    return fig3_config().nodes_sweep


@pytest.fixture(scope="session")
def cfg() -> Fig3Config:
    return fig3_config()

"""Standing macro perf harness: the whole platform under one workload.

Runs a seeded end-to-end workload with every plane on — QoS admission
and fair queuing, durability snapshots, the metrics plane with its
scraper and SLO evaluator, kernel profiling — and emits a
``BENCH_<date>.json`` artifact with two kinds of numbers:

* ``sim``  — deterministic simulation results (invocation counts,
  simulated latency percentiles, kernel event dispatches).  A seeded
  run replays these exactly, so any drift is a behavior change and the
  regression gate compares them on every host.
* ``wall`` — host-dependent harness cost (wall-clock events/sec,
  invocations/sec, peak RSS).  Compared only when the baseline was
  recorded on a matching host fingerprint, so a committed baseline from
  one machine never fails CI on another.

Usage::

    python benchmarks/bench_macro.py                  # write BENCH_<today>.json
    python benchmarks/bench_macro.py --out reports/bench.json
    python benchmarks/bench_macro.py --check          # gate vs newest BENCH_*.json
    python benchmarks/bench_macro.py --check --baseline benchmarks/BENCH_2026-08-07.json

The gate fails (exit 1) when any gated metric regresses more than
``--threshold`` (default 10%) against the baseline.  Intentional
changes re-baseline by committing the new file; CI offers a
``perf-intentional`` PR label to skip the gate for exactly that commit.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform as host_platform
import resource
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

PACKAGE = """
name: bench-macro
classes:
  - name: Order
    qos: {latency: 50, availability: 0.99, throughput: 200}
    constraint: {persistent: true}
    keySpecs:
      - {name: total, type: INT, default: 0}
    functions:
      - name: add
        image: bench/add
  - name: Session
    qos: {throughput: 400}
    constraint: {persistent: false}
    keySpecs:
      - {name: hits, type: INT, default: 0}
    functions:
      - name: touch
        image: bench/touch
"""

#: Metrics whose increase is a regression (simulated, deterministic).
SIM_HIGHER_IS_WORSE = ("latency_p50_ms", "latency_p95_ms", "latency_p99_ms", "dispatches")
#: Deterministic counts that must not shrink (lost work = regression).
SIM_LOWER_IS_WORSE = ("invocations", "completed")
#: Wall metrics where lower is a regression (throughput-style).
WALL_LOWER_IS_WORSE = ("events_per_sec", "invocations_per_sec")
#: Wall metrics where higher is a regression (footprint-style).
WALL_HIGHER_IS_WORSE = ("peak_rss_kb",)


def run_macro(
    seed: int = 0, objects: int = 6, rounds: int = 150, backend: str = "dict"
) -> dict:
    """One full-stack seeded run; returns the BENCH result document."""
    from repro.durability.plane import DurabilityConfig
    from repro.monitoring.plane import MetricsConfig
    from repro.platform.oparaca import Oparaca, PlatformConfig
    from repro.qos.plane import QosConfig
    from repro.storage.backends import StorageConfig

    oparaca = Oparaca(
        PlatformConfig(
            seed=seed,
            events_enabled=True,
            qos=QosConfig(enabled=True),
            durability=DurabilityConfig(enabled=True),
            metrics=MetricsConfig(enabled=True),
            storage=StorageConfig(backend=backend),
        )
    )

    @oparaca.function("bench/add", service_time_s=0.004)
    def add(ctx):
        ctx.state["total"] = ctx.state.get("total", 0) + ctx.payload.get("n", 1)
        return {"total": ctx.state["total"]}

    @oparaca.function("bench/touch", service_time_s=0.001)
    def touch(ctx):
        ctx.state["hits"] = ctx.state.get("hits", 0) + 1
        return {"hits": ctx.state["hits"]}

    started = time.perf_counter()
    oparaca.deploy(PACKAGE)
    # Explicit ids: the platform default is uuid4, which would make
    # placement (and therefore the deterministic sim section) vary run to run.
    orders = [
        oparaca.new_object("Order", object_id=f"order-{i}") for i in range(objects)
    ]
    sessions = [
        oparaca.new_object("Session", object_id=f"session-{i}") for i in range(objects)
    ]
    completions = []
    for round_no in range(rounds):
        oparaca.invoke(orders[round_no % objects], "add", {"n": round_no})
        oparaca.invoke(sessions[round_no % objects], "touch")
        completions.append(
            oparaca.invoke_async(orders[(round_no + 1) % objects], "add", {"n": 1})
        )
        oparaca.advance(0.02)
    oparaca.advance(2.0)  # drain async + let the scraper/SLO settle
    oparaca.shutdown()
    oparaca.metrics.scraper.scrape_once()
    wall_seconds = time.perf_counter() - started

    latencies = []
    for cls in oparaca.monitoring.observed_classes:
        obs = oparaca.monitoring.for_class(cls)
        if obs.latency.count:
            latencies.append(obs.latency)

    def pct(p: float) -> float:
        # Aggregate the per-class reservoirs: weighted merge by count.
        merged: list[float] = []
        for histogram in latencies:
            merged.extend(histogram._values)  # bounded: reservoir size
        merged.sort()
        if not merged:
            return 0.0
        index = min(len(merged) - 1, int(round((p / 100.0) * (len(merged) - 1))))
        return merged[index] * 1000.0

    profile = oparaca.env.profile
    dispatches = profile.total_dispatches if profile is not None else 0
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        peak_rss_kb //= 1024

    engine = oparaca.engine
    completed = sum(
        oparaca.monitoring.for_class(cls).completed
        for cls in oparaca.monitoring.observed_classes
    )
    return {
        "bench": "macro",
        "seed": seed,
        "objects": objects,
        "rounds": rounds,
        "backend": backend,
        "host": {
            "platform": host_platform.platform(),
            "python": host_platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "sim": {
            "sim_time_s": round(oparaca.now, 6),
            "invocations": engine.invocations,
            "completed": completed,
            "failed": sum(
                oparaca.monitoring.for_class(cls).failed
                for cls in oparaca.monitoring.observed_classes
            ),
            "latency_p50_ms": round(pct(50), 4),
            "latency_p95_ms": round(pct(95), 4),
            "latency_p99_ms": round(pct(99), 4),
            "dispatches": dispatches,
            "scrapes": oparaca.metrics.scraper.scrapes,
            "slo_alerts": len(oparaca.metrics.slo.alerts)
            if oparaca.metrics.slo is not None
            else 0,
        },
        "wall": {
            "wall_seconds": round(wall_seconds, 4),
            "events_per_sec": round(dispatches / wall_seconds, 1)
            if wall_seconds > 0
            else 0.0,
            "invocations_per_sec": round(engine.invocations / wall_seconds, 1)
            if wall_seconds > 0
            else 0.0,
            "peak_rss_kb": int(peak_rss_kb),
        },
    }


def run_storage_dimension(seed: int = 0, objects: int = 120, queries: int = 30) -> dict:
    """The storage-backend dimension: the same seeded corpus and range
    queries over every engine, so the BENCH file records what declaring
    keySpecs buys (indexed scans examine fewer documents and are billed
    fewer work units) alongside the wall cost of each engine."""
    from repro.platform.oparaca import Oparaca, PlatformConfig
    from repro.storage.backends import StorageConfig

    out: dict[str, dict] = {}
    for backend in ("dict", "sqlite"):
        oparaca = Oparaca(
            PlatformConfig(seed=seed, storage=StorageConfig(backend=backend))
        )

        @oparaca.function("bench/add", service_time_s=0.004)
        def add(ctx):
            return {}

        @oparaca.function("bench/touch", service_time_s=0.001)
        def touch(ctx):
            return {}

        oparaca.deploy(PACKAGE)
        for i in range(objects):
            oparaca.new_object(
                "Order", {"total": (i * 37) % 1000}, object_id=f"order-{i:04d}"
            )
        oparaca.flush()
        started = time.perf_counter()
        last = None
        for q in range(queries):
            threshold = (q * 97) % 1000
            last = oparaca.http(
                "GET",
                f"/api/classes/Order/objects"
                f"?where=total>={threshold}&order=total&limit=10&explain=1",
            )
            assert last.status == 200, last.body
        wall_seconds = time.perf_counter() - started
        store = oparaca.store
        out[backend] = {
            "query_ops": store.query_ops,
            "docs_scanned": store.query_docs_scanned,
            "query_units": round(
                store.query_ops * store.model.op_cost
                + store.query_docs_scanned * store.model.read_cost,
                2,
            ),
            "index_used": bool(last.body.get("index_used")),
            "wall_seconds": round(wall_seconds, 4),
        }
        oparaca.shutdown()
    return out


def run_federation_dimension(seed: int = 0, objects: int = 4, rounds: int = 10) -> dict:
    """The federation dimension: the ABL-FEDERATION placement arms at a
    reduced scale, so the BENCH file records what NFR-scored edge
    placement buys (p95 under the declared latency bound) next to the
    core-only control, plus the jurisdiction-enforcement counters."""
    from repro.bench.ablations import run_federation_ablation

    out: dict[str, dict] = {}
    for row in run_federation_ablation(
        seed=seed, objects=objects, rounds=rounds
    ):
        out[row.mode] = {
            "placement": row.placement,
            "sensor_p95_ms": round(row.sensor_p95_ms, 3),
            "sensor_target_ms": row.sensor_target_ms,
            "sensor_met": row.sensor_met,
            "completed": row.completed,
            "cross_zone": row.cross_zone,
            "vault_rejections": row.vault_rejections,
        }
    return out


def _latest_baseline(bench_dir: Path, exclude: Path | None = None) -> Path | None:
    candidates = sorted(
        p
        for p in bench_dir.glob("BENCH_*.json")
        if exclude is None or p.resolve() != exclude.resolve()
    )
    return candidates[-1] if candidates else None


def _gate(
    current: dict, baseline: dict, threshold: float
) -> list[str]:
    """Regression messages (empty = gate passes)."""
    failures: list[str] = []

    def compare(section: str, name: str, higher_is_worse: bool) -> None:
        base = baseline.get(section, {}).get(name)
        new = current.get(section, {}).get(name)
        if base is None or new is None or base == 0:
            return
        change = (new - base) / abs(base)
        regressed = change > threshold if higher_is_worse else change < -threshold
        if regressed:
            failures.append(
                f"{section}.{name}: {base} -> {new} "
                f"({change:+.1%}, limit ±{threshold:.0%})"
            )

    for name in SIM_HIGHER_IS_WORSE:
        compare("sim", name, higher_is_worse=True)
    for name in SIM_LOWER_IS_WORSE:
        compare("sim", name, higher_is_worse=False)
    same_host = current.get("host") == baseline.get("host")
    if same_host:
        for name in WALL_LOWER_IS_WORSE:
            compare("wall", name, higher_is_worse=False)
        for name in WALL_HIGHER_IS_WORSE:
            compare("wall", name, higher_is_worse=True)
    else:
        print(
            "note: baseline recorded on a different host; "
            "wall-clock metrics not gated",
            file=sys.stderr,
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--objects", type=int, default=6)
    parser.add_argument("--rounds", type=int, default=150)
    parser.add_argument(
        "--backend",
        choices=("dict", "sqlite"),
        default="dict",
        help="store engine behind the macro workload (default dict)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default benchmarks/BENCH_<today>.json; '-' for stdout)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate against the newest committed BENCH_*.json baseline",
    )
    parser.add_argument(
        "--baseline", default=None, help="explicit baseline file for --check"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative regression tolerance (default 0.10 = 10%%)",
    )
    args = parser.parse_args(argv)

    result = run_macro(
        seed=args.seed, objects=args.objects, rounds=args.rounds, backend=args.backend
    )
    result["storage_backends"] = run_storage_dimension(seed=args.seed)
    result["federation"] = run_federation_dimension(seed=args.seed)
    bench_dir = Path(__file__).resolve().parent

    out_path: Path | None
    if args.out == "-":
        out_path = None
        print(json.dumps(result, indent=2))
    else:
        if args.out is not None:
            out_path = Path(args.out)
        else:
            today = datetime.date.today().isoformat()
            out_path = bench_dir / f"BENCH_{today}.json"
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out_path}")
    sim, wall = result["sim"], result["wall"]
    print(
        f"sim: invocations={sim['invocations']} "
        f"p50={sim['latency_p50_ms']:.2f}ms p95={sim['latency_p95_ms']:.2f}ms "
        f"p99={sim['latency_p99_ms']:.2f}ms dispatches={sim['dispatches']}"
    )
    print(
        f"wall: {wall['wall_seconds']:.2f}s "
        f"events/s={wall['events_per_sec']:.0f} "
        f"invocations/s={wall['invocations_per_sec']:.0f} "
        f"peak_rss={wall['peak_rss_kb']}kB"
    )
    for name, stats in result["storage_backends"].items():
        print(
            f"storage[{name}]: scanned={stats['docs_scanned']} "
            f"units={stats['query_units']} index={stats['index_used']} "
            f"wall={stats['wall_seconds']:.3f}s"
        )
    for name, stats in result["federation"].items():
        print(
            f"federation[{name}]: p95={stats['sensor_p95_ms']:.1f}ms "
            f"met={stats['sensor_met']} cross_zone={stats['cross_zone']} "
            f"rejections={stats['vault_rejections']}"
        )

    if not args.check:
        return 0
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = _latest_baseline(bench_dir, exclude=out_path)
    if baseline_path is None or not baseline_path.exists():
        print("no committed BENCH_*.json baseline; gate passes vacuously")
        return 0
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = _gate(result, baseline, args.threshold)
    if failures:
        print(f"\nPERF GATE FAILED vs {baseline_path.name}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print(
            "re-baseline by committing the new BENCH file if this is "
            "intentional (CI: apply the 'perf-intentional' label)",
            file=sys.stderr,
        )
        return 1
    print(f"perf gate passed vs {baseline_path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

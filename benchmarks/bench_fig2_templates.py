"""FIG2 — class runtime templates (paper Fig. 2, §III-B).

Fig. 2 depicts requirement-matched template selection producing
dedicated class runtimes.  This benchmark deploys a package whose
classes span the catalog's requirement combinations and reports which
template realized each class — the behavioural content of the figure —
while timing the full deploy (selection + runtime provisioning).
"""

from __future__ import annotations

from repro.platform.oparaca import Oparaca, PlatformConfig

PACKAGE = """
name: fig2
classes:
  - name: Plain
    functions: [{ name: f, image: bench/echo }]
  - name: Ephemeral
    constraint: { persistent: false }
    functions: [{ name: f, image: bench/echo }]
  - name: LatencyBound
    qos: { latency: 50 }
    functions: [{ name: f, image: bench/echo }]
  - name: HighThroughput
    qos: { throughput: 1000 }
    functions: [{ name: f, image: bench/echo }]
  - name: HighlyAvailable
    qos: { availability: 0.999 }
    functions: [{ name: f, image: bench/echo }]
  - name: BudgetCapped
    constraint: { budget: 25 }
    functions: [{ name: f, image: bench/echo }]
"""

EXPECTED = {
    "Plain": "default",
    "Ephemeral": "in-memory-ephemeral",
    "LatencyBound": "low-latency",
    "HighThroughput": "high-throughput",
    "HighlyAvailable": "high-availability",
    "BudgetCapped": "cost-saver",
}


def test_fig2_template_selection(benchmark):
    def deploy():
        platform = Oparaca(PlatformConfig(nodes=3))
        platform.register_image("bench/echo", lambda ctx: {})
        platform.deploy(PACKAGE)
        return platform

    platform = benchmark.pedantic(deploy, rounds=1, iterations=1)
    print("\nFIG2: template selection by requirement combination")
    selected = {}
    for runtime in platform.describe():
        selected[runtime["class"]] = runtime["template"]
        print(
            f"  {runtime['class']:>16} -> {runtime['template']:<20} "
            f"(engine={runtime['engine']}, replication={runtime['replication']}, "
            f"persistent={runtime['persistent']})"
        )
        benchmark.extra_info[runtime["class"]] = runtime["template"]
    assert selected == EXPECTED
    platform.shutdown()

"""ABL-BURST — autoscaler tracking of bursty arrivals (paper §II-D).

Alternating quiet/burst phases against a Knative service: scale-to-one
pays the autoscaler reaction time (tick + cold start) in burst-phase
tail latency; pre-warming to the burst's working set absorbs it.
"""

from __future__ import annotations

import pytest

from repro.bench.ablations import run_burst_ablation
from repro.bench.report import format_table

_ROWS = []


@pytest.mark.parametrize("min_scale", (1, 4))
def test_abl_burst(benchmark, min_scale):
    def run():
        return run_burst_ablation(min_scales=(min_scale,))[0]

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append(row)
    benchmark.extra_info["min_scale"] = min_scale
    benchmark.extra_info["base_p99_ms"] = round(row.base_p99_ms, 1)
    benchmark.extra_info["burst_p99_ms"] = round(row.burst_p99_ms, 1)
    benchmark.extra_info["peak_replicas"] = row.peak_replicas


def teardown_module(module):
    if not _ROWS:
        return
    print("\n\n=== ABL-BURST: burst tracking (40 -> 400 rps phases) ===")
    print(
        format_table(
            ("min_scale", "base_p99_ms", "burst_p99_ms", "degradation", "peak_replicas"),
            [
                (
                    r.min_scale,
                    f"{r.base_p99_ms:.0f}",
                    f"{r.burst_p99_ms:.0f}",
                    f"{r.degradation:.1f}x",
                    r.peak_replicas,
                )
                for r in sorted(_ROWS, key=lambda r: r.min_scale)
            ],
        )
    )
    ordered = sorted(_ROWS, key=lambda r: r.min_scale)
    assert ordered[0].burst_p99_ms > ordered[-1].burst_p99_ms

"""ABL-READPATH — read-side levers under a post-failure miss storm.

Crashes a DHT node and fires concurrent reads at every object from the
survivors: with everything off each concurrent miss is its own
``op_cost + read_cost`` store read; single-flight coalescing collapses
same-key misses to one read, the miss batcher folds keys into
multi-gets, and the near cache absorbs the repeat wave on non-owner
callers.
"""

from __future__ import annotations

import pytest

from repro.bench.ablations import run_readpath_ablation
from repro.bench.report import format_table

MODES = ("off", "coalesce", "coalesce+batch", "coalesce+batch+near")

_ROWS = []


@pytest.mark.parametrize("mode", MODES)
def test_abl_readpath(benchmark, mode):
    def run():
        return run_readpath_ablation(modes=(mode,))[0]

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append(row)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["store_read_ops"] = row.store_read_ops
    benchmark.extra_info["mean_get_ms"] = round(row.mean_get_ms, 3)
    assert row.store_read_ops > 0


def teardown_module(module):
    if not _ROWS:
        return
    print("\n\n=== ABL-READPATH: miss-storm reads after fail_node (4 VMs) ===")
    print(
        format_table(
            ("mode", "store_reads", "multi_gets", "coalesced", "near_hits", "mean_ms"),
            [
                (
                    r.mode,
                    r.store_read_ops,
                    r.store_multi_read_ops,
                    r.coalesced,
                    r.near_hits,
                    f"{r.mean_get_ms:.2f}",
                )
                for r in _ROWS
            ],
        )
    )
    by_mode = {r.mode: r for r in _ROWS}
    if "off" in by_mode and "coalesce" in by_mode:
        assert by_mode["off"].store_read_ops >= 2 * by_mode["coalesce"].store_read_ops

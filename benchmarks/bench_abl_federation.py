"""ABL-FEDERATION — edge-pinned vs core-only placement, geo-distributed.

Eight nodes over a three-tier topology (two edge sites, one regional
DC, one core DC); clients invoke from the edge with ``x-origin-zone``
headers.  With core-only placement every edge-origin invocation pays
the 80 ms edge↔core WAN leg and the latency-declared Sensor class blows
its 20 ms NFR; with NFR-scored placement the class pins to the edge and
holds the target.  A third, deliberately misconfigured arm sends the
jurisdiction-pinned Vault class traffic from outside its jurisdiction —
every access is rejected (HTTP 451) and counted into the
``jurisdiction`` NFR verdict.
"""

from __future__ import annotations

import pytest

from repro.bench.ablations import run_federation_ablation
from repro.bench.report import format_table

MODES = ("core-only", "edge-pinned", "misconfigured")

_ROWS = []


@pytest.mark.parametrize("mode", MODES)
def test_abl_federation(benchmark, mode):
    def run():
        return run_federation_ablation(modes=(mode,))[0]

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append(row)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["sensor_p95_ms"] = round(row.sensor_p95_ms, 3)
    benchmark.extra_info["vault_rejections"] = row.vault_rejections
    assert row.completed > 0


def teardown_module(module):
    if not _ROWS:
        return
    print("\n\n=== ABL-FEDERATION: placement arms on the three-tier topology ===")
    print(
        format_table(
            (
                "mode",
                "placement",
                "sensor_p95_ms",
                "target_ms",
                "met",
                "ok",
                "cross_zone",
                "vault_rej",
            ),
            [
                (
                    r.mode,
                    r.placement,
                    f"{r.sensor_p95_ms:.1f}",
                    f"{r.sensor_target_ms:.0f}",
                    "yes" if r.sensor_met else "NO",
                    r.completed,
                    r.cross_zone,
                    r.vault_rejections,
                )
                for r in _ROWS
            ],
        )
    )
    by_mode = {r.mode: r for r in _ROWS}
    if "core-only" in by_mode and "edge-pinned" in by_mode:
        core, edge = by_mode["core-only"], by_mode["edge-pinned"]
        if edge.sensor_p95_ms > 0:
            print(
                f"edge-pinned p95 {edge.sensor_p95_ms:.1f}ms vs core-only "
                f"{core.sensor_p95_ms:.1f}ms "
                f"({core.sensor_p95_ms / edge.sensor_p95_ms:.1f}x)"
            )

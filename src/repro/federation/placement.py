"""Deterministic NFR-scored placement across the zone hierarchy.

The planner turns a class's non-functional requirements into an
*ordered* list of cluster nodes used three ways: as the membership of
the class's DHT partition ring, as the pod placement hints handed to
the deployment engines, and — because the CRM refreshes hints on every
node join/leave — as the constraint obeyed on scale-up and self-heal,
not just at initial deploy.

Scoring is pure arithmetic over the topology and the cluster inventory
(no RNG): jurisdiction is a hard filter, the latency NFR picks the
preferred tier (declared latency → pin to the lowest tier with capacity,
i.e. the edge; no latency → consolidate on the core), zone centrality
(mean matrix RTT to the other candidate zones) breaks tier ties, then
free CPU and finally the node name.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SchedulingError
from repro.federation.topology import Zone, ZoneTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.nfr import NonFunctionalRequirements
    from repro.orchestrator.cluster import Cluster

__all__ = ["PlacementPlanner"]

PLACEMENT_MODES = ("nfr", "core-only")


class PlacementPlanner:
    """Scores candidate nodes for a class's pods and partitions."""

    def __init__(
        self,
        cluster: "Cluster",
        topology: ZoneTopology,
        mode: str = "nfr",
        default_rtt_s: float = 0.04,
    ) -> None:
        if mode not in PLACEMENT_MODES:
            raise SchedulingError(
                f"unknown placement mode {mode!r}; expected one of {PLACEMENT_MODES}"
            )
        self.cluster = cluster
        self.topology = topology
        self.mode = mode
        self.default_rtt_s = default_rtt_s

    # -- zone lookups --------------------------------------------------------

    def zone_of_node(self, node_name: str) -> Zone | None:
        """The zone a node's ``region`` label names (``None`` if unzoned)."""
        return self.topology.get(self.cluster.region_of(node_name))

    def nodes_in_zone(self, zone_name: str) -> list[str]:
        zone = self.topology.zone(zone_name)
        return [
            name
            for name in self.cluster.node_names
            if self.cluster.region_of(name) == zone.name
        ]

    def allowed_nodes(self, jurisdictions: tuple[str, ...]) -> list[str]:
        """Nodes whose zone satisfies the jurisdiction constraint.

        Constraint entries may name a zone or a zone's jurisdiction
        region; entries naming neither raise :class:`SchedulingError`
        listing the labels that exist.
        """
        if not jurisdictions:
            return self.cluster.node_names
        known = self.topology.jurisdiction_labels()
        unknown = set(jurisdictions) - known
        if unknown:
            raise SchedulingError(
                f"unknown jurisdiction(s) {sorted(unknown)}; "
                f"known zones/regions: {sorted(known)}"
            )
        return [
            name
            for name in self.cluster.node_names
            if self.topology.matches_jurisdiction(
                self.cluster.region_of(name), jurisdictions
            )
        ]

    # -- scoring -------------------------------------------------------------

    def plan(self, nfr: "NonFunctionalRequirements") -> list[str]:
        """Ranked node placement for a class with the given NFRs.

        The returned list is both a restriction (state and pods stay on
        these nodes) and a preference order (earlier nodes are hinted
        first).  Empty when no node satisfies the constraint.
        """
        candidates = self.allowed_nodes(nfr.constraint.jurisdictions)
        if not candidates:
            return []
        latency_ms = nfr.qos.latency_ms
        ranks = {name: self._tier_rank(name) for name in candidates}
        if self.mode == "core-only":
            pin_rank = max(ranks.values())
        elif latency_ms is not None:
            pin_rank = min(ranks.values())
        else:
            pin_rank = None
        if pin_rank is not None:
            candidates = [name for name in candidates if ranks[name] == pin_rank]
        zone_names = set()
        for name in candidates:
            zone = self.zone_of_node(name)
            if zone is not None:
                zone_names.add(zone.name)
        return sorted(
            candidates,
            key=lambda name: self._score(name, latency_ms, zone_names),
        )

    def rank_in_zone(self, zone_name: str, members: list[str]) -> list[str]:
        """Migration-target order inside one zone: free CPU, then name."""
        zone_members = [
            name for name in self.nodes_in_zone(zone_name) if name in set(members)
        ]
        return sorted(
            zone_members,
            key=lambda name: (-self.cluster.node(name).allocatable.cpu_millis, name),
        )

    def _tier_rank(self, node_name: str) -> int:
        zone = self.zone_of_node(node_name)
        return zone.tier_rank if zone is not None else 1

    def _score(
        self,
        node_name: str,
        latency_ms: float | None,
        candidate_zones: set[str],
    ) -> tuple[float, float, float, str]:
        zone = self.zone_of_node(node_name)
        tier_rank = zone.tier_rank if zone is not None else 1
        # Latency-constrained classes climb down the hierarchy (edge
        # first); unconstrained ones consolidate at the top (core first).
        tier_score = float(tier_rank if latency_ms is not None else -tier_rank)
        centrality = self._centrality(zone, candidate_zones)
        free_cpu = float(self.cluster.node(node_name).allocatable.cpu_millis)
        return (tier_score, centrality, -free_cpu, node_name)

    def _centrality(self, zone: Zone | None, candidate_zones: set[str]) -> float:
        """Mean RTT from ``zone`` to the other candidate zones — the
        lower-latency zone wins when tiers tie."""
        if zone is None:
            return self.default_rtt_s
        others = [name for name in candidate_zones if name != zone.name]
        if not others:
            return 0.0
        total = 0.0
        for other in others:
            rtt = self.topology.rtt_s(zone.name, other)
            total += rtt if rtt is not None else self.default_rtt_s
        return total / len(others)

"""Hierarchical zone topology: edge sites → regional DCs → core.

A :class:`Zone` is one latency/failure domain.  Cluster nodes join a
zone through their ``region`` label (the zone *name*); each zone also
carries a ``region`` attribute — the *jurisdiction* label that NFR
``constraint.jurisdictions`` entries match, so several zones
(``eu-edge``, ``eu-core``) can share one legal region (``eu``).

:class:`ZoneTopology` adds a symmetric per-zone-pair RTT matrix that
generalises the network model's single flat ``inter_region_rtt_s``:
pairs absent from the matrix fall back to the flat value, so a topology
with an empty matrix behaves exactly like the pre-federation network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["TIERS", "Zone", "ZoneTopology"]

TIERS = ("edge", "regional", "core")
_TIER_RANK = {tier: rank for rank, tier in enumerate(TIERS)}


@dataclass(frozen=True)
class Zone:
    """One zone of the federation hierarchy.

    ``name`` is what node ``region`` labels carry; ``region`` is the
    jurisdiction label (defaults to the zone name); ``parent`` points at
    the next tier up (edge → regional → core).
    """

    name: str
    tier: str = "regional"
    region: str | None = None
    parent: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("zone name must be non-empty")
        if self.tier not in TIERS:
            raise ValidationError(
                f"zone {self.name!r}: unknown tier {self.tier!r} "
                f"(expected one of {list(TIERS)})"
            )
        if self.region is None:
            object.__setattr__(self, "region", self.name)

    @property
    def tier_rank(self) -> int:
        """0 for edge, 1 for regional, 2 for core."""
        return _TIER_RANK[self.tier]


class ZoneTopology:
    """Validated zone set plus the symmetric zone-pair RTT matrix."""

    def __init__(
        self,
        zones: tuple[Zone, ...] | list[Zone],
        rtt_s: tuple[tuple[str, str, float], ...] | list[tuple[str, str, float]] = (),
    ) -> None:
        self._zones: dict[str, Zone] = {}
        for zone in zones:
            if not isinstance(zone, Zone):
                raise ValidationError(f"expected a Zone, got {zone!r}")
            if zone.name in self._zones:
                raise ValidationError(f"duplicate zone {zone.name!r}")
            self._zones[zone.name] = zone
        for zone in self._zones.values():
            if zone.parent is None:
                continue
            parent = self._zones.get(zone.parent)
            if parent is None:
                raise ValidationError(
                    f"zone {zone.name!r}: unknown parent {zone.parent!r}"
                )
            if parent.tier_rank <= zone.tier_rank:
                raise ValidationError(
                    f"zone {zone.name!r} ({zone.tier}) must have a parent of a "
                    f"higher tier, not {parent.name!r} ({parent.tier})"
                )
        self._rtt: dict[tuple[str, str], float] = {}
        for entry in rtt_s:
            if len(entry) != 3:
                raise ValidationError(
                    f"zone RTT entry must be (zone_a, zone_b, seconds): {entry!r}"
                )
            a, b, seconds = entry
            for name in (a, b):
                if name not in self._zones:
                    raise ValidationError(f"zone RTT entry names unknown zone {name!r}")
            if a == b:
                raise ValidationError(f"zone RTT entry pairs {a!r} with itself")
            if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
                raise ValidationError(f"zone RTT for ({a!r}, {b!r}) must be a number")
            if seconds <= 0:
                raise ValidationError(f"zone RTT for ({a!r}, {b!r}) must be > 0")
            self._rtt[self._pair(a, b)] = float(seconds)

    @staticmethod
    def _pair(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    @property
    def zones(self) -> tuple[Zone, ...]:
        return tuple(self._zones[name] for name in sorted(self._zones))

    @property
    def zone_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._zones))

    def get(self, name: str | None) -> Zone | None:
        return self._zones.get(name) if name is not None else None

    def zone(self, name: str) -> Zone:
        zone = self._zones.get(name)
        if zone is None:
            raise ValidationError(
                f"unknown zone {name!r}; known zones: {list(self.zone_names)}"
            )
        return zone

    def rtt_s(self, a: str | None, b: str | None) -> float | None:
        """Matrix RTT between two zones, ``None`` when the pair is not
        declared (callers fall back to the flat inter-region RTT).
        Same-zone pairs are intra-DC: 0.0 extra."""
        if a is None or b is None:
            return None
        if a == b:
            return 0.0
        return self._rtt.get(self._pair(a, b))

    def matches_jurisdiction(
        self, zone_name: str | None, jurisdictions: tuple[str, ...]
    ) -> bool:
        """True when the zone's name *or* its jurisdiction region label
        is in ``jurisdictions`` (empty constraint matches everything)."""
        if not jurisdictions:
            return True
        zone = self.get(zone_name)
        if zone is None:
            return False
        wanted = set(jurisdictions)
        return zone.name in wanted or zone.region in wanted

    def jurisdiction_labels(self) -> set[str]:
        """Every label a ``jurisdictions`` constraint may legally name."""
        labels: set[str] = set()
        for zone in self._zones.values():
            labels.add(zone.name)
            labels.add(zone.region)  # type: ignore[arg-type]
        return labels

    def describe(self) -> list[dict[str, str | None]]:
        return [
            {
                "name": zone.name,
                "tier": zone.tier,
                "region": zone.region,
                "parent": zone.parent,
            }
            for zone in self.zones
        ]

"""Live object migration between zones.

The handoff protocol (documented in ``docs/federation.md``):

1. **Quiesce** — open the class's snapshot cut gate so new commits park;
   commits already past the gate are handled by step 2.
2. **Fence** — bump the key's migration epoch.  A commit that captured
   the previous epoch fails its install with
   :class:`~repro.errors.ConcurrentModificationError`; the invoker's CAS
   loop reloads (now routed to the new owner) and retries, so in-flight
   invocations on the old owner can neither be lost nor resurrect stale
   state.
3. **Select the best source** — drain the write-behind queues, then take
   the newest copy among every node's resident memory and the flushed
   document-store copy (the durability plane's best-durable-source
   rule).
4. **Hand off** — pay the zone-pair WAN transfer for the state, then
   atomically pin the key to the target node, install the copy
   version-guarded, and purge stale copies outside the new owner set.
5. **Release** — close the cut gate; parked commits resume against the
   new owner under the same optimistic version check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.durability.restore import _doc_version
from repro.errors import MigrationError, UnknownObjectError
from repro.federation.placement import PlacementPlanner
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Tracer
from repro.sim.kernel import Environment, Process
from repro.sim.network import Network
from repro.storage.dht import doc_size_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crm.runtime import ClassRuntime

__all__ = ["FEDERATION_TRACE_ID", "MigrationManager"]

FEDERATION_TRACE_ID = "federation"


class MigrationManager:
    """Executes zone-to-zone object handoffs for the federation plane."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        planner: PlacementPlanner,
        events: EventLog | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.env = env
        self.network = network
        self.planner = planner
        self.events = events
        self.tracer = tracer
        self.migrations = 0
        self.migrations_failed = 0

    def migrate(
        self, runtime: "ClassRuntime", key: str, target_zone: str
    ) -> Process:
        """Move one object's primary copy into ``target_zone``.

        Resolves to a summary dict; raises :class:`MigrationError` when
        the target zone holds no eligible member node and
        :class:`UnknownObjectError` when no copy of the object exists.
        """
        return self.env.process(self._migrate(runtime, key, target_zone))

    def _migrate(
        self, runtime: "ClassRuntime", key: str, target_zone: str
    ) -> Generator:
        zone = self.planner.topology.zone(target_zone)
        dht = runtime.dht
        targets = self.planner.rank_in_zone(zone.name, list(dht.nodes))
        if targets:
            target = targets[0]
        else:
            # The class's partition ring (possibly tier-pinned by the
            # planner) has no member in the target zone: extend it with
            # the zone's best cluster node — an operator-initiated
            # spill, still subject to the caller's jurisdiction gate.
            candidates = self.planner.rank_in_zone(
                zone.name, self.planner.cluster.node_names
            )
            if not candidates:
                raise MigrationError(
                    f"class {runtime.cls!r} has no partition node in zone "
                    f"{zone.name!r} and the zone holds no cluster node to "
                    f"extend the ring with (members: {list(dht.nodes)})"
                )
            target = candidates[0]
            dht.add_node(target)
            runtime.router.refresh()
        source = dht.owner(key)
        source_zone = self.planner.zone_of_node(source)
        span = None
        if self.tracer is not None and self.tracer.enabled:
            span = self.tracer.start(
                FEDERATION_TRACE_ID,
                "federation.migrate",
                cls=runtime.cls,
                object=key,
                source=source,
                target=target,
                zone=zone.name,
            )
        started = self.env.now
        # Reuse the durability plane's quiescence gate when free: new
        # commits park until the handoff lands.  In-flight commits past
        # the gate are fenced by the epoch bump below.
        opened_cut = dht._cut_gate is None
        if opened_cut:
            dht.begin_cut()
        dht.prepare_migration(key)
        try:
            best = yield from self._best_copy(dht, key)
            if best is None:
                raise UnknownObjectError(f"no object {key!r}")
            if source != target:
                yield self.network.transfer(source, target, doc_size_bytes(best))
            dht.complete_migration(key, target, best)
            runtime.router.refresh()
        except BaseException as exc:
            self.migrations_failed += 1
            if self.tracer is not None:
                self.tracer.finish(span, error=type(exc).__name__)
            raise
        finally:
            if opened_cut:
                dht.end_cut()
        self.migrations += 1
        summary: dict[str, Any] = {
            "class": runtime.cls,
            "object": key,
            "source": source,
            "source_zone": source_zone.name if source_zone is not None else None,
            "target": target,
            "target_zone": zone.name,
            "version": int(best.get("version", 0)),
            "epoch": dht.pin_epoch(key),
            "duration_s": self.env.now - started,
        }
        if self.events is not None:
            self.events.record("federation.migrate", **summary)
        if self.tracer is not None:
            self.tracer.finish(span, version=summary["version"])
        return summary

    def _best_copy(self, dht, key: str) -> Generator:
        """Newest copy across live memory and the flushed store — the
        durability plane's best-durable-source selection, applied to a
        healthy class."""
        yield dht.flush_all()
        best = dht.best_resident(key)
        if dht.store is not None and dht.model.persistent:
            stored = yield dht.store.read(dht.collection, key)
            if _doc_version(stored) > _doc_version(best):
                best = stored
        return best

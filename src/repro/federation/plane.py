"""The federation plane facade: config gate, geo-routing, migration.

Mirrors the QoS/durability/scheduler plane pattern: a frozen
:class:`FederationConfig` with ``enabled=False`` rides on
``PlatformConfig``, and when disabled **no plane object is built** — no
topology, no zone RTT resolver on the network, no hook on the invoker —
so a baseline run is byte-identical to one built before this package
existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import JurisdictionError, MigrationError, ValidationError
from repro.federation.migration import FEDERATION_TRACE_ID, MigrationManager
from repro.federation.placement import PLACEMENT_MODES, PlacementPlanner
from repro.federation.topology import Zone, ZoneTopology
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Tracer
from repro.sim.kernel import Environment, Process
from repro.sim.network import Network
from repro.storage.dht import Dht

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crm.manager import ClassRuntimeManager
    from repro.crm.runtime import ClassRuntime
    from repro.model.nfr import NonFunctionalRequirements
    from repro.orchestrator.cluster import Cluster

__all__ = ["FEDERATION_TRACE_ID", "FederationConfig", "FederationPlane"]


@dataclass(frozen=True)
class FederationConfig:
    """Switchboard for the edge–cloud federation plane.

    Attributes:
        enabled: build the plane.  ``False`` (the default) constructs
            nothing and leaves every data path untouched.
        zones: the hierarchy — each cluster ``region`` label must name
            one of these zones.
        zone_rtt_s: symmetric ``(zone_a, zone_b, seconds)`` matrix
            entries; pairs left out fall back to the network model's
            flat ``inter_region_rtt_s``.
        default_origin_zone: origin assumed for gateway requests that
            carry no ``origin_zone``; ``None`` leaves them zone-neutral
            (no geo-routing, no jurisdiction check).
        placement: ``"nfr"`` scores placement against each class's
            latency NFR (latency-constrained classes pin to the edge);
            ``"core-only"`` consolidates everything on the highest tier
            — the ABL-FEDERATION control arm.
        enforce_jurisdiction: reject cross-jurisdiction reads/writes
            with :class:`~repro.errors.JurisdictionError` and count them
            into the ``jurisdiction`` NFR verdict.
    """

    enabled: bool = False
    zones: tuple[Zone, ...] = ()
    zone_rtt_s: tuple[tuple[str, str, float], ...] = ()
    default_origin_zone: str | None = None
    placement: str = "nfr"
    enforce_jurisdiction: bool = True

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENT_MODES:
            raise ValidationError(
                f"placement must be one of {PLACEMENT_MODES}, got {self.placement!r}"
            )
        if self.enabled and not self.zones:
            raise ValidationError(
                "federation requires at least one zone when enabled"
            )
        # Topology construction validates zone/tier/parent/matrix shape.
        topology = ZoneTopology(self.zones, self.zone_rtt_s)
        if (
            self.default_origin_zone is not None
            and topology.get(self.default_origin_zone) is None
        ):
            raise ValidationError(
                f"default_origin_zone {self.default_origin_zone!r} is not a "
                f"declared zone (zones: {list(topology.zone_names)})"
            )


@dataclass
class _ClassFederationStats:
    accesses: int = 0
    cross_zone: int = 0
    rejections: int = 0


class FederationPlane:
    """Topology + planner + migration + geo-routing, built only when
    ``FederationConfig(enabled=True)``."""

    def __init__(
        self,
        env: Environment,
        cluster: "Cluster",
        network: Network,
        crm: "ClassRuntimeManager",
        events: EventLog | None = None,
        tracer: Tracer | None = None,
        config: FederationConfig | None = None,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.network = network
        self.crm = crm
        self.events = events
        self.tracer = tracer
        self.config = config or FederationConfig(enabled=True)
        self.topology = ZoneTopology(self.config.zones, self.config.zone_rtt_s)
        self.planner = PlacementPlanner(
            cluster,
            self.topology,
            mode=self.config.placement,
            default_rtt_s=network.model.inter_region_rtt_s,
        )
        self.migration = MigrationManager(
            env, network, self.planner, events=events, tracer=tracer
        )
        for region in cluster.regions:
            if self.topology.get(region) is None:
                raise ValidationError(
                    f"cluster region label {region!r} names no declared zone "
                    f"(zones: {list(self.topology.zone_names)})"
                )
        # Generalise the flat inter-region RTT into the zone matrix for
        # every node-to-node transfer.
        network.zone_rtt = self._node_pair_rtt
        self._stats: dict[str, _ClassFederationStats] = {}

    # -- latency model -------------------------------------------------------

    def _node_pair_rtt(self, src: str, dst: str) -> float | None:
        return self.topology.rtt_s(
            self.cluster.region_of(src), self.cluster.region_of(dst)
        )

    def zone_rtt_s(self, origin_zone: str, zone_name: str | None) -> float:
        """Client-leg RTT from an origin zone to a serving zone."""
        if zone_name is None:
            return self.network.model.rtt_s
        if origin_zone == zone_name:
            return self.network.model.rtt_s
        matrix = self.topology.rtt_s(origin_zone, zone_name)
        return matrix if matrix is not None else self.network.model.inter_region_rtt_s

    # -- geo-routing (invoker hooks) -----------------------------------------

    def route(self, dht: Dht, object_id: str, origin_zone: str) -> str:
        """The eligible replica nearest to the origin zone.

        Deterministic: replicas are compared by client-leg RTT, ties
        resolved by the baseline owner order.
        """
        owners = dht.owners(object_id)

        def leg(node: str) -> float:
            zone = self.planner.zone_of_node(node)
            return self.zone_rtt_s(origin_zone, zone.name if zone else None)

        index = min(range(len(owners)), key=lambda i: (leg(owners[i]), i))
        return owners[index]

    def admit(
        self,
        origin_zone: str,
        cls: str,
        jurisdictions: tuple[str, ...],
        dht: Dht,
        object_id: str,
    ) -> float:
        """Gate one invocation: enforce the jurisdiction constraint and
        return the client-leg RTT to the serving replica.

        Raises :class:`~repro.errors.ValidationError` for an unknown
        origin zone and :class:`~repro.errors.JurisdictionError` for a
        cross-jurisdiction access (counted into the class's
        ``jurisdiction`` NFR verdict).
        """
        zone = self.topology.zone(origin_zone)
        stats = self._stats.setdefault(cls, _ClassFederationStats())
        stats.accesses += 1
        if (
            self.config.enforce_jurisdiction
            and jurisdictions
            and not self.topology.matches_jurisdiction(zone.name, jurisdictions)
        ):
            stats.rejections += 1
            if self.events is not None:
                self.events.record(
                    "federation.reject",
                    cls=cls,
                    object=object_id,
                    origin=zone.name,
                    jurisdictions=list(jurisdictions),
                )
            raise JurisdictionError(
                f"origin zone {zone.name!r} is outside class {cls!r}'s "
                f"jurisdictions {list(jurisdictions)}"
            )
        target = self.route(dht, object_id, zone.name)
        target_zone = self.planner.zone_of_node(target)
        if target_zone is None or target_zone.name != zone.name:
            stats.cross_zone += 1
        return self.zone_rtt_s(zone.name, target_zone.name if target_zone else None)

    # -- placement (CRM hooks) -----------------------------------------------

    def placement_nodes(self, nfr: "NonFunctionalRequirements") -> list[str]:
        """Ranked node domain for a class (partition ring + pod hints)."""
        return self.planner.plan(nfr)

    def node_eligible(self, nfr: "NonFunctionalRequirements", node: str) -> bool:
        """Whether a (just-joined) node belongs in the class's domain."""
        return node in set(self.planner.plan(nfr))

    def refresh_placement(self, runtime: "ClassRuntime") -> list[str]:
        """Recompute the class's placement after membership change and
        push it into every service deployment's hint set — the planner
        stays in charge on scale-up and self-heal, not just at deploy."""
        hints = self.planner.plan(runtime.resolved.nfr)
        if hints:
            for service in runtime.services.values():
                service.deployment.set_hints(hints)
        return hints

    # -- migration (operator surface) ----------------------------------------

    def migrate_object(self, cls: str, object_id: str, target_zone: str) -> Process:
        """Live-migrate one object's primary copy into ``target_zone``."""
        runtime = self.crm.runtime(cls)
        zone = self.topology.zone(target_zone)
        jurisdictions = runtime.resolved.nfr.constraint.jurisdictions
        if jurisdictions and not self.topology.matches_jurisdiction(
            zone.name, jurisdictions
        ):
            stats = self._stats.setdefault(cls, _ClassFederationStats())
            stats.rejections += 1
            raise MigrationError(
                f"zone {zone.name!r} is outside class {cls!r}'s "
                f"jurisdictions {list(jurisdictions)}"
            )
        return self.migration.migrate(runtime, object_id, target_zone)

    # -- membership hooks ----------------------------------------------------

    def on_node_failed(self, node: str) -> None:
        for runtime in self.crm.runtimes.values():
            self.refresh_placement(runtime)

    def on_node_joined(self, node: str) -> None:
        for runtime in self.crm.runtimes.values():
            self.refresh_placement(runtime)

    # -- reporting -----------------------------------------------------------

    def jurisdiction_rejections(self, cls: str) -> int:
        stats = self._stats.get(cls)
        return stats.rejections if stats is not None else 0

    def class_stats(self, cls: str) -> dict[str, int]:
        stats = self._stats.get(cls, _ClassFederationStats())
        return {
            "accesses": stats.accesses,
            "cross_zone": stats.cross_zone,
            "rejections": stats.rejections,
        }

    def stats(self) -> dict[str, Any]:
        return {
            "zones": self.topology.describe(),
            "placement": self.config.placement,
            "migrations_total": self.migration.migrations,
            "migrations_failed": self.migration.migrations_failed,
            "accesses_total": sum(s.accesses for s in self._stats.values()),
            "cross_zone_total": sum(s.cross_zone for s in self._stats.values()),
            "rejections_total": sum(s.rejections for s in self._stats.values()),
            "classes": {cls: self.class_stats(cls) for cls in sorted(self._stats)},
        }

    def collect_metrics(self, registry) -> None:
        """Metrics-plane pull hook (mirrors the other planes)."""
        from repro.monitoring.plane import set_counter

        labels = {"plane": "federation"}
        stats = self.stats()
        for key in (
            "migrations_total",
            "migrations_failed",
            "accesses_total",
            "cross_zone_total",
            "rejections_total",
        ):
            set_counter(registry, f"federation.{key}", float(stats[key]), labels)

"""Edge–cloud federation plane (paper §VI, ROADMAP item 3).

Layers a hierarchical zone topology (edge sites → regional DCs → core)
over the orchestrator's flat cluster, scores pod and partition
placement against declared latency/jurisdiction NFRs, migrates live
objects between zones with a version-guarded handoff, and geo-routes
invocations that carry an origin zone.  Everything is off by default
behind :class:`FederationConfig` — a disabled platform is byte-identical
to one built before this package existed.
"""

from repro.federation.placement import PlacementPlanner
from repro.federation.plane import FederationConfig, FederationPlane
from repro.federation.topology import TIERS, Zone, ZoneTopology

__all__ = [
    "FederationConfig",
    "FederationPlane",
    "PlacementPlanner",
    "TIERS",
    "Zone",
    "ZoneTopology",
]

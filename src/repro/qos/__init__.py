"""QoS enforcement plane: NFR-driven admission control, weighted-fair
scheduling, and load shedding.

The paper's NFR interface (§II-C) lets developers *declare* throughput,
latency, and priority; this package is where the platform *enforces*
those declarations on the data path:

1. **Admission** (:mod:`repro.qos.admission`) — per-class token buckets
   sized from declared throughput, plus a platform-wide in-flight
   ceiling.  Excess load is refused with HTTP 429 and a retry-after
   hint before it costs the platform anything.
2. **Weighted-fair scheduling** (:mod:`repro.qos.fairqueue`) — deficit
   round-robin across classes (weights from priority / budget tier)
   replaces the async topic's FIFO drain, with earliest-deadline-first
   ordering inside latency-declared classes.
3. **Load shedding** (:mod:`repro.qos.shedder`) — an overload
   controller watching queue depth and observed p95, browning out the
   lowest tier first.

Everything defaults **off** (:class:`~repro.qos.plane.QosConfig`);
enable it per platform via ``PlatformConfig(qos=QosConfig(enabled=True))``.
"""

from repro.qos.admission import AdmissionController, AdmissionDecision, TokenBucket
from repro.qos.fairqueue import QueuedItem, WeightedFairQueue
from repro.qos.plane import QosConfig, QosPlane
from repro.qos.policy import DEFAULT_QOS_POLICY, QosPolicy
from repro.qos.shedder import OverloadController, QOS_TRACE_ID

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "QueuedItem",
    "WeightedFairQueue",
    "QosConfig",
    "QosPlane",
    "QosPolicy",
    "DEFAULT_QOS_POLICY",
    "OverloadController",
    "QOS_TRACE_ID",
]

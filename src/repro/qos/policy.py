"""Per-class QoS enforcement policies.

The NFR interface (§II-C) lets a class *declare* ``throughput: 100``
and a latency target; §III-B promises the platform — not the developer
— enforces them.  A :class:`QosPolicy` is the enforcement side of that
contract, derived once per class from its resolved NFR block:

* ``rate_rps`` / ``burst`` — the admission token bucket: the declared
  throughput is the rate the platform *guarantees*, so it is also the
  rate beyond which the platform may refuse (429) rather than degrade
  every other class.
* ``weight`` — the class's deficit-round-robin share of the async
  invocation queue.  Declared ``priority`` wins; otherwise the budget
  constraint sets the tier (premium deployments outweigh economy ones).
* ``tier`` — shed order under overload: lowest tier browns out first.
* ``deadline_ms`` — earliest-deadline-first ordering within the class
  when a latency target is declared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crm.costs import budget_tier
from repro.errors import ValidationError
from repro.model.nfr import NonFunctionalRequirements

__all__ = ["QosPolicy", "DEFAULT_QOS_POLICY"]

#: Token-bucket burst credit as a fraction of one second of the rate.
DEFAULT_BURST_WINDOW_S = 0.25

#: Minimum burst credit: even a 1 rps class may send one full request.
MIN_BURST = 1.0


@dataclass(frozen=True)
class QosPolicy:
    """How the QoS plane treats one class's traffic.

    Attributes:
        cls: the class this policy applies to.
        rate_rps: sustained admission rate; ``None`` = unlimited.
        burst: token-bucket capacity (requests admitted above the rate
            in a burst before throttling engages).
        weight: deficit-round-robin weight in the weighted-fair queue
            (items served per DRR round relative to other classes).
        tier: shed precedence under overload; *lower* tiers are shed
            first.
        deadline_ms: per-request deadline for EDF ordering within the
            class; ``None`` = FIFO within the class.
    """

    cls: str
    rate_rps: float | None = None
    burst: float = MIN_BURST
    weight: int = 2
    tier: int = 2
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ValidationError(f"rate_rps must be > 0, got {self.rate_rps}")
        if self.burst < 1:
            raise ValidationError(f"burst must be >= 1, got {self.burst}")
        if self.weight < 1:
            raise ValidationError(f"weight must be >= 1, got {self.weight}")
        if self.tier < 1:
            raise ValidationError(f"tier must be >= 1, got {self.tier}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValidationError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )

    @property
    def unlimited(self) -> bool:
        """True when admission never throttles this class."""
        return self.rate_rps is None

    @classmethod
    def from_nfr(
        cls,
        name: str,
        nfr: NonFunctionalRequirements,
        burst_window_s: float = DEFAULT_BURST_WINDOW_S,
    ) -> "QosPolicy":
        """Derive the enforcement knobs from a class's declared NFRs.

        A declared throughput becomes the admission rate with
        ``burst_window_s`` worth of burst credit on top.  A declared
        priority sets both the fair-share weight and the shed tier;
        without one, the budget constraint's tier stands in (premium
        budgets buy a bigger share and later shedding).
        """
        qos = nfr.qos
        rate = qos.throughput_rps
        burst = MIN_BURST if rate is None else max(MIN_BURST, rate * burst_window_s)
        if qos.priority is not None:
            weight = tier = qos.priority
        else:
            weight = tier = budget_tier(nfr.constraint.budget_usd_per_month)
        return cls(
            cls=name,
            rate_rps=rate,
            burst=burst,
            weight=weight,
            tier=tier,
            deadline_ms=qos.latency_ms,
        )


#: Policy applied to classes that declare nothing (and to requests whose
#: class cannot be determined): unlimited admission, standard tier.
DEFAULT_QOS_POLICY = QosPolicy(cls="")

"""Weighted-fair queue: deficit round-robin across classes, EDF within.

Replaces the FIFO drain of the async invocation topic when the QoS
plane is enabled.  FIFO lets one flooding class capture every worker
(head-of-line blocking); here each class gets its own sub-queue and
workers pull through a deficit-round-robin scheduler, so a class's
share of service is proportional to its :class:`~repro.qos.policy.QosPolicy`
weight no matter how deep a neighbour's backlog grows.

Within a class, items carrying a deadline are served earliest-deadline-
first.  Deadlines are ``arrival + latency target``, so for a single
class EDF degenerates to FIFO — per-object ordering (same object →
same partition → same queue, served in arrival order) is preserved.

The structure is deliberately process-free: selection happens inside
:meth:`get` on demand, making the schedule a pure function of the
push/get sequence — deterministic across runs by construction.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.sim.kernel import Environment, Event, URGENT

__all__ = ["QueuedItem", "WeightedFairQueue"]

DEFAULT_WEIGHT = 2


@dataclass(frozen=True)
class QueuedItem:
    """One entry of the fair queue, returned by :meth:`WeightedFairQueue.get`."""

    cls: str
    value: Any
    enqueued_at: float
    deadline: float | None = None

    def queue_delay(self, now: float) -> float:
        return now - self.enqueued_at


class WeightedFairQueue:
    """Per-class heaps drained by deficit round-robin.

    Each :meth:`get` serves one item.  A visit to a class grants it
    ``weight`` units of deficit; unit-cost items are served until the
    deficit runs out, then the rotation advances — classic DRR with
    per-item granularity so a blocking consumer loop can drive it.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._weights: dict[str, int] = {}
        # Per-class min-heaps of (deadline-or-inf, seq, item).
        self._heaps: dict[str, list[tuple[float, int, QueuedItem]]] = {}
        self._rotation: deque[str] = deque()
        self._in_rotation: set[str] = set()
        self._deficit: dict[str, float] = {}
        self._current: str | None = None
        self._getters: deque[Event] = deque()
        self._seq = 0
        self.pushed = 0
        self.served = 0
        self.shed_count: dict[str, int] = {}

    def set_weight(self, cls: str, weight: int) -> None:
        """Register a class's DRR weight (unknown classes get the default)."""
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        self._weights[cls] = weight

    def weight_of(self, cls: str) -> int:
        return self._weights.get(cls, DEFAULT_WEIGHT)

    def depth(self, cls: str | None = None) -> int:
        """Queued items for one class, or across all classes."""
        if cls is not None:
            return len(self._heaps.get(cls, ()))
        return sum(len(heap) for heap in self._heaps.values())

    def classes(self) -> list[str]:
        """Classes with queued items, sorted."""
        return sorted(cls for cls, heap in self._heaps.items() if heap)

    def push(self, cls: str, value: Any, deadline_s: float | None = None) -> QueuedItem:
        """Enqueue ``value`` under ``cls``; hands it straight to a waiting
        getter when the queue is idle (the only item — fairness is moot)."""
        item = QueuedItem(
            cls=cls,
            value=value,
            enqueued_at=self.env.now,
            deadline=deadline_s,
        )
        self.pushed += 1
        if self._getters:
            event = self._getters.popleft()
            event._ok = True
            event._value = item
            self.served += 1
            self.env._schedule(event, priority=URGENT)
            return item
        self._seq += 1
        key = float("inf") if deadline_s is None else deadline_s
        heap = self._heaps.setdefault(cls, [])
        heapq.heappush(heap, (key, self._seq, item))
        if cls not in self._in_rotation and cls != self._current:
            self._rotation.append(cls)
            self._in_rotation.add(cls)
        return item

    def get(self) -> Event:
        """Return an event firing with the next :class:`QueuedItem` under DRR."""
        event = Event(self.env)
        if self.depth():
            event._ok = True
            event._value = self._pop_next()
            self.served += 1
            self.env._schedule(event, priority=URGENT)
        else:
            self._getters.append(event)
        return event

    def _pop_next(self) -> QueuedItem:
        # Caller guarantees depth() > 0, so the loop terminates: every
        # pass either serves an item or strictly shrinks/advances the
        # rotation toward a non-empty class.
        while True:
            if self._current is None:
                cls = self._rotation.popleft()
                self._in_rotation.discard(cls)
                if not self._heaps.get(cls):
                    self._deficit.pop(cls, None)
                    continue
                self._deficit[cls] = (
                    self._deficit.get(cls, 0.0) + self.weight_of(cls)
                )
                self._current = cls
            cls = self._current
            heap = self._heaps.get(cls)
            if not heap:
                # Shed mid-visit can empty the current class.
                self._deficit.pop(cls, None)
                self._current = None
                continue
            if self._deficit.get(cls, 0.0) >= 1:
                self._deficit[cls] -= 1
                _, _, item = heapq.heappop(heap)
                if not heap:
                    # Drained: unused deficit does not carry over (DRR).
                    self._deficit.pop(cls, None)
                    self._current = None
                return item
            # Deficit spent: back of the rotation, next class's turn.
            self._rotation.append(cls)
            self._in_rotation.add(cls)
            self._current = None

    def shed(self, cls: str, count: int) -> list[QueuedItem]:
        """Remove up to ``count`` items of ``cls``, newest/laxest first.

        The overload controller sheds the work *least* likely to still
        matter: the largest (deadline, seq) keys — the most recently
        enqueued items with the loosest deadlines.  Items already near
        the head keep their position, so survivors' ordering (and thus
        per-object ordering) is untouched.
        """
        heap = self._heaps.get(cls)
        if not heap or count < 1:
            return []
        count = min(count, len(heap))
        victims = heapq.nlargest(count, heap)
        doomed = set(id(entry[2]) for entry in victims)
        survivors = [entry for entry in heap if id(entry[2]) not in doomed]
        heapq.heapify(survivors)
        self._heaps[cls] = survivors
        self.shed_count[cls] = self.shed_count.get(cls, 0) + count
        # Keep victims in shed order: laxest first for reporting.
        return [entry[2] for entry in victims]

    def stats(self) -> dict[str, Any]:
        return {
            "pushed": self.pushed,
            "served": self.served,
            "depth": self.depth(),
            "depth_by_class": {cls: self.depth(cls) for cls in self.classes()},
            "shed_by_class": dict(sorted(self.shed_count.items())),
        }

"""The QoS plane facade: policies, admission, fair queues, shedder.

One object owns the whole enforcement pipeline so the gateway and the
async invoker each wire against a single dependency:

* :meth:`QosPlane.policy_for` resolves (and caches) a class's
  :class:`~repro.qos.policy.QosPolicy` from its deployed NFRs, exactly
  as the CRM derives resilience policies at deploy time.
* :meth:`admit_http` / :meth:`admit_async` run admission control in
  front of the synchronous and asynchronous paths.
* :meth:`new_fair_queue` builds the per-partition weighted-fair queues
  the async invoker drains, pre-seeded with resolved weights.
* :meth:`start_shedder` launches the overload controller over those
  queues.

The plane is **off by default**: ``PlatformConfig().qos.enabled`` is
False and a disabled plane is never even constructed, so the Fig. 3
baseline configurations execute byte-identically with or without this
module imported.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.errors import UnknownClassError, ValidationError
from repro.model.nfr import NonFunctionalRequirements
from repro.monitoring.collector import MonitoringSystem
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Tracer
from repro.qos.admission import AdmissionController, AdmissionDecision
from repro.qos.fairqueue import QueuedItem, WeightedFairQueue
from repro.qos.policy import DEFAULT_QOS_POLICY, QosPolicy
from repro.qos.shedder import OverloadController, QOS_TRACE_ID
from repro.sim.kernel import Environment

__all__ = ["QosConfig", "QosPlane"]

#: Decision reason used when an admission stage is configured off.
BYPASS = "bypass"


class NfrDirectory(Protocol):
    """The slice of the CRM the plane needs: resolved NFRs per class."""

    def resolved(self, cls: str) -> Any:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class QosConfig:
    """Construction-time knobs of the QoS enforcement plane.

    Attributes:
        enabled: master switch; when False the platform never builds a
            plane and both data paths run their original code.
        admission_enabled: token-bucket + ceiling checks at the gateway
            and async submit.
        fair_queue_enabled: weighted-fair (DRR/EDF) drain of the async
            topic instead of FIFO.
        shedder_enabled: the overload controller process.
        burst_window_s: token-bucket burst credit, as seconds of the
            declared rate.
        concurrency_limit: platform-wide in-flight HTTP ceiling
            (``None`` = unbounded).
        shed_queue_depth: total async backlog that trips a shed pass.
        shed_target_fraction: shed down to this fraction of the trip
            depth.
        shed_check_interval_s: overload-controller wake-up period.
    """

    enabled: bool = False
    admission_enabled: bool = True
    fair_queue_enabled: bool = True
    shedder_enabled: bool = True
    burst_window_s: float = 0.25
    concurrency_limit: int | None = None
    shed_queue_depth: int = 256
    shed_target_fraction: float = 0.5
    shed_check_interval_s: float = 0.25

    def __post_init__(self) -> None:
        if self.burst_window_s <= 0:
            raise ValidationError(
                f"burst_window_s must be > 0, got {self.burst_window_s}"
            )
        if self.concurrency_limit is not None and self.concurrency_limit < 1:
            raise ValidationError(
                f"concurrency_limit must be >= 1, got {self.concurrency_limit}"
            )
        if self.shed_queue_depth < 1:
            raise ValidationError(
                f"shed_queue_depth must be >= 1, got {self.shed_queue_depth}"
            )
        if not 0.0 <= self.shed_target_fraction < 1.0:
            raise ValidationError(
                f"shed_target_fraction must be in [0, 1), got "
                f"{self.shed_target_fraction}"
            )
        if self.shed_check_interval_s <= 0:
            raise ValidationError(
                f"shed_check_interval_s must be > 0, got "
                f"{self.shed_check_interval_s}"
            )


class QosPlane:
    """Owns admission, fair queuing, and shedding for one platform."""

    def __init__(
        self,
        env: Environment,
        directory: NfrDirectory,
        monitoring: MonitoringSystem | None = None,
        events: EventLog | None = None,
        tracer: Tracer | None = None,
        config: QosConfig | None = None,
    ) -> None:
        self.env = env
        self.directory = directory
        self.monitoring = monitoring
        self.events = events
        self.tracer = tracer
        self.config = config or QosConfig(enabled=True)
        self.admission = AdmissionController(
            env, concurrency_limit=self.config.concurrency_limit
        )
        self.queues: list[WeightedFairQueue] = []
        self.shedder: OverloadController | None = None
        self._policies: dict[str, QosPolicy] = {}

    # -- policies ----------------------------------------------------------

    def policy_for(self, cls: str | None) -> QosPolicy:
        """The enforcement policy for ``cls`` (cached after first resolve).

        Requests whose class is unknown or not yet deployed get the
        default policy *without* caching it, so a later deployment is
        picked up.
        """
        if not cls:
            return DEFAULT_QOS_POLICY
        policy = self._policies.get(cls)
        if policy is not None:
            return policy
        try:
            nfr: NonFunctionalRequirements = self.directory.resolved(cls).nfr
        except UnknownClassError:
            return dataclasses.replace(DEFAULT_QOS_POLICY, cls=cls)
        policy = QosPolicy.from_nfr(
            cls, nfr, burst_window_s=self.config.burst_window_s
        )
        self._policies[cls] = policy
        self._propagate_weight(policy)
        return policy

    def set_policy(self, policy: QosPolicy) -> None:
        """Operator override of a class's enforcement policy."""
        self._policies[policy.cls] = policy
        self._propagate_weight(policy)

    def _propagate_weight(self, policy: QosPolicy) -> None:
        for queue in self.queues:
            queue.set_weight(policy.cls, policy.weight)

    # -- admission ---------------------------------------------------------

    def admit_http(self, cls: str | None) -> AdmissionDecision:
        """Admission check for one synchronous (gateway) request.

        The caller owns an in-flight slot on admission and must call
        :meth:`release_http` when the request completes.
        """
        if not self.config.admission_enabled:
            self.admission.in_flight += 1
            return AdmissionDecision(admitted=True, reason=BYPASS, cls=cls or "")
        decision = self.admission.check(self.policy_for(cls))
        if not decision.admitted:
            self._emit_reject(decision, path="http")
        return decision

    def release_http(self) -> None:
        self.admission.release()

    def admit_async(self, cls: str | None) -> AdmissionDecision:
        """Admission check for one asynchronous submit (rate only: queued
        work is bounded by the shedder, not the in-flight ceiling)."""
        if not self.config.admission_enabled:
            return AdmissionDecision(admitted=True, reason=BYPASS, cls=cls or "")
        decision = self.admission.check(self.policy_for(cls), use_ceiling=False)
        if not decision.admitted:
            self._emit_reject(decision, path="async")
        return decision

    def _emit_reject(self, decision: AdmissionDecision, path: str) -> None:
        fields = {
            "cls": decision.cls,
            "reason": decision.reason,
            "path": path,
            "retry_after_s": round(decision.retry_after_s, 6),
        }
        if self.events is not None:
            self.events.record("qos.reject", **fields)
        if self.tracer is not None and self.tracer.enabled:
            span = self.tracer.start(QOS_TRACE_ID, "qos.reject", **fields)
            self.tracer.finish(span)

    # -- fair queues -------------------------------------------------------

    def new_fair_queue(self) -> WeightedFairQueue:
        """A fair queue pre-seeded with every resolved class weight."""
        queue = WeightedFairQueue(self.env)
        for policy in self._policies.values():
            queue.set_weight(policy.cls, policy.weight)
        self.queues.append(queue)
        return queue

    def deadline_for(self, cls: str | None) -> float | None:
        """Absolute EDF deadline for a request arriving now (or None)."""
        policy = self.policy_for(cls)
        if policy.deadline_ms is None:
            return None
        return self.env.now + policy.deadline_ms / 1000.0

    def record_queue_delay(self, cls: str, delay_s: float) -> None:
        """Feed the per-class queue-delay histogram (and overall)."""
        if self.monitoring is None:
            return
        registry = self.monitoring.registry
        registry.histogram("qos.queue_delay_s").record(delay_s)
        registry.histogram(f"qos.queue_delay_s.{cls}").record(delay_s)

    # -- shedding ----------------------------------------------------------

    def start_shedder(
        self, on_shed: Callable[[QueuedItem], None] | None = None
    ) -> OverloadController | None:
        """Build and start the overload controller over the fair queues.

        Returns ``None`` when shedding is configured off.
        """
        if not self.config.shedder_enabled:
            return None
        self.shedder = OverloadController(
            self.env,
            self.queues,
            self.policy_for,
            on_shed=on_shed,
            monitoring=self.monitoring,
            events=self.events,
            tracer=self.tracer,
            queue_depth_high=self.config.shed_queue_depth,
            target_fraction=self.config.shed_target_fraction,
            check_interval_s=self.config.shed_check_interval_s,
        )
        self.shedder.start()
        return self.shedder

    def stop(self) -> None:
        if self.shedder is not None:
            self.shedder.stop()

    # -- reporting ---------------------------------------------------------

    def policies(self) -> list[QosPolicy]:
        """Resolved/overridden policies, sorted by class."""
        return [self._policies[cls] for cls in sorted(self._policies)]

    def queue_depth(self) -> int:
        return sum(queue.depth() for queue in self.queues)

    def collect_metrics(self, registry) -> None:
        """Metrics-plane pull hook: admission verdicts per class, fair-
        queue depth/throughput, and sheds — labeled by class and plane."""
        from repro.monitoring.plane import set_counter

        for cls, row in self.admission.stats().items():
            labels = {"class": cls, "plane": "qos"}
            set_counter(registry, "qos.admitted", float(row["admitted"]), labels)
            set_counter(
                registry, "qos.rejected_rate", float(row["rejected_rate"]), labels
            )
            set_counter(
                registry,
                "qos.rejected_concurrency",
                float(row["rejected_concurrency"]),
                labels,
            )
        plane_labels = {"plane": "qos"}
        registry.gauge("qos.in_flight", plane_labels).set(
            float(self.admission.in_flight)
        )
        registry.gauge("qos.queue_depth", plane_labels).set(float(self.queue_depth()))
        set_counter(
            registry, "qos.queue_pushed",
            float(sum(q.pushed for q in self.queues)), plane_labels,
        )
        set_counter(
            registry, "qos.queue_served",
            float(sum(q.served for q in self.queues)), plane_labels,
        )
        shed_by_class: dict[str, int] = {}
        for queue in self.queues:
            for cls, count in queue.shed_count.items():
                shed_by_class[cls] = shed_by_class.get(cls, 0) + count
        for cls, count in shed_by_class.items():
            set_counter(
                registry, "qos.shed", float(count), {"class": cls, "plane": "qos"}
            )
        if self.shedder is not None:
            set_counter(
                registry, "qos.shed_passes",
                float(self.shedder.stats()["passes"]), plane_labels,
            )

    def stats(self) -> dict[str, Any]:
        """The full enforcement picture, JSON-friendly."""
        queue_stats: dict[str, Any] = {
            "pushed": sum(q.pushed for q in self.queues),
            "served": sum(q.served for q in self.queues),
            "depth": self.queue_depth(),
        }
        shed_by_class: dict[str, int] = {}
        for queue in self.queues:
            for cls, count in queue.shed_count.items():
                shed_by_class[cls] = shed_by_class.get(cls, 0) + count
        queue_stats["shed_by_class"] = dict(sorted(shed_by_class.items()))
        out: dict[str, Any] = {
            "policies": [
                {
                    "class": p.cls,
                    "rate_rps": p.rate_rps,
                    "burst": p.burst,
                    "weight": p.weight,
                    "tier": p.tier,
                    "deadline_ms": p.deadline_ms,
                }
                for p in self.policies()
            ],
            "admission": self.admission.stats(),
            "in_flight": self.admission.in_flight,
            "fair_queue": queue_stats,
        }
        if self.shedder is not None:
            out["shedder"] = self.shedder.stats()
        return out

"""Admission control: token buckets and the platform concurrency ceiling.

The first stage of the QoS pipeline.  A request is checked *before* any
platform work happens (before gateway routing overhead is spent, before
the async queue accepts the message), so rejected load costs almost
nothing — the property that makes declared throughput enforceable at
all.  Two mechanisms compose:

* a per-class :class:`TokenBucket` sized from the class's declared
  ``throughput`` NFR (rate) with a short burst credit on top, and
* an optional platform-wide in-flight ceiling that backstops classes
  with no declared rate.

Rejections carry a ``retry_after_s`` hint — the bucket's own estimate
of when one token will next be available — so well-behaved clients can
back off precisely instead of hammering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.qos.policy import QosPolicy
from repro.sim.kernel import Environment

__all__ = ["TokenBucket", "AdmissionDecision", "AdmissionController"]

#: Fallback retry hint when no rate information is available (ceiling
#: rejections): half the default shed-controller check interval.
DEFAULT_RETRY_AFTER_S = 0.1

ADMIT = "admitted"
REJECT_RATE = "rate"
REJECT_CONCURRENCY = "concurrency"


class TokenBucket:
    """A lazily-refilled token bucket on simulated time.

    Tokens accrue continuously at ``rate`` up to ``capacity``; the
    refill is computed on demand from elapsed sim time, so the bucket
    costs nothing while idle and stays exactly deterministic (no
    background process, no rounding drift across runs).
    """

    def __init__(self, env: Environment, rate: float, capacity: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.rate = rate
        self.capacity = capacity
        self._tokens = capacity
        self._last_refill = env.now

    def _refill(self) -> None:
        now = self.env.now
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._last_refill = now

    @property
    def tokens(self) -> float:
        """Current token balance (after refilling to now)."""
        self._refill()
        return self._tokens

    def try_take(self, count: float = 1.0) -> bool:
        """Take ``count`` tokens if available; False leaves the bucket as-is."""
        self._refill()
        if self._tokens >= count:
            self._tokens -= count
            return True
        return False

    def retry_after_s(self, count: float = 1.0) -> float:
        """Time until ``count`` tokens will have accrued (0 if available now)."""
        self._refill()
        deficit = count - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``reason`` is :data:`ADMIT`, :data:`REJECT_RATE` (class token bucket
    empty), or :data:`REJECT_CONCURRENCY` (platform ceiling reached).
    """

    admitted: bool
    reason: str
    cls: str
    retry_after_s: float = 0.0


class AdmissionController:
    """Per-class rate limiting plus a platform-wide in-flight ceiling.

    The controller is policy-driven: classes whose :class:`QosPolicy`
    declares no rate are never rate-limited (only the shared ceiling can
    refuse them).  Buckets are created on first use so only classes that
    actually receive traffic pay for state.
    """

    def __init__(
        self, env: Environment, concurrency_limit: int | None = None
    ) -> None:
        if concurrency_limit is not None and concurrency_limit < 1:
            raise ValueError(
                f"concurrency_limit must be >= 1, got {concurrency_limit}"
            )
        self.env = env
        self.concurrency_limit = concurrency_limit
        self.in_flight = 0
        self._buckets: dict[str, TokenBucket] = {}
        self.admitted: dict[str, int] = {}
        self.rejected_rate: dict[str, int] = {}
        self.rejected_concurrency: dict[str, int] = {}

    def _bucket_for(self, policy: QosPolicy) -> TokenBucket | None:
        if policy.unlimited:
            return None
        bucket = self._buckets.get(policy.cls)
        if bucket is None:
            bucket = TokenBucket(self.env, policy.rate_rps, policy.burst)
            self._buckets[policy.cls] = bucket
        return bucket

    def check(self, policy: QosPolicy, *, use_ceiling: bool = True) -> AdmissionDecision:
        """Admit or reject one request under ``policy``.

        The rate check runs first: a class exceeding its own declared
        throughput is refused on its own merits before it is allowed to
        compete for the shared ceiling.  On admission with
        ``use_ceiling``, the caller owns one in-flight slot and must
        :meth:`release` it when the request completes.
        """
        cls = policy.cls
        bucket = self._bucket_for(policy)
        if bucket is not None and not bucket.try_take():
            self.rejected_rate[cls] = self.rejected_rate.get(cls, 0) + 1
            return AdmissionDecision(
                admitted=False,
                reason=REJECT_RATE,
                cls=cls,
                retry_after_s=bucket.retry_after_s(),
            )
        if (
            use_ceiling
            and self.concurrency_limit is not None
            and self.in_flight >= self.concurrency_limit
        ):
            if bucket is not None:
                # Hand the token back: the request never ran, and the
                # class should not be double-charged for a shared-ceiling
                # refusal.
                bucket._tokens = min(bucket.capacity, bucket._tokens + 1.0)
            self.rejected_concurrency[cls] = (
                self.rejected_concurrency.get(cls, 0) + 1
            )
            retry = (
                bucket.retry_after_s() if bucket is not None else 0.0
            ) or DEFAULT_RETRY_AFTER_S
            return AdmissionDecision(
                admitted=False,
                reason=REJECT_CONCURRENCY,
                cls=cls,
                retry_after_s=retry,
            )
        if use_ceiling:
            self.in_flight += 1
        self.admitted[cls] = self.admitted.get(cls, 0) + 1
        return AdmissionDecision(admitted=True, reason=ADMIT, cls=cls)

    def release(self) -> None:
        """Return an in-flight slot taken by an admitted ceiling check."""
        if self.in_flight > 0:
            self.in_flight -= 1

    def tokens(self, cls: str) -> float | None:
        """Current bucket balance for ``cls`` (None = no bucket yet)."""
        bucket = self._buckets.get(cls)
        return None if bucket is None else bucket.tokens

    def stats(self) -> dict[str, dict[str, int]]:
        """Admission counters by class (sorted, JSON-friendly)."""
        classes = sorted(
            set(self.admitted)
            | set(self.rejected_rate)
            | set(self.rejected_concurrency)
        )
        return {
            cls: {
                "admitted": self.admitted.get(cls, 0),
                "rejected_rate": self.rejected_rate.get(cls, 0),
                "rejected_concurrency": self.rejected_concurrency.get(cls, 0),
            }
            for cls in classes
        }

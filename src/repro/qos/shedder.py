"""Overload controller: brownout by shedding lowest-tier queued work.

The last line of defence in the QoS pipeline.  Admission bounds what
each class may *offer*; the fair queue bounds how unfairly backlog can
be *served*; but a platform can still drown when aggregate admitted
load exceeds aggregate capacity (a chaos slow-pod window, a cold-start
storm).  The controller watches two signals:

* **queue depth** — total items queued across the async fair queues
  above a high watermark, and
* **latency brownout** — a class that declared a latency target whose
  observed windowed p95 is running above it.

Either trips a shed pass: queued work is discarded from the lowest
tier upward (never the highest tier present — somebody must keep their
SLO) until depth is back under the target fraction of the watermark.
Shed items are failed back to their callers as
:class:`~repro.errors.OverloadError`, never silently dropped.

All decisions are functions of queue state and deterministic metrics at
fixed check intervals — no randomness — so shed counts are reproducible
run-to-run under a seeded chaos plan.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.monitoring.collector import MonitoringSystem
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Tracer
from repro.qos.fairqueue import QueuedItem, WeightedFairQueue
from repro.qos.policy import QosPolicy
from repro.sim.kernel import Environment

__all__ = ["OverloadController", "QOS_TRACE_ID"]

#: Shed/admission spans share one synthetic trace (cf. ``"resilience"``):
#: they are platform defence actions, not attributable to one request.
QOS_TRACE_ID = "qos"

#: Windowed percentile the brownout trigger watches.
BROWNOUT_PCT = 95

#: Brownout only fires once this many samples are in the window —
#: a p95 of three requests is noise, not a signal.
MIN_BROWNOUT_SAMPLES = 20


class OverloadController:
    """Periodically sheds queued work when the platform is drowning.

    Args:
        env: simulation environment.
        queues: the async invoker's fair queues (one per partition).
        policy_for: resolver from class name to its :class:`QosPolicy`
            (supplies the shed tier).
        on_shed: callback invoked for every shed :class:`QueuedItem`
            (the invoker fails the item's completion event here).
        monitoring: source of observed per-class p95 for the brownout
            trigger; ``None`` disables that trigger.
        queue_depth_high: total queued items that trip a shed pass.
        target_fraction: shed down to ``queue_depth_high * fraction``.
        check_interval_s: controller wake-up period.
    """

    def __init__(
        self,
        env: Environment,
        queues: list[WeightedFairQueue],
        policy_for: Callable[[str], QosPolicy],
        on_shed: Callable[[QueuedItem], None] | None = None,
        monitoring: MonitoringSystem | None = None,
        events: EventLog | None = None,
        tracer: Tracer | None = None,
        queue_depth_high: int = 256,
        target_fraction: float = 0.5,
        check_interval_s: float = 0.25,
    ) -> None:
        if queue_depth_high < 1:
            raise ValueError(
                f"queue_depth_high must be >= 1, got {queue_depth_high}"
            )
        if not 0.0 <= target_fraction < 1.0:
            raise ValueError(
                f"target_fraction must be in [0, 1), got {target_fraction}"
            )
        if check_interval_s <= 0:
            raise ValueError(
                f"check_interval_s must be > 0, got {check_interval_s}"
            )
        self.env = env
        self.queues = queues
        self.policy_for = policy_for
        self.on_shed = on_shed
        self.monitoring = monitoring
        self.events = events
        self.tracer = tracer
        self.queue_depth_high = queue_depth_high
        self.target_depth = int(queue_depth_high * target_fraction)
        self.check_interval_s = check_interval_s
        self.shed_total = 0
        self.shed_by_class: dict[str, int] = {}
        self.passes = 0
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Launch the periodic check process (idempotent)."""
        if not self._running:
            self._running = True
            self.env.process(self._run())

    def stop(self) -> None:
        self._running = False

    def _run(self):
        while self._running:
            yield self.env.timeout(self.check_interval_s)
            if self._running:
                self.check()

    # -- triggers ----------------------------------------------------------

    def total_depth(self) -> int:
        return sum(queue.depth() for queue in self.queues)

    def _brownout_classes(self) -> list[str]:
        """Classes with a declared latency target currently missing it."""
        if self.monitoring is None:
            return []
        missing = []
        for cls in self.monitoring.observed_classes:
            policy = self.policy_for(cls)
            if policy.deadline_ms is None:
                continue
            obs = self.monitoring.for_class(cls)
            if len(obs.window) < MIN_BROWNOUT_SAMPLES:
                continue
            if obs.latency_pct_ms(BROWNOUT_PCT) > policy.deadline_ms:
                missing.append(cls)
        return missing

    # -- shedding ----------------------------------------------------------

    def check(self) -> int:
        """One control decision; returns how many items were shed."""
        depth = self.total_depth()
        brownout = self._brownout_classes()
        if depth <= self.queue_depth_high and not brownout:
            return 0
        if depth <= self.target_depth:
            # Brownout with an already-short queue: nothing queued to
            # shed would relieve it; executing work is the bottleneck.
            return 0
        return self._shed_pass(depth, brownout)

    def _shed_pass(self, depth: int, brownout: list[str]) -> int:
        self.passes += 1
        queued: set[str] = set()
        for queue in self.queues:
            queued.update(queue.classes())
        if not queued:
            return 0
        # Lowest tier first, name as deterministic tie-break; the top
        # tier present is protected so shedding can't starve the very
        # class whose SLO triggered the brownout.
        ordered = sorted(queued, key=lambda c: (self.policy_for(c).tier, c))
        protected_tier = self.policy_for(ordered[-1]).tier
        shed_here = 0
        for cls in ordered:
            if depth - shed_here <= self.target_depth:
                break
            if self.policy_for(cls).tier >= protected_tier and len(
                {self.policy_for(c).tier for c in queued}
            ) > 1:
                break
            need = depth - shed_here - self.target_depth
            shed_cls = 0
            for queue in self.queues:
                if need - shed_cls <= 0:
                    break
                for item in queue.shed(cls, need - shed_cls):
                    shed_cls += 1
                    if self.on_shed is not None:
                        self.on_shed(item)
            if shed_cls:
                shed_here += shed_cls
                self.shed_by_class[cls] = self.shed_by_class.get(cls, 0) + shed_cls
                self._emit_shed(cls, shed_cls, depth, brownout)
        self.shed_total += shed_here
        return shed_here

    def _emit_shed(
        self, cls: str, count: int, depth: int, brownout: list[str]
    ) -> None:
        fields = {
            "cls": cls,
            "count": count,
            "depth": depth,
            "tier": self.policy_for(cls).tier,
        }
        if brownout:
            fields["brownout"] = ",".join(sorted(brownout))
        if self.events is not None:
            self.events.record("qos.shed", **fields)
        if self.tracer is not None and self.tracer.enabled:
            span = self.tracer.start(QOS_TRACE_ID, "qos.shed", **fields)
            self.tracer.finish(span)

    def stats(self) -> dict[str, Any]:
        return {
            "passes": self.passes,
            "shed_total": self.shed_total,
            "shed_by_class": dict(sorted(self.shed_by_class.items())),
            "queue_depth": self.total_depth(),
            "queue_depth_high": self.queue_depth_high,
        }

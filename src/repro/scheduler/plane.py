"""The scheduler plane: an explicit worker-pool control plane.

This is the scheduler half of the split the tutorial paper describes —
the platform component that owns *run state* (which invocation lives
where) and *worker state* (who is registered, healthy, draining, dead),
so that developers never see deployment, scaling, or failure handling.
Like every plane it is **off by default** (``SchedulerConfig.enabled``);
when off, the platform byte-identically reproduces the baseline
partitioned-topic dispatch path.

The plane is the **sim transport** of the worker protocol: the
dispatch/ledger/fencing state machine lives in
:class:`~repro.scheduler.transport.core.DispatchCore` (shared with the
real asyncio transport in :mod:`repro.scheduler.transport.aio`), and
this class supplies the sim-kernel half — worker pods, heartbeat
monitoring as a sim process, chaos seams, and platform hooks.

When enabled:

* the plane registers ``pool_size`` workers at startup, each bound to a
  pod placed through the orchestrator's pod scheduler (so node failures
  reach workers through the same seam deployments use);
* :class:`~repro.invoker.queue.AsyncInvoker` routes submissions here
  instead of to the partitioned topic — the plane accepts each request
  into its :class:`~repro.scheduler.ledger.InvocationLedger` and
  dispatches it to exactly one READY worker chosen by rendezvous
  hashing over the object id (stable per-object affinity, minimal
  movement when the pool changes);
* a monitor process watches heartbeats, degrades silent workers (new
  dispatch stops, queued work is rebound), and declares persistently
  silent workers dead — fencing their epoch and requeueing everything
  they held, so *an accepted invocation is never lost and never
  completed twice* no matter how workers fail;
* drain performs a graceful handoff: queued items move to peers, the
  in-flight invocation finishes normally, then the worker retires and
  (optionally) a replacement registers.

Every lifecycle moment is recorded as a ``scheduler.*`` platform event
(and an instantaneous span under the ``"scheduler"`` trace), which is
what the conformance harness replays and asserts over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.errors import SchedulingError, ValidationError
from repro.invoker.request import InvocationRequest, InvocationResult
from repro.orchestrator.pod import PodSpec
from repro.orchestrator.resources import ResourceSpec
from repro.scheduler.state import WorkerState
from repro.scheduler.transport.core import DispatchCore
from repro.scheduler.worker import DispatchItem, SimWorker
from repro.sim.kernel import Environment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.invoker.engine import InvocationEngine
    from repro.monitoring.events import EventLog
    from repro.monitoring.tracing import Tracer
    from repro.orchestrator.cluster import Cluster
    from repro.orchestrator.scheduler import Scheduler
    from repro.scheduler.ledger import InvocationLedger

__all__ = ["SchedulerConfig", "SchedulerPlane"]

#: Scheduler lifecycle spans share one synthetic trace (like ``"chaos"``).
SCHEDULER_TRACE_ID = "scheduler"

#: Image name worker pods are stamped from.
WORKER_IMAGE = "oaas/worker-runtime"

#: The transports the scheduler protocol can be spoken over.
TRANSPORTS = ("sim", "asyncio")


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs for the worker-pool control plane (disabled by default)."""

    enabled: bool = False
    #: ``"sim"`` runs the plane on the simulation kernel (default);
    #: ``"asyncio"`` leaves the sim dispatch path at baseline and serves
    #: the same protocol over real event-loop connections via
    #: :meth:`Oparaca.serve_http` / :class:`AsyncSchedulerServer`.
    transport: str = "sim"
    pool_size: int = 4
    heartbeat_interval_s: float = 0.5
    degraded_after_misses: int = 2
    dead_after_misses: int = 5
    register_delay_s: float = 0.02
    install_delay_s: float = 0.05
    dispatch_overhead_s: float = 0.0
    rebind_on_degraded: bool = True
    replace_dead_workers: bool = True
    worker_cpu_millis: int = 100
    worker_memory_mb: int = 128

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise ValidationError(
                f"scheduler transport must be one of {TRANSPORTS}, "
                f"got {self.transport!r}"
            )
        if self.pool_size < 1:
            raise ValidationError("scheduler pool_size must be >= 1")
        if self.heartbeat_interval_s <= 0:
            raise ValidationError("heartbeat_interval_s must be positive")
        if self.degraded_after_misses < 1:
            raise ValidationError("degraded_after_misses must be >= 1")
        if self.dead_after_misses <= self.degraded_after_misses:
            raise ValidationError(
                "dead_after_misses must exceed degraded_after_misses"
            )
        for field_name in ("register_delay_s", "install_delay_s", "dispatch_overhead_s"):
            if getattr(self, field_name) < 0:
                raise ValidationError(f"{field_name} must be >= 0")
        if self.worker_cpu_millis < 1 or self.worker_memory_mb < 1:
            raise ValidationError("worker pod resources must be positive")


class SchedulerPlane:
    """Owns worker registrations, per-worker queues, and the run ledger."""

    def __init__(
        self,
        env: Environment,
        engine: "InvocationEngine",
        cluster: "Cluster",
        pod_scheduler: "Scheduler",
        *,
        events: "EventLog | None" = None,
        tracer: "Tracer | None" = None,
        config: SchedulerConfig | None = None,
    ) -> None:
        self.env = env
        self.engine = engine
        self.cluster = cluster
        self.pod_scheduler = pod_scheduler
        self.events = events
        self.tracer = tracer
        self.config = config or SchedulerConfig(enabled=True)
        self.core = DispatchCore(clock=lambda: self.env.now, emit=self._emit)
        self.heartbeats = 0
        self._next_worker = 0
        self._running = False

    # -- shared-core views ---------------------------------------------------

    @property
    def ledger(self) -> "InvocationLedger":
        return self.core.ledger

    @property
    def workers(self) -> dict[str, SimWorker]:
        return self.core.workers  # type: ignore[return-value]

    @property
    def all_workers(self) -> list[SimWorker]:
        return self.core.registrations  # type: ignore[return-value]

    @property
    def dispatched(self) -> int:
        return self.core.dispatched

    @property
    def delivered(self) -> int:
        return self.core.delivered

    @property
    def parked_total(self) -> int:
        return self.core.parked_total

    @property
    def on_complete(
        self,
    ) -> Callable[[InvocationRequest, InvocationResult], None] | None:
        return self.core.on_complete

    @on_complete.setter
    def on_complete(
        self, callback: Callable[[InvocationRequest, InvocationResult], None] | None
    ) -> None:
        self.core.on_complete = callback

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Register the initial pool and start the heartbeat monitor."""
        if self._running:
            return
        self._running = True
        for _ in range(self.config.pool_size):
            self.register_worker()
        self.env.process(self._monitor())

    def stop(self) -> dict[str, int]:
        """Stop the plane: report what was still pending (with the parked
        subset broken out, mirroring ``ConsumerGroup.stop()``) and halt
        every live worker's heartbeat/work-loop processes so nothing of
        the plane stays scheduled on the kernel."""
        report = self.core.stop_report()
        if not self._running:
            return report
        self._running = False
        for name in sorted(self.workers):
            worker = self.workers[name]
            if not worker.machine.is_dead:
                worker.halt()
        return report

    def deployed_classes(self) -> list[str]:
        return self.core.deployed_classes()

    def register_worker(self, name: str | None = None) -> SimWorker:
        """Admit one worker: place its pod, start its processes."""
        if name is None:
            # Skip names taken by explicit registrations (rejoins under a
            # chosen name) so auto-naming never collides.
            while True:
                name = f"worker-{self._next_worker}"
                self._next_worker += 1
                current = self.workers.get(name)
                if current is None or current.machine.is_dead:
                    break
        current = self.workers.get(name)
        if current is not None and not current.machine.is_dead:
            raise SchedulingError(f"worker {name!r} is already registered")
        spec = PodSpec(
            image=WORKER_IMAGE,
            resources=ResourceSpec(
                self.config.worker_cpu_millis, self.config.worker_memory_mb
            ),
            concurrency=1,
            labels={"app": "oaas-worker", "worker": name},
        )
        pod = self.pod_scheduler.schedule(spec)
        worker = SimWorker(self.env, name, self, pod=pod)
        self.core.add_worker(worker)
        self._emit("scheduler.register", worker=name, node=worker.node)
        return worker

    # -- dispatch path ------------------------------------------------------

    def submit(self, request: InvocationRequest) -> None:
        """Accept one invocation into the ledger and route it."""
        self.core.submit(request)

    def report_completion(
        self, worker: SimWorker, item: DispatchItem, result: InvocationResult
    ) -> None:
        """A worker finished an item.  First completion wins; duplicates
        (a fenced attempt racing its redispatched twin) are suppressed."""
        self.core.complete(worker.name, item.request, result)

    # -- worker callbacks ---------------------------------------------------

    def on_worker_ready(self, worker: SimWorker) -> None:
        worker.machine.transition(WorkerState.READY, self.env.now, "activated")
        worker.last_beat = self.env.now
        self._emit("scheduler.ready", worker=worker.name, node=worker.node)
        self.core.flush_unassigned()

    def on_worker_installed(self, worker: SimWorker, cls: str) -> None:
        self._emit("scheduler.install", worker=worker.name, cls=cls)
        if worker.machine.is_dispatchable:
            self.core.flush_unassigned()

    def on_worker_drained(self, worker: SimWorker) -> None:
        """The work loop emptied out after a drain: retire the worker."""
        self._retire(worker, "drained")

    def heartbeat(self, worker: SimWorker) -> None:
        if self.workers.get(worker.name) is not worker:
            return  # a fenced registration's stale beat
        worker.last_beat = self.env.now
        self.heartbeats += 1
        if worker.machine.state is WorkerState.DEGRADED:
            worker.machine.transition(
                WorkerState.READY, self.env.now, "heartbeat-resumed"
            )
            self._emit("scheduler.recovered", worker=worker.name)
            self.core.flush_unassigned()

    # -- health monitoring --------------------------------------------------

    def _monitor(self) -> Generator:
        interval = self.config.heartbeat_interval_s
        while self._running:
            yield self.env.timeout(interval)
            if not self._running:
                return
            now = self.env.now
            for name in sorted(self.workers):
                worker = self.workers[name]
                if worker.machine.state not in (
                    WorkerState.READY,
                    WorkerState.DEGRADED,
                ):
                    continue
                silent_for = now - worker.last_beat
                if silent_for >= self.config.dead_after_misses * interval - 1e-9:
                    self.crash_worker(name, reason="heartbeat-timeout")
                elif (
                    worker.machine.state is WorkerState.READY
                    and silent_for
                    >= self.config.degraded_after_misses * interval - 1e-9
                ):
                    self._degrade(worker)

    def _degrade(self, worker: SimWorker) -> None:
        worker.machine.transition(
            WorkerState.DEGRADED, self.env.now, "missed-heartbeats"
        )
        self._emit("scheduler.degraded", worker=worker.name)
        if self.config.rebind_on_degraded:
            self._rebind_queued(worker, "degraded")

    def _rebind_queued(self, worker: SimWorker, reason: str) -> None:
        """Move everything *queued* (not in-flight) off ``worker``."""
        moved = self.core.reroute(worker.name, worker.take_queue())
        if moved:
            self._emit(
                "scheduler.rebind", worker=worker.name, moved=moved, reason=reason
            )

    # -- drain / crash / node failure ---------------------------------------

    def drain_worker(self, name: str) -> SimWorker:
        """Gracefully retire ``name``: hand queued work to peers, let the
        in-flight invocation finish, then terminate the pod."""
        worker = self.workers.get(name)
        if worker is None:
            raise SchedulingError(f"unknown worker {name!r}")
        if worker.machine.state is WorkerState.DRAINING:
            return worker
        if not worker.machine.can_transition(WorkerState.DRAINING):
            raise SchedulingError(
                f"worker {name!r} cannot drain from {worker.state.value}"
            )
        worker.machine.transition(WorkerState.DRAINING, self.env.now, "drain")
        self._emit("scheduler.draining", worker=name)
        self._rebind_queued(worker, "drain-handoff")
        worker.drain()
        return worker

    def crash_worker(self, name: str, reason: str = "crash") -> bool:
        """Declare ``name`` dead *now* (fault injection or heartbeat
        timeout): fence its epoch and requeue everything it held."""
        worker = self.workers.get(name)
        if worker is None or worker.machine.is_dead:
            return False
        dropped = worker.crash()
        worker.machine.transition(WorkerState.DEAD, self.env.now, reason)
        self._emit(
            "scheduler.dead", worker=name, reason=reason, requeued=len(dropped)
        )
        self._teardown_pod(worker)
        self.core.reroute(name, dropped)
        self._maybe_replace()
        return True

    def on_node_failed(self, node: str) -> None:
        """Platform hook: every worker on a failed node dies with it."""
        for name in sorted(self.workers):
            worker = self.workers[name]
            if worker.node == node and not worker.machine.is_dead:
                self.crash_worker(name, reason="node-failure")

    def _retire(self, worker: SimWorker, reason: str) -> None:
        worker.machine.transition(WorkerState.DEAD, self.env.now, reason)
        self._emit("scheduler.dead", worker=worker.name, reason=reason, requeued=0)
        self._teardown_pod(worker)
        self._maybe_replace()

    def _teardown_pod(self, worker: SimWorker) -> None:
        if worker.pod is None:
            return
        if self.cluster.pod(worker.pod.name) is worker.pod:
            self.cluster.terminate_pod(worker.pod.name)

    def _maybe_replace(self) -> None:
        if not self.config.replace_dead_workers or not self._running:
            return
        live = sum(
            1 for worker in self.workers.values() if not worker.machine.is_dead
        )
        while live < self.config.pool_size:
            self.register_worker()
            live += 1

    # -- chaos seams --------------------------------------------------------

    def suppress_heartbeats(self, name: str, duration_s: float) -> bool:
        worker = self.workers.get(name)
        if worker is None or worker.machine.is_dead:
            return False
        worker.suppress_heartbeats(duration_s)
        return True

    def resume_heartbeats(self, name: str) -> bool:
        worker = self.workers.get(name)
        if worker is None or worker.machine.is_dead:
            return False
        worker.resume_heartbeats()
        return True

    def set_worker_slow(self, name: str, factor: float) -> bool:
        worker = self.workers.get(name)
        if worker is None or worker.machine.is_dead:
            return False
        worker.slow_factor = factor
        return True

    def clear_worker_slow(self, name: str) -> bool:
        # Same guard as set_worker_slow/resume_heartbeats: a chaos revert
        # on a dead worker must not report success.
        worker = self.workers.get(name)
        if worker is None or worker.machine.is_dead:
            return False
        worker.slow_factor = 1.0
        return True

    # -- platform hooks -----------------------------------------------------

    def on_deploy(self, cls: str) -> None:
        """A class runtime was (re)deployed: install it everywhere."""
        self.core.note_class(cls)
        for _, worker in sorted(self.workers.items()):
            if not worker.machine.is_dead:
                worker.install(cls)

    @property
    def outstanding(self) -> int:
        return self.core.outstanding

    @property
    def live_workers(self) -> int:
        return self.core.live_workers

    def describe_workers(self) -> list[dict[str, Any]]:
        return [self.workers[name].describe() for name in sorted(self.workers)]

    def stats(self) -> dict[str, Any]:
        audit = self.ledger.audit()
        return {
            "workers": self.describe_workers(),
            "ledger": audit,
            "dispatched": self.dispatched,
            "delivered": self.delivered,
            "heartbeats": self.heartbeats,
            "parked": self.core.parked,
            "parked_total": self.parked_total,
            "registrations": len(self.all_workers),
            "live_workers": self.live_workers,
        }

    def collect_metrics(self, registry) -> None:
        """Metrics-plane pull hook: per-worker dispatch/completion
        counters and queue depths, labeled by worker, plus plane totals."""
        from repro.monitoring.plane import set_counter

        for name in sorted(self.workers):
            worker = self.workers[name]
            labels = {"worker": name, "plane": "scheduler"}
            set_counter(
                registry, "scheduler.dispatched", float(worker.dispatched_count), labels
            )
            set_counter(
                registry, "scheduler.completed", float(worker.completed_count), labels
            )
            set_counter(
                registry, "scheduler.heartbeats", float(worker.heartbeats_sent), labels
            )
            registry.gauge("scheduler.queue_depth", labels).set(
                float(len(worker.queue))
            )
            registry.gauge("scheduler.worker_phase", labels).set(
                float(worker.machine.phase)
            )
        totals = {"plane": "scheduler"}
        audit = self.ledger.audit()
        set_counter(registry, "scheduler.accepted", float(audit["accepted"]), totals)
        set_counter(registry, "scheduler.requeues", float(audit["requeues"]), totals)
        set_counter(
            registry, "scheduler.suppressed", float(audit["suppressed"]), totals
        )
        registry.gauge("scheduler.outstanding", totals).set(
            float(audit["outstanding"])
        )
        registry.gauge("scheduler.parked", totals).set(float(self.core.parked))

    # -- internals ----------------------------------------------------------

    def _emit(self, type: str, **fields: Any) -> None:
        if self.events is not None:
            self.events.record(type, **fields)
        if self.tracer is not None and self.tracer.enabled:
            span = self.tracer.start(SCHEDULER_TRACE_ID, type, **fields)
            self.tracer.finish(span)

"""The scheduler plane: an explicit worker-pool control plane.

This is the scheduler half of the split the tutorial paper describes —
the platform component that owns *run state* (which invocation lives
where) and *worker state* (who is registered, healthy, draining, dead),
so that developers never see deployment, scaling, or failure handling.
Like every plane it is **off by default** (``SchedulerConfig.enabled``);
when off, the platform byte-identically reproduces the baseline
partitioned-topic dispatch path.

When enabled:

* the plane registers ``pool_size`` workers at startup, each bound to a
  pod placed through the orchestrator's pod scheduler (so node failures
  reach workers through the same seam deployments use);
* :class:`~repro.invoker.queue.AsyncInvoker` routes submissions here
  instead of to the partitioned topic — the plane accepts each request
  into its :class:`~repro.scheduler.ledger.InvocationLedger` and
  dispatches it to exactly one READY worker chosen by rendezvous
  hashing over the object id (stable per-object affinity, minimal
  movement when the pool changes);
* a monitor process watches heartbeats, degrades silent workers (new
  dispatch stops, queued work is rebound), and declares persistently
  silent workers dead — fencing their epoch and requeueing everything
  they held, so *an accepted invocation is never lost and never
  completed twice* no matter how workers fail;
* drain performs a graceful handoff: queued items move to peers, the
  in-flight invocation finishes normally, then the worker retires and
  (optionally) a replacement registers.

Every lifecycle moment is recorded as a ``scheduler.*`` platform event
(and an instantaneous span under the ``"scheduler"`` trace), which is
what the conformance harness replays and asserts over.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.errors import SchedulingError, ValidationError
from repro.invoker.engine import split_object_id
from repro.invoker.request import InvocationRequest, InvocationResult
from repro.orchestrator.pod import PodSpec
from repro.orchestrator.resources import ResourceSpec
from repro.scheduler.ledger import InvocationLedger
from repro.scheduler.state import WorkerState
from repro.scheduler.worker import DispatchItem, SimWorker
from repro.sim.kernel import Environment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.invoker.engine import InvocationEngine
    from repro.monitoring.events import EventLog
    from repro.monitoring.tracing import Tracer
    from repro.orchestrator.cluster import Cluster
    from repro.orchestrator.scheduler import Scheduler

__all__ = ["SchedulerConfig", "SchedulerPlane"]

#: Scheduler lifecycle spans share one synthetic trace (like ``"chaos"``).
SCHEDULER_TRACE_ID = "scheduler"

#: Image name worker pods are stamped from.
WORKER_IMAGE = "oaas/worker-runtime"


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs for the worker-pool control plane (disabled by default)."""

    enabled: bool = False
    pool_size: int = 4
    heartbeat_interval_s: float = 0.5
    degraded_after_misses: int = 2
    dead_after_misses: int = 5
    register_delay_s: float = 0.02
    install_delay_s: float = 0.05
    dispatch_overhead_s: float = 0.0
    rebind_on_degraded: bool = True
    replace_dead_workers: bool = True
    worker_cpu_millis: int = 100
    worker_memory_mb: int = 128

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ValidationError("scheduler pool_size must be >= 1")
        if self.heartbeat_interval_s <= 0:
            raise ValidationError("heartbeat_interval_s must be positive")
        if self.degraded_after_misses < 1:
            raise ValidationError("degraded_after_misses must be >= 1")
        if self.dead_after_misses <= self.degraded_after_misses:
            raise ValidationError(
                "dead_after_misses must exceed degraded_after_misses"
            )
        for field_name in ("register_delay_s", "install_delay_s", "dispatch_overhead_s"):
            if getattr(self, field_name) < 0:
                raise ValidationError(f"{field_name} must be >= 0")
        if self.worker_cpu_millis < 1 or self.worker_memory_mb < 1:
            raise ValidationError("worker pod resources must be positive")


def _rendezvous_score(object_id: str, worker: str) -> int:
    digest = hashlib.md5(f"{object_id}|{worker}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class SchedulerPlane:
    """Owns worker registrations, per-worker queues, and the run ledger."""

    def __init__(
        self,
        env: Environment,
        engine: "InvocationEngine",
        cluster: "Cluster",
        pod_scheduler: "Scheduler",
        *,
        events: "EventLog | None" = None,
        tracer: "Tracer | None" = None,
        config: SchedulerConfig | None = None,
    ) -> None:
        self.env = env
        self.engine = engine
        self.cluster = cluster
        self.pod_scheduler = pod_scheduler
        self.events = events
        self.tracer = tracer
        self.config = config or SchedulerConfig(enabled=True)
        self.ledger = InvocationLedger()
        #: name -> *current* registration under that name (latest epoch).
        self.workers: dict[str, SimWorker] = {}
        #: every registration ever made, including retired ones — the
        #: conformance suite checks monotonicity over all of them.
        self.all_workers: list[SimWorker] = []
        self.on_complete: Callable[[InvocationRequest, InvocationResult], None] | None = None
        self.dispatched = 0
        self.delivered = 0
        self.heartbeats = 0
        self.parked_total = 0
        self._unassigned: deque[InvocationRequest] = deque()
        self._classes: list[str] = []
        self._next_worker = 0
        self._running = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Register the initial pool and start the heartbeat monitor."""
        if self._running:
            return
        self._running = True
        for _ in range(self.config.pool_size):
            self.register_worker()
        self.env.process(self._monitor())

    def stop(self) -> dict[str, int]:
        self._running = False
        return {"pending": len(self.ledger.outstanding())}

    def deployed_classes(self) -> list[str]:
        return list(self._classes)

    def register_worker(self, name: str | None = None) -> SimWorker:
        """Admit one worker: place its pod, start its processes."""
        if name is None:
            # Skip names taken by explicit registrations (rejoins under a
            # chosen name) so auto-naming never collides.
            while True:
                name = f"worker-{self._next_worker}"
                self._next_worker += 1
                current = self.workers.get(name)
                if current is None or current.machine.is_dead:
                    break
        current = self.workers.get(name)
        if current is not None and not current.machine.is_dead:
            raise SchedulingError(f"worker {name!r} is already registered")
        spec = PodSpec(
            image=WORKER_IMAGE,
            resources=ResourceSpec(
                self.config.worker_cpu_millis, self.config.worker_memory_mb
            ),
            concurrency=1,
            labels={"app": "oaas-worker", "worker": name},
        )
        pod = self.pod_scheduler.schedule(spec)
        worker = SimWorker(self.env, name, self, pod=pod)
        self.workers[name] = worker
        self.all_workers.append(worker)
        self._emit("scheduler.register", worker=name, node=worker.node)
        return worker

    # -- dispatch path ------------------------------------------------------

    def submit(self, request: InvocationRequest) -> None:
        """Accept one invocation into the ledger and route it."""
        self.ledger.accept(request, self.env.now)
        self._route(request)

    def _route(self, request: InvocationRequest) -> None:
        worker = self._pick(request)
        if worker is None:
            # No eligible worker right now: park it.  Parked requests are
            # flushed whenever a worker becomes READY, finishes an
            # install, or recovers — never dropped.
            self._unassigned.append(request)
            self.parked_total += 1
            return
        self._dispatch(worker, request)

    def _pick(self, request: InvocationRequest) -> SimWorker | None:
        cls = request.cls or split_object_id(request.object_id)[0]
        known = cls in self._classes
        eligible = [
            worker
            for _, worker in sorted(self.workers.items())
            if worker.machine.is_dispatchable
            and (not known or cls in worker.installed)
        ]
        if not eligible:
            return None
        return max(
            eligible, key=lambda w: _rendezvous_score(request.object_id, w.name)
        )

    def _dispatch(self, worker: SimWorker, request: InvocationRequest) -> None:
        entry = self.ledger.dispatch(request.request_id, worker.name, worker.epoch)
        item = DispatchItem(
            request=request, epoch=worker.epoch, dispatched_at=self.env.now
        )
        worker.push(item)
        self.dispatched += 1
        # Events carry the ledger seq, not the raw request id: request
        # ids are process-global, so seqs keep logs replay-identical.
        self._emit(
            "scheduler.dispatch",
            worker=worker.name,
            request=entry.seq,
            object=request.object_id,
            fn=request.fn_name,
        )

    def _flush_unassigned(self) -> None:
        if not self._unassigned:
            return
        parked = list(self._unassigned)
        self._unassigned.clear()
        for request in parked:
            self._route(request)

    def report_completion(
        self, worker: SimWorker, item: DispatchItem, result: InvocationResult
    ) -> None:
        """A worker finished an item.  First completion wins; duplicates
        (a fenced attempt racing its redispatched twin) are suppressed."""
        entry = self.ledger.entry(item.request.request_id)
        first = self.ledger.complete(item.request.request_id, result.ok, self.env.now)
        if not first:
            self._emit(
                "scheduler.suppressed",
                worker=worker.name,
                request=entry.seq if entry is not None else -1,
            )
            return
        self.delivered += 1
        self._emit(
            "scheduler.complete",
            worker=worker.name,
            request=entry.seq if entry is not None else -1,
            ok=result.ok,
        )
        if self.on_complete is not None:
            self.on_complete(item.request, result)

    # -- worker callbacks ---------------------------------------------------

    def on_worker_ready(self, worker: SimWorker) -> None:
        worker.machine.transition(WorkerState.READY, self.env.now, "activated")
        worker.last_beat = self.env.now
        self._emit("scheduler.ready", worker=worker.name, node=worker.node)
        self._flush_unassigned()

    def on_worker_installed(self, worker: SimWorker, cls: str) -> None:
        self._emit("scheduler.install", worker=worker.name, cls=cls)
        if worker.machine.is_dispatchable:
            self._flush_unassigned()

    def on_worker_drained(self, worker: SimWorker) -> None:
        """The work loop emptied out after a drain: retire the worker."""
        self._retire(worker, "drained")

    def heartbeat(self, worker: SimWorker) -> None:
        if self.workers.get(worker.name) is not worker:
            return  # a fenced registration's stale beat
        worker.last_beat = self.env.now
        self.heartbeats += 1
        if worker.machine.state is WorkerState.DEGRADED:
            worker.machine.transition(
                WorkerState.READY, self.env.now, "heartbeat-resumed"
            )
            self._emit("scheduler.recovered", worker=worker.name)
            self._flush_unassigned()

    # -- health monitoring --------------------------------------------------

    def _monitor(self) -> Generator:
        interval = self.config.heartbeat_interval_s
        while self._running:
            yield self.env.timeout(interval)
            if not self._running:
                return
            now = self.env.now
            for name in sorted(self.workers):
                worker = self.workers[name]
                if worker.machine.state not in (
                    WorkerState.READY,
                    WorkerState.DEGRADED,
                ):
                    continue
                silent_for = now - worker.last_beat
                if silent_for >= self.config.dead_after_misses * interval - 1e-9:
                    self.crash_worker(name, reason="heartbeat-timeout")
                elif (
                    worker.machine.state is WorkerState.READY
                    and silent_for
                    >= self.config.degraded_after_misses * interval - 1e-9
                ):
                    self._degrade(worker)

    def _degrade(self, worker: SimWorker) -> None:
        worker.machine.transition(
            WorkerState.DEGRADED, self.env.now, "missed-heartbeats"
        )
        self._emit("scheduler.degraded", worker=worker.name)
        if self.config.rebind_on_degraded:
            self._rebind_queued(worker, "degraded")

    def _rebind_queued(self, worker: SimWorker, reason: str) -> None:
        """Move everything *queued* (not in-flight) off ``worker``."""
        items = worker.take_queue()
        moved = 0
        for item in items:
            if self.ledger.requeue(item.request.request_id, worker.name):
                moved += 1
                self._route(item.request)
        if moved:
            self._emit(
                "scheduler.rebind", worker=worker.name, moved=moved, reason=reason
            )

    # -- drain / crash / node failure ---------------------------------------

    def drain_worker(self, name: str) -> SimWorker:
        """Gracefully retire ``name``: hand queued work to peers, let the
        in-flight invocation finish, then terminate the pod."""
        worker = self.workers.get(name)
        if worker is None:
            raise SchedulingError(f"unknown worker {name!r}")
        if worker.machine.state is WorkerState.DRAINING:
            return worker
        if not worker.machine.can_transition(WorkerState.DRAINING):
            raise SchedulingError(
                f"worker {name!r} cannot drain from {worker.state.value}"
            )
        worker.machine.transition(WorkerState.DRAINING, self.env.now, "drain")
        self._emit("scheduler.draining", worker=name)
        self._rebind_queued(worker, "drain-handoff")
        worker.drain()
        return worker

    def crash_worker(self, name: str, reason: str = "crash") -> bool:
        """Declare ``name`` dead *now* (fault injection or heartbeat
        timeout): fence its epoch and requeue everything it held."""
        worker = self.workers.get(name)
        if worker is None or worker.machine.is_dead:
            return False
        dropped = worker.crash()
        worker.machine.transition(WorkerState.DEAD, self.env.now, reason)
        self._emit(
            "scheduler.dead", worker=name, reason=reason, requeued=len(dropped)
        )
        self._teardown_pod(worker)
        for item in dropped:
            if self.ledger.requeue(item.request.request_id, name):
                self._route(item.request)
        self._maybe_replace()
        return True

    def on_node_failed(self, node: str) -> None:
        """Platform hook: every worker on a failed node dies with it."""
        for name in sorted(self.workers):
            worker = self.workers[name]
            if worker.node == node and not worker.machine.is_dead:
                self.crash_worker(name, reason="node-failure")

    def _retire(self, worker: SimWorker, reason: str) -> None:
        worker.machine.transition(WorkerState.DEAD, self.env.now, reason)
        self._emit("scheduler.dead", worker=worker.name, reason=reason, requeued=0)
        self._teardown_pod(worker)
        self._maybe_replace()

    def _teardown_pod(self, worker: SimWorker) -> None:
        if worker.pod is None:
            return
        if self.cluster.pod(worker.pod.name) is worker.pod:
            self.cluster.terminate_pod(worker.pod.name)

    def _maybe_replace(self) -> None:
        if not self.config.replace_dead_workers or not self._running:
            return
        live = sum(
            1 for worker in self.workers.values() if not worker.machine.is_dead
        )
        while live < self.config.pool_size:
            self.register_worker()
            live += 1

    # -- chaos seams --------------------------------------------------------

    def suppress_heartbeats(self, name: str, duration_s: float) -> bool:
        worker = self.workers.get(name)
        if worker is None or worker.machine.is_dead:
            return False
        worker.suppress_heartbeats(duration_s)
        return True

    def resume_heartbeats(self, name: str) -> bool:
        worker = self.workers.get(name)
        if worker is None or worker.machine.is_dead:
            return False
        worker.resume_heartbeats()
        return True

    def set_worker_slow(self, name: str, factor: float) -> bool:
        worker = self.workers.get(name)
        if worker is None or worker.machine.is_dead:
            return False
        worker.slow_factor = factor
        return True

    def clear_worker_slow(self, name: str) -> bool:
        worker = self.workers.get(name)
        if worker is None:
            return False
        worker.slow_factor = 1.0
        return True

    # -- platform hooks -----------------------------------------------------

    def on_deploy(self, cls: str) -> None:
        """A class runtime was (re)deployed: install it everywhere."""
        if cls not in self._classes:
            self._classes.append(cls)
        for _, worker in sorted(self.workers.items()):
            if not worker.machine.is_dead:
                worker.install(cls)

    @property
    def outstanding(self) -> int:
        return len(self.ledger.outstanding())

    @property
    def live_workers(self) -> int:
        return sum(
            1 for worker in self.workers.values() if not worker.machine.is_dead
        )

    def describe_workers(self) -> list[dict[str, Any]]:
        return [self.workers[name].describe() for name in sorted(self.workers)]

    def stats(self) -> dict[str, Any]:
        audit = self.ledger.audit()
        return {
            "workers": self.describe_workers(),
            "ledger": audit,
            "dispatched": self.dispatched,
            "delivered": self.delivered,
            "heartbeats": self.heartbeats,
            "parked": len(self._unassigned),
            "parked_total": self.parked_total,
            "registrations": len(self.all_workers),
            "live_workers": self.live_workers,
        }

    def collect_metrics(self, registry) -> None:
        """Metrics-plane pull hook: per-worker dispatch/completion
        counters and queue depths, labeled by worker, plus plane totals."""
        from repro.monitoring.plane import set_counter

        for name in sorted(self.workers):
            worker = self.workers[name]
            labels = {"worker": name, "plane": "scheduler"}
            set_counter(
                registry, "scheduler.dispatched", float(worker.dispatched_count), labels
            )
            set_counter(
                registry, "scheduler.completed", float(worker.completed_count), labels
            )
            set_counter(
                registry, "scheduler.heartbeats", float(worker.heartbeats_sent), labels
            )
            registry.gauge("scheduler.queue_depth", labels).set(
                float(len(worker.queue))
            )
            registry.gauge("scheduler.worker_phase", labels).set(
                float(worker.machine.phase)
            )
        totals = {"plane": "scheduler"}
        audit = self.ledger.audit()
        set_counter(registry, "scheduler.accepted", float(audit["accepted"]), totals)
        set_counter(registry, "scheduler.requeues", float(audit["requeues"]), totals)
        set_counter(
            registry, "scheduler.suppressed", float(audit["suppressed"]), totals
        )
        registry.gauge("scheduler.outstanding", totals).set(
            float(audit["outstanding"])
        )
        registry.gauge("scheduler.parked", totals).set(float(len(self._unassigned)))

    # -- internals ----------------------------------------------------------

    def _emit(self, type: str, **fields: Any) -> None:
        if self.events is not None:
            self.events.record(type, **fields)
        if self.tracer is not None and self.tracer.enabled:
            span = self.tracer.start(SCHEDULER_TRACE_ID, type, **fields)
            self.tracer.finish(span)

"""The real asyncio transport for the scheduler/worker protocol.

:class:`AsyncSchedulerServer` listens on a TCP socket and drives the
same :class:`~repro.scheduler.transport.core.DispatchCore` the sim
plane uses; :class:`AsyncWorkerClient` processes connect to it and
speak the length-prefixed JSON frames from
:mod:`~repro.scheduler.transport.protocol`.  Concurrency is real:
every connection is an event-loop task, and crashes are *connection
drops* — :meth:`AsyncWorkerClient.kill` aborts the socket without a
goodbye, which the server treats exactly like a sim crash (fence the
epoch, requeue everything the worker held, replace it).

Fencing over reconnects
-----------------------

The server assigns each registration an **epoch** (monotone per worker
name) in :class:`~repro.scheduler.transport.protocol.RegisterAck`, and
every worker→scheduler message carries it.  When the server declares a
worker dead — connection drop, heartbeat timeout, or injected crash —
it bumps the registration's epoch *before* requeueing, so anything a
zombie connection says afterwards (a late ``complete``, a stray
heartbeat) mismatches and is dropped without touching the ledger
(counted in :attr:`AsyncSchedulerServer.fenced`).  Same-epoch
duplicates — a completion racing its own redispatch — are suppressed by
the ledger's first-completion-wins rule, emitting
``scheduler.suppressed`` exactly like the sim path.

Differences from sim are confined to what real sockets force: a
degrade/drain rebind reroutes the server's *queued view*; if the old
worker already pulled an item off the wire and executes it anyway, the
ledger delivers whichever completion lands first and suppresses the
other, so exactly-once completion still holds (execution is
at-least-once, as in any real distributed dispatch).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Awaitable, Callable

from repro.errors import SchedulingError, TransportError
from repro.invoker.request import InvocationRequest, InvocationResult
from repro.scheduler.state import WorkerState, WorkerStateMachine
from repro.scheduler.transport.core import DispatchCore, DispatchItem
from repro.scheduler.transport.protocol import (
    Complete,
    Dispatch,
    DrainCmd,
    Drained,
    Executing,
    FrameDecoder,
    Heartbeat,
    Install,
    InstallAck,
    Message,
    Ready,
    Register,
    RegisterAck,
    encode_frame,
)

__all__ = [
    "TransportEvent",
    "RemoteWorker",
    "AsyncSchedulerServer",
    "AsyncWorkerClient",
]

_READ_CHUNK = 65536


@dataclass(frozen=True)
class TransportEvent:
    """One ``scheduler.*`` event recorded by the async server, shaped
    like the sim event log's records so the conformance invariants can
    replay either."""

    seq: int
    at: float
    type: str
    fields: dict[str, Any]


class RemoteWorker:
    """The server's view of one connected worker registration.

    Satisfies the :class:`~repro.scheduler.transport.core.WorkerPort`
    protocol: ``push`` writes a ``dispatch`` frame down the connection,
    ``take_queue`` hands back the items the server still believes are
    queued (not yet reported ``executing``)."""

    def __init__(
        self,
        server: "AsyncSchedulerServer",
        name: str,
        epoch: int,
        writer: asyncio.StreamWriter,
        node: str | None = None,
    ) -> None:
        self.server = server
        self.name = name
        self.epoch = epoch
        self.writer = writer
        self.node = node
        self.machine = WorkerStateMachine()
        self.installed: set[str] = set()
        #: request_id -> item the worker currently holds (queued or
        #: executing); ``executing`` marks the in-flight subset.
        self.items: dict[str, DispatchItem] = {}
        self.executing: set[str] = set()
        self.last_beat = server.now()
        self.dispatched_count = 0
        self.completed_count = 0
        self.heartbeats_sent = 0
        self.retired = False

    @property
    def state(self) -> WorkerState:
        return self.machine.state

    def push(self, item: DispatchItem) -> None:
        request = item.request
        entry = self.server.core.ledger.entry(request.request_id)
        self.items[request.request_id] = item
        self.dispatched_count += 1
        self.send(
            Dispatch(
                request_id=request.request_id,
                object_id=request.object_id,
                fn_name=request.fn_name,
                epoch=item.epoch,
                seq=entry.seq if entry is not None else -1,
                cls=request.cls,
                payload=dict(request.payload),
            )
        )

    def take_queue(self) -> list[DispatchItem]:
        queued = [
            item
            for rid, item in self.items.items()
            if rid not in self.executing
        ]
        for item in queued:
            del self.items[item.request.request_id]
        return queued

    def take_all(self) -> list[DispatchItem]:
        items = list(self.items.values())
        self.items.clear()
        self.executing.clear()
        return items

    def send(self, message: Message) -> None:
        if self.writer.is_closing():
            return
        self.writer.write(encode_frame(message))

    def describe(self) -> dict[str, Any]:
        return {
            "worker": self.name,
            "state": self.state.value,
            "node": self.node,
            "epoch": self.epoch,
            "installed": sorted(self.installed),
            "queue_depth": len(self.items) - len(self.executing),
            "in_flight": bool(self.executing),
            "dispatched": self.dispatched_count,
            "completed": self.completed_count,
            "heartbeats": self.heartbeats_sent,
        }


class AsyncSchedulerServer:
    """The scheduler side of the protocol over real asyncio streams.

    Owns a :class:`DispatchCore` (the same state machine the sim plane
    drives), a TCP listener, and a heartbeat monitor task.  Submissions
    return futures resolved on first completion."""

    def __init__(
        self,
        *,
        config: Any = None,
        classes: list[str] | None = None,
        emit: Callable[..., None] | None = None,
    ) -> None:
        # config is a SchedulerConfig; typed loosely to avoid importing
        # the plane module (which imports this package).
        from repro.scheduler.plane import SchedulerConfig

        self.config = config or SchedulerConfig(enabled=True, transport="asyncio")
        self.core = DispatchCore(clock=self.now, emit=self._emit)
        for cls in classes or ():
            self.core.note_class(cls)
        self.events: list[TransportEvent] = []
        self.heartbeats = 0
        self.fenced = 0
        self.on_complete: Callable[[InvocationRequest, InvocationResult], None] | None = None
        self.on_worker_lost: Callable[[str], None] | None = None
        self._external_emit = emit
        self._server: asyncio.AbstractServer | None = None
        self._monitor_task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._t0 = 0.0
        self._epochs: dict[str, int] = {}
        self._futures: dict[str, asyncio.Future] = {}
        self._connections: set[asyncio.StreamWriter] = set()
        self._seq = 0
        self._running = False
        self.core.on_complete = self._resolve

    # -- lifecycle ----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        self._server = await asyncio.start_server(self._handle, host, port)
        self._running = True
        self._monitor_task = asyncio.ensure_future(self._monitor())

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> dict[str, int]:
        """Stop listening and report what was still pending, with the
        parked subset broken out (same contract as the sim plane)."""
        report = self.core.stop_report()
        if not self._running:
            return report
        self._running = False
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()
        await asyncio.sleep(0)
        return report

    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._t0

    # -- submission ---------------------------------------------------------

    def submit(self, request: InvocationRequest) -> "asyncio.Future[InvocationResult]":
        """Accept one invocation; the future resolves on delivery."""
        assert self._loop is not None, "server not started"
        future: asyncio.Future = self._loop.create_future()
        self._futures[request.request_id] = future
        self.core.submit(request)
        return future

    def _resolve(self, request: InvocationRequest, result: InvocationResult) -> None:
        future = self._futures.pop(request.request_id, None)
        if future is not None and not future.done():
            future.set_result(result)
        if self.on_complete is not None:
            self.on_complete(request, result)

    def on_deploy(self, cls: str) -> None:
        """A class was (re)deployed: install it on every live worker."""
        self.core.note_class(cls)
        for _, worker in sorted(self.core.workers.items()):
            if not worker.machine.is_dead:
                worker.send(Install(cls=cls))  # type: ignore[attr-defined]

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        decoder = FrameDecoder()
        worker: RemoteWorker | None = None
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                for message in decoder.feed(data):
                    if worker is None:
                        worker = self._register(message, writer)
                        if worker is None:
                            return  # rejected; frame already sent
                    else:
                        self._on_message(worker, message)
        except (ConnectionError, TransportError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            if worker is not None:
                self._connection_lost(worker)

    def _register(
        self, message: Message, writer: asyncio.StreamWriter
    ) -> RemoteWorker | None:
        if not isinstance(message, Register):
            writer.write(
                encode_frame(
                    RegisterAck(
                        worker="?", epoch=-1, error="expected register first"
                    )
                )
            )
            writer.close()
            return None
        name = message.worker
        current = self.core.workers.get(name)
        if current is not None and not current.machine.is_dead:
            writer.write(
                encode_frame(
                    RegisterAck(
                        worker=name,
                        epoch=-1,
                        error=f"worker {name!r} is already registered",
                    )
                )
            )
            writer.close()
            return None
        epoch = self._epochs.get(name, 0) + 1
        self._epochs[name] = epoch
        worker = RemoteWorker(self, name, epoch, writer, node=message.node)
        self.core.add_worker(worker)
        self._emit("scheduler.register", worker=name, node=worker.node)
        worker.send(
            RegisterAck(
                worker=name, epoch=epoch, classes=tuple(self.core.deployed_classes())
            )
        )
        return worker

    def _fenced(self, worker: RemoteWorker, epoch: int) -> bool:
        """Is a message from this connection speaking for a fenced past?"""
        if (
            self.core.workers.get(worker.name) is not worker
            or worker.machine.is_dead
            or epoch != worker.epoch
        ):
            self.fenced += 1
            return True
        return False

    def _on_message(self, worker: RemoteWorker, message: Message) -> None:
        if isinstance(message, Ready):
            if self._fenced(worker, message.epoch):
                return
            worker.machine.transition(WorkerState.READY, self.now(), "activated")
            worker.last_beat = self.now()
            self._emit("scheduler.ready", worker=worker.name, node=worker.node)
            self.core.flush_unassigned()
        elif isinstance(message, Heartbeat):
            if self._fenced(worker, message.epoch):
                return
            worker.last_beat = self.now()
            worker.heartbeats_sent += 1
            self.heartbeats += 1
            if worker.machine.state is WorkerState.DEGRADED:
                worker.machine.transition(
                    WorkerState.READY, self.now(), "heartbeat-resumed"
                )
                self._emit("scheduler.recovered", worker=worker.name)
                self.core.flush_unassigned()
        elif isinstance(message, InstallAck):
            if self._fenced(worker, message.epoch):
                return
            worker.installed.add(message.cls)
            self._emit("scheduler.install", worker=worker.name, cls=message.cls)
            if worker.machine.is_dispatchable:
                self.core.flush_unassigned()
        elif isinstance(message, Executing):
            if self._fenced(worker, message.epoch):
                return
            if message.request_id in worker.items:
                worker.executing.add(message.request_id)
        elif isinstance(message, Complete):
            self._on_complete_msg(worker, message)
        elif isinstance(message, Drained):
            if self._fenced(worker, message.epoch):
                return
            self._retire(worker, "drained")

    def _on_complete_msg(self, worker: RemoteWorker, message: Complete) -> None:
        if self._fenced(worker, message.epoch):
            # A zombie connection the scheduler already declared dead:
            # its item was requeued when the epoch was fenced, so
            # completing it here would wrongly close a redispatched
            # entry.  Drop silently, exactly like the sim work loop.
            return
        item = worker.items.pop(message.request_id, None)
        worker.executing.discard(message.request_id)
        if item is not None:
            worker.completed_count += 1
            request = item.request
        else:
            # The item is no longer tracked on this port — a duplicate
            # Complete, or a queued item rebound away that the client
            # had already pulled.  The ledger still decides: first
            # completion wins, later ones emit ``scheduler.suppressed``.
            entry = self.core.ledger.entry(message.request_id)
            if entry is None:
                return  # never accepted here: bogus frame
            request = entry.request
        result = InvocationResult(
            request_id=request.request_id,
            cls=request.cls or "",
            object_id=request.object_id,
            fn_name=request.fn_name,
            ok=message.ok,
            output=dict(message.output),
            error=message.error,
            error_type=message.error_type,
        )
        self.core.complete(worker.name, request, result)

    def _connection_lost(self, worker: RemoteWorker) -> None:
        if worker.retired or worker.machine.is_dead:
            return
        self._crash(worker, "connection-lost")

    # -- failure handling ----------------------------------------------------

    def _crash(self, worker: RemoteWorker, reason: str) -> None:
        # Fence FIRST: anything the old connection says after this
        # carries a stale epoch and is discarded.
        worker.epoch += 1
        self._epochs[worker.name] = max(self._epochs[worker.name], worker.epoch)
        held = worker.take_all()
        worker.machine.transition(WorkerState.DEAD, self.now(), reason)
        self._emit(
            "scheduler.dead", worker=worker.name, reason=reason, requeued=len(held)
        )
        self.core.reroute(worker.name, held)
        if self.on_worker_lost is not None:
            self.on_worker_lost(worker.name)

    def crash_worker(self, name: str, reason: str = "crash") -> bool:
        """Declare ``name`` dead now and sever its connection."""
        worker = self.core.workers.get(name)
        if worker is None or worker.machine.is_dead:
            return False
        assert isinstance(worker, RemoteWorker)
        self._crash(worker, reason)
        worker.writer.close()
        return True

    def drain(self, name: str) -> None:
        """Gracefully retire ``name``: hand queued work to peers, tell
        the worker to finish in-flight and report drained."""
        worker = self.core.workers.get(name)
        if worker is None:
            raise SchedulingError(f"unknown worker {name!r}")
        assert isinstance(worker, RemoteWorker)
        if worker.machine.state is WorkerState.DRAINING:
            return
        if not worker.machine.can_transition(WorkerState.DRAINING):
            raise SchedulingError(
                f"worker {name!r} cannot drain from {worker.state.value}"
            )
        worker.machine.transition(WorkerState.DRAINING, self.now(), "drain")
        self._emit("scheduler.draining", worker=name)
        moved = self.core.reroute(name, worker.take_queue())
        if moved:
            self._emit(
                "scheduler.rebind", worker=name, moved=moved, reason="drain-handoff"
            )
        worker.send(DrainCmd())

    def _retire(self, worker: RemoteWorker, reason: str) -> None:
        worker.retired = True
        worker.machine.transition(WorkerState.DEAD, self.now(), reason)
        self._emit("scheduler.dead", worker=worker.name, reason=reason, requeued=0)
        worker.writer.close()

    # -- health monitoring ---------------------------------------------------

    async def _monitor(self) -> None:
        interval = self.config.heartbeat_interval_s
        while self._running:
            await asyncio.sleep(interval)
            if not self._running:
                return
            now = self.now()
            for name in sorted(self.core.workers):
                worker = self.core.workers[name]
                assert isinstance(worker, RemoteWorker)
                if worker.machine.state not in (
                    WorkerState.READY,
                    WorkerState.DEGRADED,
                ):
                    continue
                silent_for = now - worker.last_beat
                if silent_for >= self.config.dead_after_misses * interval:
                    self.crash_worker(name, reason="heartbeat-timeout")
                elif (
                    worker.machine.state is WorkerState.READY
                    and silent_for >= self.config.degraded_after_misses * interval
                ):
                    self._degrade(worker)

    def _degrade(self, worker: RemoteWorker) -> None:
        worker.machine.transition(
            WorkerState.DEGRADED, self.now(), "missed-heartbeats"
        )
        self._emit("scheduler.degraded", worker=worker.name)
        if self.config.rebind_on_degraded:
            moved = self.core.reroute(worker.name, worker.take_queue())
            if moved:
                self._emit(
                    "scheduler.rebind",
                    worker=worker.name,
                    moved=moved,
                    reason="degraded",
                )

    # -- observability -------------------------------------------------------

    def describe_workers(self) -> list[dict[str, Any]]:
        return [
            self.core.workers[name].describe()  # type: ignore[attr-defined]
            for name in sorted(self.core.workers)
        ]

    def stats(self) -> dict[str, Any]:
        audit = self.core.ledger.audit()
        return {
            "workers": self.describe_workers(),
            "ledger": audit,
            "dispatched": self.core.dispatched,
            "delivered": self.core.delivered,
            "heartbeats": self.heartbeats,
            "fenced": self.fenced,
            "parked": self.core.parked,
            "parked_total": self.core.parked_total,
            "registrations": len(self.core.registrations),
            "live_workers": self.core.live_workers,
        }

    def _emit(self, type: str, **fields: Any) -> None:
        self.events.append(
            TransportEvent(seq=self._seq, at=self.now(), type=type, fields=fields)
        )
        self._seq += 1
        if self._external_emit is not None:
            self._external_emit(type, **fields)


class AsyncWorkerClient:
    """The worker side of the protocol: one process (task) per worker.

    ``executor`` is an async callable ``(dispatch: Dispatch, client) ->
    dict`` returning result fields (``ok``, ``output``, ``error``,
    ``error_type``); the HTTP front end plugs the real invocation
    engine in here, tests plug in sleeps and failures."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        executor: Callable[[Dispatch, "AsyncWorkerClient"], Awaitable[dict]],
        *,
        heartbeat_interval_s: float = 0.5,
        install_delay_s: float = 0.0,
        node: str | None = None,
    ) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.executor = executor
        self.heartbeat_interval_s = heartbeat_interval_s
        self.install_delay_s = install_delay_s
        self.node = node
        self.epoch = -1
        self.installed: set[str] = set()
        self.slow_factor = 1.0
        self.completed = 0
        self.draining = False
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._queue: asyncio.Queue[Dispatch | None] = asyncio.Queue()
        self._in_flight: Dispatch | None = None
        self._tasks: list[asyncio.Task] = []
        self._suppress_until = -1.0
        self._done = asyncio.Event()
        self._registered = asyncio.Event()
        self._register_error: str | None = None

    async def connect(self) -> None:
        """Open the connection, register, install, report ready, and
        start the heartbeat + work loops.  Raises ``SchedulingError``
        if the scheduler rejects the registration."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._send(Register(worker=self.name, node=self.node))
        self._tasks.append(asyncio.ensure_future(self._read_loop()))
        await self._registered.wait()
        if self._register_error is not None:
            await self.close()
            raise SchedulingError(self._register_error)
        self._tasks.append(asyncio.ensure_future(self._heartbeat_loop()))
        self._tasks.append(asyncio.ensure_future(self._work_loop()))

    # -- scheduler-facing ----------------------------------------------------

    def kill(self) -> None:
        """Crash: abort the transport with no goodbye.  The scheduler
        sees a connection drop and fences this registration's epoch."""
        for task in self._tasks:
            task.cancel()
        if self._writer is not None:
            transport = self._writer.transport
            if transport is not None:
                transport.abort()
        self._done.set()

    async def close(self) -> None:
        """Graceful local teardown (tests); not a protocol drain."""
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._writer is not None:
            self._writer.close()
        self._done.set()

    async def wait_done(self) -> None:
        await self._done.wait()

    def suppress_heartbeats(self, duration_s: float) -> None:
        loop = asyncio.get_running_loop()
        self._suppress_until = loop.time() + duration_s

    # -- protocol loops ------------------------------------------------------

    def _send(self, message: Message) -> None:
        if self._writer is None or self._writer.is_closing():
            return
        self._writer.write(encode_frame(message))

    async def _read_loop(self) -> None:
        assert self._reader is not None
        decoder = FrameDecoder()
        try:
            while True:
                data = await self._reader.read(_READ_CHUNK)
                if not data:
                    break
                for message in decoder.feed(data):
                    self._on_message(message)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if not self._registered.is_set():
                self._register_error = "connection closed during registration"
                self._registered.set()
            self._done.set()

    def _on_message(self, message: Message) -> None:
        if isinstance(message, RegisterAck):
            if message.error is not None:
                self._register_error = message.error
                self._registered.set()
                return
            self.epoch = message.epoch
            self._registered.set()
            self._tasks.append(
                asyncio.ensure_future(self._startup(list(message.classes)))
            )
        elif isinstance(message, Dispatch):
            if not self.draining:
                self._queue.put_nowait(message)
        elif isinstance(message, Install):
            self._tasks.append(
                asyncio.ensure_future(self._install(message.cls))
            )
        elif isinstance(message, DrainCmd):
            self.draining = True
            # Drop queued-but-unstarted items: the scheduler rebound
            # them to peers before sending the drain.
            while not self._queue.empty():
                self._queue.get_nowait()
            self._queue.put_nowait(None)

    async def _startup(self, classes: list[str]) -> None:
        for cls in classes:
            await self._install(cls)
        self._send(Ready(worker=self.name, epoch=self.epoch))

    async def _install(self, cls: str) -> None:
        if cls in self.installed:
            return
        if self.install_delay_s:
            await asyncio.sleep(self.install_delay_s)
        self.installed.add(cls)
        self._send(InstallAck(worker=self.name, epoch=self.epoch, cls=cls))

    async def _heartbeat_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.heartbeat_interval_s)
            if loop.time() < self._suppress_until:
                continue
            self._send(Heartbeat(worker=self.name, epoch=self.epoch))

    async def _work_loop(self) -> None:
        while True:
            dispatch = await self._queue.get()
            if dispatch is None:  # drain sentinel
                self._send(Drained(worker=self.name, epoch=self.epoch))
                if self._writer is not None:
                    await self._writer.drain()
                self._done.set()
                return
            self._in_flight = dispatch
            self._send(
                Executing(
                    worker=self.name,
                    epoch=self.epoch,
                    request_id=dispatch.request_id,
                )
            )
            try:
                fields = await self.executor(dispatch, self)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # an executor bug, not a protocol event
                fields = {
                    "ok": False,
                    "error": str(exc),
                    "error_type": type(exc).__name__,
                }
            self._in_flight = None
            self.completed += 1
            self._send(
                Complete(
                    worker=self.name,
                    epoch=dispatch.epoch,
                    request_id=dispatch.request_id,
                    ok=bool(fields.get("ok", True)),
                    output=dict(fields.get("output", {})),
                    error=fields.get("error"),
                    error_type=fields.get("error_type"),
                )
            )
            if self.draining and self._queue.empty():
                self._queue.put_nowait(None)

"""The scheduler/worker wire protocol.

Typed messages for the control-plane conversation plus a
length-prefixed JSON codec.  A *frame* is a 4-byte big-endian payload
length followed by the UTF-8 JSON encoding of the message's wire dict;
every wire dict carries a ``"type"`` discriminator.  The codec is
transport-agnostic — :class:`FrameDecoder` feeds on arbitrary byte
chunks (a TCP stream, a loopback pipe, a test buffer) and yields
complete messages.

Fencing rides on the wire: every worker→scheduler message after
registration carries the worker's **epoch** (assigned by the scheduler
in :class:`RegisterAck`).  A message whose epoch does not match the
scheduler's current epoch for that registration is from a fenced past —
a zombie connection the scheduler already declared dead — and is
discarded without touching the ledger.
"""

from __future__ import annotations

import json
import struct
from dataclasses import MISSING, asdict, dataclass, field, fields
from typing import Any, ClassVar, Iterator

from repro.errors import TransportError, ValidationError

__all__ = [
    "Message",
    "Register",
    "RegisterAck",
    "Ready",
    "Heartbeat",
    "Install",
    "InstallAck",
    "Dispatch",
    "Executing",
    "Complete",
    "DrainCmd",
    "Drained",
    "encode_message",
    "decode_message",
    "encode_frame",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
]

#: Upper bound on one frame's payload; a larger announced length means a
#: corrupt or hostile peer, not a big message.
MAX_FRAME_BYTES = 4 * 1024 * 1024

_LENGTH = struct.Struct(">I")


@dataclass(frozen=True)
class Message:
    """Base class for wire messages; subclasses set ``TYPE``."""

    TYPE: ClassVar[str] = ""

    def to_wire(self) -> dict[str, Any]:
        wire = asdict(self)
        wire["type"] = self.TYPE
        return wire


# -- worker → scheduler ------------------------------------------------------


@dataclass(frozen=True)
class Register(Message):
    """Ask to join the pool under ``worker`` (epoch comes back in the ack)."""

    TYPE: ClassVar[str] = "register"
    worker: str
    node: str | None = None


@dataclass(frozen=True)
class Ready(Message):
    """Initial installs finished; the worker may receive dispatches."""

    TYPE: ClassVar[str] = "ready"
    worker: str
    epoch: int


@dataclass(frozen=True)
class Heartbeat(Message):
    TYPE: ClassVar[str] = "heartbeat"
    worker: str
    epoch: int


@dataclass(frozen=True)
class InstallAck(Message):
    """One class runtime finished installing on the worker."""

    TYPE: ClassVar[str] = "install_ack"
    worker: str
    epoch: int
    cls: str


@dataclass(frozen=True)
class Executing(Message):
    """The worker started executing a dispatched item (moves it from the
    scheduler's queued view to in-flight, so rebinds skip it)."""

    TYPE: ClassVar[str] = "executing"
    worker: str
    epoch: int
    request_id: str


@dataclass(frozen=True)
class Complete(Message):
    """One dispatched invocation finished on the worker."""

    TYPE: ClassVar[str] = "complete"
    worker: str
    epoch: int
    request_id: str
    ok: bool
    output: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    error_type: str | None = None


@dataclass(frozen=True)
class Drained(Message):
    """The work loop emptied out after a drain command."""

    TYPE: ClassVar[str] = "drained"
    worker: str
    epoch: int


# -- scheduler → worker ------------------------------------------------------


@dataclass(frozen=True)
class RegisterAck(Message):
    """Registration verdict: the assigned epoch plus the classes to
    install before reporting ready.  ``error`` set means rejected."""

    TYPE: ClassVar[str] = "register_ack"
    worker: str
    epoch: int
    classes: tuple[str, ...] = ()
    error: str | None = None


@dataclass(frozen=True)
class Install(Message):
    """Install one (newly deployed) class runtime."""

    TYPE: ClassVar[str] = "install"
    cls: str


@dataclass(frozen=True)
class Dispatch(Message):
    """One invocation, fenced by the epoch it was dispatched under."""

    TYPE: ClassVar[str] = "dispatch"
    request_id: str
    object_id: str
    fn_name: str
    epoch: int
    seq: int
    cls: str | None = None
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class DrainCmd(Message):
    """Finish the in-flight item, then report drained and retire."""

    TYPE: ClassVar[str] = "drain"


_MESSAGE_TYPES: dict[str, type[Message]] = {
    cls.TYPE: cls
    for cls in (
        Register,
        RegisterAck,
        Ready,
        Heartbeat,
        Install,
        InstallAck,
        Dispatch,
        Executing,
        Complete,
        DrainCmd,
        Drained,
    )
}


def encode_message(message: Message) -> dict[str, Any]:
    return message.to_wire()


def decode_message(wire: dict[str, Any]) -> Message:
    """Rebuild a typed message from its wire dict."""
    kind = wire.get("type")
    cls = _MESSAGE_TYPES.get(kind)
    if cls is None:
        raise ValidationError(f"unknown message type {kind!r}")
    names = {f.name for f in fields(cls)}
    kwargs = {k: v for k, v in wire.items() if k in names}
    if isinstance(kwargs.get("classes"), list):
        kwargs["classes"] = tuple(kwargs["classes"])
    missing = {
        f.name
        for f in fields(cls)
        if f.default is MISSING and f.default_factory is MISSING
    } - set(kwargs)
    if missing:
        raise ValidationError(
            f"{kind} message missing fields: {', '.join(sorted(missing))}"
        )
    return cls(**kwargs)


def encode_frame(message: Message) -> bytes:
    """One wire frame: 4-byte big-endian length + JSON payload."""
    payload = json.dumps(
        message.to_wire(), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _LENGTH.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder: feed byte chunks, iterate messages.

    Keeps partial frames across feeds, so it works over any chunking a
    stream produces.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[Message]:
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _LENGTH.size:
                return
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise TransportError(
                    f"announced frame of {length} bytes exceeds MAX_FRAME_BYTES"
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[_LENGTH.size : end])
            del self._buffer[:end]
            try:
                wire = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise TransportError(f"undecodable frame payload: {exc}") from exc
            yield decode_message(wire)

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

"""Scheduler/worker transports.

The control-plane protocol (register / ready / heartbeat / install /
dispatch / executing / complete / drain) is spoken by two
interchangeable transports over one shared state machine:

* **sim** — the default.  :class:`~repro.scheduler.plane.SchedulerPlane`
  drives :class:`~repro.scheduler.transport.core.DispatchCore` with
  direct in-process calls from :class:`~repro.scheduler.worker.SimWorker`
  processes on the simulation kernel.  Deterministic, byte-identical to
  the pre-transport plane.
* **asyncio** — :class:`~repro.scheduler.transport.aio.AsyncSchedulerServer`
  drives the *same* ``DispatchCore`` while
  :class:`~repro.scheduler.transport.aio.AsyncWorkerClient` processes
  connect over TCP speaking the length-prefixed JSON wire protocol in
  :mod:`~repro.scheduler.transport.protocol`.  Crashes are real
  connection drops; fencing happens on worker epochs exactly as in sim.

Both transports preserve the ledger invariants the conformance suite
checks: exactly-once completion, dispatch-only-to-READY, and
phase-monotone worker histories.
"""

from repro.scheduler.transport.core import DispatchCore, DispatchItem, rendezvous_score
from repro.scheduler.transport.protocol import (
    Complete,
    Dispatch,
    DrainCmd,
    Drained,
    Executing,
    FrameDecoder,
    Heartbeat,
    Install,
    InstallAck,
    Message,
    Ready,
    Register,
    RegisterAck,
    decode_message,
    encode_frame,
    encode_message,
)

__all__ = [
    "DispatchCore",
    "DispatchItem",
    "rendezvous_score",
    "Message",
    "Register",
    "RegisterAck",
    "Ready",
    "Heartbeat",
    "Install",
    "InstallAck",
    "Dispatch",
    "Executing",
    "Complete",
    "DrainCmd",
    "Drained",
    "FrameDecoder",
    "encode_frame",
    "encode_message",
    "decode_message",
]

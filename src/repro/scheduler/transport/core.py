"""The transport-neutral half of the scheduler.

:class:`DispatchCore` owns everything about dispatch that does *not*
depend on how workers are reached: the invocation ledger, the deployed
class list, the parked-request buffer, rendezvous worker selection, and
the first-completion-wins delivery rule.  Both transports drive this
one state machine:

* the **sim** transport (:class:`~repro.scheduler.plane.SchedulerPlane`)
  calls it with :class:`~repro.scheduler.worker.SimWorker` ports and the
  simulation clock;
* the **asyncio** transport
  (:class:`~repro.scheduler.transport.aio.AsyncSchedulerServer`) calls
  it with remote-connection ports and the event-loop clock.

A *worker port* is anything exposing the attributes the core reads
(``name``, ``epoch``, ``installed``, ``machine``) and the two methods it
calls (``push(item)`` to deliver a dispatch, ``take_queue()`` to hand
queued items back on rebind).  The conformance invariants — exactly-once
completion, dispatch-only-to-READY, phase-monotone histories — are
properties of this class, which is why they hold identically over both
transports.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

from repro.invoker.engine import split_object_id
from repro.scheduler.ledger import InvocationLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.invoker.request import InvocationRequest, InvocationResult
    from repro.scheduler.state import WorkerStateMachine

__all__ = ["DispatchItem", "WorkerPort", "DispatchCore", "rendezvous_score"]


@dataclass(frozen=True)
class DispatchItem:
    """One invocation handed to a worker, fenced by its epoch."""

    request: "InvocationRequest"
    epoch: int
    dispatched_at: float


@runtime_checkable
class WorkerPort(Protocol):
    """What the dispatch core needs from a transport-side worker."""

    name: str
    epoch: int
    installed: set[str]
    machine: "WorkerStateMachine"

    def push(self, item: DispatchItem) -> None: ...

    def take_queue(self) -> list[DispatchItem]: ...


def rendezvous_score(object_id: str, worker: str) -> int:
    """Stable per-(object, worker) weight for rendezvous hashing."""
    digest = hashlib.md5(f"{object_id}|{worker}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class DispatchCore:
    """Ledger + routing + fencing state shared by every transport."""

    def __init__(
        self,
        *,
        clock: Callable[[], float],
        emit: Callable[..., None],
    ) -> None:
        self.clock = clock
        self._emit = emit
        self.ledger = InvocationLedger()
        #: name -> *current* registration under that name (latest epoch).
        self.workers: dict[str, WorkerPort] = {}
        #: every registration ever made, including retired ones — the
        #: conformance suite checks monotonicity over all of them.
        self.registrations: list[WorkerPort] = []
        self.on_complete: Callable[["InvocationRequest", "InvocationResult"], None] | None = None
        self.dispatched = 0
        self.delivered = 0
        self.parked_total = 0
        self._unassigned: deque["InvocationRequest"] = deque()
        self._classes: list[str] = []

    # -- registration --------------------------------------------------------

    def add_worker(self, worker: WorkerPort) -> None:
        self.workers[worker.name] = worker
        self.registrations.append(worker)

    def note_class(self, cls: str) -> None:
        """A class runtime was (re)deployed; remember it for eligibility."""
        if cls not in self._classes:
            self._classes.append(cls)

    def deployed_classes(self) -> list[str]:
        return list(self._classes)

    # -- dispatch path -------------------------------------------------------

    def submit(self, request: "InvocationRequest") -> None:
        """Accept one invocation into the ledger and route it."""
        self.ledger.accept(request, self.clock())
        self.route(request)

    def route(self, request: "InvocationRequest") -> None:
        worker = self.pick(request)
        if worker is None:
            # No eligible worker right now: park it.  Parked requests are
            # flushed whenever a worker becomes READY, finishes an
            # install, or recovers — never dropped.
            self._unassigned.append(request)
            self.parked_total += 1
            return
        self.dispatch(worker, request)

    def pick(self, request: "InvocationRequest") -> WorkerPort | None:
        cls = request.cls or split_object_id(request.object_id)[0]
        if cls is not None and cls not in self._classes:
            # The class has a name but no runtime was deployed yet (a
            # submit racing ``on_deploy``).  No worker can have it
            # installed, so dispatching now would execute against a
            # missing runtime — park until the deploy lands.
            return None
        eligible = [
            worker
            for _, worker in sorted(self.workers.items())
            if worker.machine.is_dispatchable
            and (cls is None or cls in worker.installed)
        ]
        if not eligible:
            return None
        return max(
            eligible, key=lambda w: rendezvous_score(request.object_id, w.name)
        )

    def dispatch(self, worker: WorkerPort, request: "InvocationRequest") -> None:
        entry = self.ledger.dispatch(request.request_id, worker.name, worker.epoch)
        item = DispatchItem(
            request=request, epoch=worker.epoch, dispatched_at=self.clock()
        )
        worker.push(item)
        self.dispatched += 1
        # Events carry the ledger seq, not the raw request id: request
        # ids are process-global, so seqs keep logs replay-identical.
        self._emit(
            "scheduler.dispatch",
            worker=worker.name,
            request=entry.seq,
            object=request.object_id,
            fn=request.fn_name,
        )

    def flush_unassigned(self) -> None:
        if not self._unassigned:
            return
        parked = list(self._unassigned)
        self._unassigned.clear()
        for request in parked:
            self.route(request)

    def reroute(self, worker_name: str, items: list[DispatchItem]) -> int:
        """Requeue ``items`` taken off ``worker_name`` and route each one
        that was still dispatched there (the ledger's requeue guard drops
        completions that won the race and entries already moved)."""
        moved = 0
        for item in items:
            if self.ledger.requeue(item.request.request_id, worker_name):
                moved += 1
                self.route(item.request)
        return moved

    def complete(
        self,
        worker_name: str,
        request: "InvocationRequest",
        result: "InvocationResult",
    ) -> bool:
        """Record a worker's completion.  First completion wins;
        duplicates (a fenced attempt racing its redispatched twin) are
        suppressed.  Returns True when delivered."""
        entry = self.ledger.entry(request.request_id)
        first = self.ledger.complete(request.request_id, result.ok, self.clock())
        if not first:
            self._emit(
                "scheduler.suppressed",
                worker=worker_name,
                request=entry.seq if entry is not None else -1,
            )
            return False
        self.delivered += 1
        self._emit(
            "scheduler.complete",
            worker=worker_name,
            request=entry.seq if entry is not None else -1,
            ok=result.ok,
        )
        if self.on_complete is not None:
            self.on_complete(request, result)
        return True

    # -- queries -------------------------------------------------------------

    @property
    def parked(self) -> int:
        return len(self._unassigned)

    @property
    def outstanding(self) -> int:
        return len(self.ledger.outstanding())

    @property
    def live_workers(self) -> int:
        return sum(
            1 for worker in self.workers.values() if not worker.machine.is_dead
        )

    def stop_report(self) -> dict[str, int]:
        """What a transport's ``stop()`` owes its caller: submissions not
        fully processed, with the parked subset broken out."""
        return {"pending": self.outstanding, "parked": self.parked}

"""Worker-pool control plane: scheduler, workers, run-state ledger.

See ``docs/scheduler.md`` for the protocol and the invariants the
conformance suite (``tests/conformance/``) enforces.
"""

from repro.scheduler.ledger import EntryState, InvocationLedger, LedgerEntry
from repro.scheduler.plane import SchedulerConfig, SchedulerPlane
from repro.scheduler.state import (
    PHASE,
    TRANSITIONS,
    Transition,
    WorkerState,
    WorkerStateMachine,
)
from repro.scheduler.transport import DispatchCore, FrameDecoder, rendezvous_score
from repro.scheduler.worker import DispatchItem, SimWorker

__all__ = [
    "DispatchCore",
    "FrameDecoder",
    "rendezvous_score",
    "EntryState",
    "InvocationLedger",
    "LedgerEntry",
    "SchedulerConfig",
    "SchedulerPlane",
    "PHASE",
    "TRANSITIONS",
    "Transition",
    "WorkerState",
    "WorkerStateMachine",
    "DispatchItem",
    "SimWorker",
]

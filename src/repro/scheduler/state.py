"""The worker lifecycle state machine.

Workers progress through typed states mirroring the register →
heartbeat → drain protocol of a scheduler/worker control plane:

.. code-block:: text

    REGISTERED ──► READY ◄──► DEGRADED
                     │            │
                     ▼            ▼
                  DRAINING ─────► DEAD

The machine is *phase-monotone*: each state belongs to a lifecycle
phase (joining=0, active=1, leaving=2, gone=3) and no legal transition
ever decreases the phase.  READY ⇄ DEGRADED oscillation is allowed —
both are phase 1, a worker whose heartbeats resume is rebound — but a
worker that started draining can never serve again, and DEAD is
terminal.  The conformance suite asserts this invariant over every
recorded transition history.

Transitions are validated: an illegal edge raises
:class:`~repro.errors.SchedulingError` and leaves the state unchanged,
so a buggy control-plane caller cannot corrupt a worker record.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SchedulingError

__all__ = [
    "WorkerState",
    "PHASE",
    "TRANSITIONS",
    "Transition",
    "WorkerStateMachine",
]


class WorkerState(str, enum.Enum):
    """Lifecycle states of one worker registration (one epoch)."""

    REGISTERED = "REGISTERED"
    READY = "READY"
    DEGRADED = "DEGRADED"
    DRAINING = "DRAINING"
    DEAD = "DEAD"


#: Lifecycle phase of each state.  Legal transitions never decrease it.
PHASE: dict[WorkerState, int] = {
    WorkerState.REGISTERED: 0,
    WorkerState.READY: 1,
    WorkerState.DEGRADED: 1,
    WorkerState.DRAINING: 2,
    WorkerState.DEAD: 3,
}

#: The legal edges.  Everything may crash (→ DEAD) at any time; only
#: DEGRADED may heal back to READY; DRAINING admits no return.
TRANSITIONS: dict[WorkerState, frozenset[WorkerState]] = {
    WorkerState.REGISTERED: frozenset({WorkerState.READY, WorkerState.DEAD}),
    WorkerState.READY: frozenset(
        {WorkerState.DEGRADED, WorkerState.DRAINING, WorkerState.DEAD}
    ),
    WorkerState.DEGRADED: frozenset(
        {WorkerState.READY, WorkerState.DRAINING, WorkerState.DEAD}
    ),
    WorkerState.DRAINING: frozenset({WorkerState.DEAD}),
    WorkerState.DEAD: frozenset(),
}


@dataclass(frozen=True)
class Transition:
    """One recorded state change (simulated time + reason)."""

    at: float
    source: WorkerState
    target: WorkerState
    reason: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "at": self.at,
            "from": self.source.value,
            "to": self.target.value,
            "reason": self.reason,
        }


class WorkerStateMachine:
    """Validated, history-keeping state holder for one worker epoch."""

    def __init__(self, initial: WorkerState = WorkerState.REGISTERED) -> None:
        self.state = initial
        self.history: list[Transition] = []

    # -- queries -----------------------------------------------------------

    @property
    def phase(self) -> int:
        return PHASE[self.state]

    @property
    def is_dead(self) -> bool:
        return self.state is WorkerState.DEAD

    @property
    def is_serving(self) -> bool:
        """True while the worker may *execute* work (READY/DEGRADED/
        DRAINING — a draining worker finishes what it holds)."""
        return self.state in (
            WorkerState.READY,
            WorkerState.DEGRADED,
            WorkerState.DRAINING,
        )

    @property
    def is_dispatchable(self) -> bool:
        """True only in READY: the single state new work may be sent to."""
        return self.state is WorkerState.READY

    def can_transition(self, target: WorkerState) -> bool:
        return target in TRANSITIONS[self.state]

    # -- mutation ----------------------------------------------------------

    def transition(self, target: WorkerState, at: float, reason: str = "") -> Transition:
        """Move to ``target``; raises :class:`SchedulingError` on an
        illegal edge (state is left unchanged)."""
        if not self.can_transition(target):
            raise SchedulingError(
                f"illegal worker transition {self.state.value} -> {target.value}"
                + (f" ({reason})" if reason else "")
            )
        record = Transition(at=at, source=self.state, target=target, reason=reason)
        self.state = target
        self.history.append(record)
        return record

    # -- invariants --------------------------------------------------------

    def is_monotone(self) -> bool:
        """True when the recorded history never decreased the phase and
        used only legal edges — the conformance suite's core worker
        invariant."""
        state = self.history[0].source if self.history else self.state
        for step in self.history:
            if step.source is not state:
                return False
            if step.target not in TRANSITIONS[step.source]:
                return False
            if PHASE[step.target] < PHASE[step.source]:
                return False
            state = step.target
        return state is self.state

"""The simulated worker runtime.

A :class:`SimWorker` is the worker half of the control-plane protocol,
modeled as sim-kernel processes (the same way pods and flushers are):

* an **activation** process — registration delay, then one timed
  package install per deployed class, then the READY report;
* a **heartbeat** process — periodic beats to the scheduler, which
  chaos can suppress (``HeartbeatLoss``) without stopping execution,
  producing the zombie-worker case the scheduler must fence;
* a **work loop** — serially drains the worker's dispatch queue
  through the invocation engine, so all invocations routed to one
  worker (and therefore all invocations of one object, which hash to
  one worker) execute in order.

Epoch fencing makes crash recovery lossless *and* duplicate-free: every
dispatched item carries the worker's epoch; :meth:`SimWorker.crash`
bumps the epoch before the scheduler requeues the in-flight item, so
when the orphaned execution eventually completes, the work loop
discards its result instead of reporting a second completion.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator

from repro.invoker.request import InvocationResult
from repro.scheduler.state import WorkerState, WorkerStateMachine
from repro.scheduler.transport.core import DispatchItem
from repro.sim.kernel import Environment, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.orchestrator.pod import Pod
    from repro.scheduler.plane import SchedulerPlane

__all__ = ["DispatchItem", "SimWorker"]


class SimWorker:
    """One registered worker: state machine + queue + sim processes."""

    def __init__(
        self,
        env: Environment,
        name: str,
        plane: "SchedulerPlane",
        pod: "Pod | None" = None,
    ) -> None:
        self.env = env
        self.name = name
        self.plane = plane
        self.pod = pod
        self.config = plane.config
        self.machine = WorkerStateMachine()
        self.epoch = 0
        self.installed: set[str] = set()
        self.queue: deque[DispatchItem] = deque()
        self.in_flight: DispatchItem | None = None
        self.last_beat = env.now
        self.heartbeats_sent = 0
        self.dispatched_count = 0
        self.completed_count = 0
        self.slow_factor = 1.0
        self.registered_at = env.now
        self._halted = False
        self._suppress_until = -1.0
        self._pending_classes: deque[str] = deque(plane.deployed_classes())
        self._wake: Event | None = None
        env.process(self._activate())
        env.process(self._heartbeat_loop())
        env.process(self._work_loop())

    # -- identity ----------------------------------------------------------

    @property
    def node(self) -> str | None:
        return self.pod.node if self.pod is not None else None

    @property
    def state(self) -> WorkerState:
        return self.machine.state

    def describe(self) -> dict[str, Any]:
        return {
            "worker": self.name,
            "state": self.state.value,
            "node": self.node,
            "epoch": self.epoch,
            "installed": sorted(self.installed),
            "queue_depth": len(self.queue),
            "in_flight": self.in_flight is not None,
            "dispatched": self.dispatched_count,
            "completed": self.completed_count,
            "heartbeats": self.heartbeats_sent,
        }

    # -- scheduler-facing control ------------------------------------------

    def push(self, item: DispatchItem) -> None:
        """Accept one dispatched item onto the local queue."""
        self.queue.append(item)
        self.dispatched_count += 1
        self._wake_up()

    def install(self, cls: str) -> None:
        """Install a class-runtime binding (timed package install)."""
        if cls in self.installed or cls in self._pending_classes:
            return
        if self.machine.state is WorkerState.REGISTERED:
            # Still activating: the activation process drains the list.
            self._pending_classes.append(cls)
        else:
            self.env.process(self._install_one(cls))

    def take_queue(self) -> list[DispatchItem]:
        """Hand back everything queued (drain/rebind handoff)."""
        items = list(self.queue)
        self.queue.clear()
        return items

    def drain(self) -> None:
        """Stop accepting; the work loop finishes in-flight then reports
        itself drained.  (The scheduler hands off the queue first.)"""
        self._wake_up()

    def crash(self) -> list[DispatchItem]:
        """Die immediately: fence the epoch and return every item this
        worker still held (queued + in-flight) for the scheduler to
        requeue.  The orphaned in-flight execution, if any, completes in
        the simulation but its result is discarded by the fence."""
        self.epoch += 1
        dropped = self.take_queue()
        if self.in_flight is not None:
            dropped.append(self.in_flight)
        self._wake_up()
        return dropped

    def halt(self) -> None:
        """Plane shutdown: end this worker's processes at their next
        scheduling point without emitting events or changing state, so
        nothing of the plane stays scheduled on the kernel."""
        self._halted = True
        self._wake_up()

    def suppress_heartbeats(self, duration_s: float) -> None:
        self._suppress_until = self.env.now + duration_s

    def resume_heartbeats(self) -> None:
        self._suppress_until = self.env.now

    # -- sim processes ------------------------------------------------------

    def _wake_up(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed(None)

    def _activate(self) -> Generator:
        if self.config.register_delay_s:
            yield self.env.timeout(self.config.register_delay_s)
        while self._pending_classes and not self._halted:
            cls = self._pending_classes.popleft()
            yield from self._install(cls)
        if self.machine.state is WorkerState.REGISTERED and not self._halted:
            self.plane.on_worker_ready(self)

    def _install_one(self, cls: str) -> Generator:
        yield from self._install(cls)

    def _install(self, cls: str) -> Generator:
        if self.machine.is_dead or cls in self.installed:
            return
        if self.config.install_delay_s:
            yield self.env.timeout(self.config.install_delay_s)
        else:
            yield self.env.timeout(0)
        if self.machine.is_dead or self._halted or cls in self.installed:
            return
        self.installed.add(cls)
        self.plane.on_worker_installed(self, cls)

    def _heartbeat_loop(self) -> Generator:
        while not self.machine.is_dead and not self._halted:
            yield self.env.timeout(self.config.heartbeat_interval_s)
            if self.machine.is_dead or self._halted:
                return
            if self.env.now < self._suppress_until:
                continue
            self.heartbeats_sent += 1
            self.plane.heartbeat(self)

    def _work_loop(self) -> Generator:
        while True:
            if self.machine.is_dead or self._halted:
                return
            if not self.queue:
                if (
                    self.machine.state is WorkerState.DRAINING
                    and self.in_flight is None
                ):
                    self.plane.on_worker_drained(self)
                    return
                self._wake = self.env.event()
                yield self._wake
                self._wake = None
                continue
            item = self.queue.popleft()
            self.in_flight = item
            overhead = self.config.dispatch_overhead_s * self.slow_factor
            if overhead:
                yield self.env.timeout(overhead)
            result: InvocationResult = yield self.plane.engine.invoke(item.request)
            self.in_flight = None
            if self._halted:
                return
            if self.machine.is_dead or item.epoch != self.epoch:
                # Fenced: the scheduler requeued this item when it
                # declared us dead; a redispatched attempt owns it now.
                return
            self.completed_count += 1
            self.plane.report_completion(self, item, result)

"""The scheduler's run-state ledger: every accepted invocation, tracked
from acceptance to its single completion.

The ledger is what makes the worker protocol lossless: an invocation
accepted at submit time stays ``ACCEPTED`` (parked, awaiting an
eligible worker) or ``DISPATCHED`` (on exactly one worker's queue) until
its first completion arrives, at which point it is ``COMPLETED``
forever.  Requeues (drain handoff, crash recovery, rebind away from a
degraded worker) move a dispatched entry back to ``ACCEPTED`` and bump
its attempt count; a completion reported for an entry that is already
completed — a fenced worker's orphan attempt racing a redispatched one —
is *suppressed* and counted, never delivered twice.

:meth:`InvocationLedger.audit` is the conformance harness's ground
truth: ``accepted == completed + outstanding`` must hold at all times,
and after a scenario settles ``outstanding`` must be zero (nothing
dropped) with ``delivered == completed`` (nothing double-delivered).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any

from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.invoker.request import InvocationRequest

__all__ = ["EntryState", "LedgerEntry", "InvocationLedger"]


class EntryState(str, enum.Enum):
    ACCEPTED = "ACCEPTED"
    DISPATCHED = "DISPATCHED"
    COMPLETED = "COMPLETED"


class LedgerEntry:
    """Run state of one accepted invocation."""

    __slots__ = (
        "request",
        "seq",
        "state",
        "worker",
        "epoch",
        "attempts",
        "accepted_at",
        "completed_at",
        "ok",
    )

    def __init__(
        self, request: "InvocationRequest", accepted_at: float, seq: int = 0
    ) -> None:
        self.request = request
        #: Acceptance order within this ledger (1-based).  Events embed
        #: this instead of the raw request id: request ids come from a
        #: process-global counter, so they are unique but not
        #: reproducible across platform instances — the seq is both.
        self.seq = seq
        self.state = EntryState.ACCEPTED
        self.worker: str | None = None
        self.epoch: int | None = None
        self.attempts = 0
        self.accepted_at = accepted_at
        self.completed_at: float | None = None
        self.ok: bool | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request.request_id,
            "seq": self.seq,
            "state": self.state.value,
            "worker": self.worker,
            "attempts": self.attempts,
            "accepted_at": self.accepted_at,
            "completed_at": self.completed_at,
            "ok": self.ok,
        }


class InvocationLedger:
    """Exactly-once completion bookkeeping over accepted invocations."""

    def __init__(self) -> None:
        self._entries: dict[str, LedgerEntry] = {}
        self.accepted = 0
        self.completed = 0
        self.requeues = 0
        self.suppressed = 0

    # -- transitions -------------------------------------------------------

    def accept(self, request: "InvocationRequest", at: float) -> LedgerEntry:
        request_id = request.request_id
        if request_id in self._entries:
            raise SchedulingError(f"request {request_id!r} already accepted")
        self.accepted += 1
        entry = LedgerEntry(request, at, seq=self.accepted)
        self._entries[request_id] = entry
        return entry

    def dispatch(self, request_id: str, worker: str, epoch: int) -> LedgerEntry:
        entry = self._entry(request_id)
        if entry.state is not EntryState.ACCEPTED:
            raise SchedulingError(
                f"cannot dispatch {request_id!r} in state {entry.state.value}"
            )
        entry.state = EntryState.DISPATCHED
        entry.worker = worker
        entry.epoch = epoch
        entry.attempts += 1
        return entry

    def requeue(self, request_id: str, worker: str) -> bool:
        """Hand a dispatched entry back for redispatch.

        Returns False — a no-op — unless the entry is currently
        dispatched *to that worker*: a completion that beat the requeue
        to the ledger must win, and an entry already moved to another
        worker must not be stolen back.
        """
        entry = self._entries.get(request_id)
        if (
            entry is None
            or entry.state is not EntryState.DISPATCHED
            or entry.worker != worker
        ):
            return False
        entry.state = EntryState.ACCEPTED
        entry.worker = None
        entry.epoch = None
        self.requeues += 1
        return True

    def complete(self, request_id: str, ok: bool, at: float) -> bool:
        """Record a completion.  Returns True when this is the *first*
        completion (deliver it); False when a completion was already
        delivered (suppress the duplicate)."""
        entry = self._entry(request_id)
        if entry.state is EntryState.COMPLETED:
            self.suppressed += 1
            return False
        entry.state = EntryState.COMPLETED
        entry.completed_at = at
        entry.ok = ok
        self.completed += 1
        return True

    def _entry(self, request_id: str) -> LedgerEntry:
        entry = self._entries.get(request_id)
        if entry is None:
            raise SchedulingError(f"request {request_id!r} was never accepted")
        return entry

    # -- queries -----------------------------------------------------------

    def entry(self, request_id: str) -> LedgerEntry | None:
        return self._entries.get(request_id)

    def outstanding(self) -> list[LedgerEntry]:
        """Accepted-or-dispatched entries, in acceptance order."""
        return [
            entry
            for entry in self._entries.values()
            if entry.state is not EntryState.COMPLETED
        ]

    def dispatched_to(self, worker: str) -> list[LedgerEntry]:
        return [
            entry
            for entry in self._entries.values()
            if entry.state is EntryState.DISPATCHED and entry.worker == worker
        ]

    def audit(self) -> dict[str, int]:
        """Conservation counters; ``accepted == completed + outstanding``
        holds by construction."""
        outstanding = len(self.outstanding())
        return {
            "accepted": self.accepted,
            "completed": self.completed,
            "outstanding": outstanding,
            "requeues": self.requeues,
            "suppressed": self.suppressed,
        }

    def __len__(self) -> int:
        return len(self._entries)

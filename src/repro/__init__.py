"""repro — a from-scratch reproduction of the Object-as-a-Service (OaaS)
serverless paradigm and the Oparaca platform (ICDCS 2024 tutorial).

Public entry points:

* :class:`Oparaca` / :class:`PlatformConfig` — the platform facade.
* :mod:`repro.model` — classes, functions, NFRs, dataflow, packages.
* :mod:`repro.crm` — class-runtime templates and the optimizer.
* :mod:`repro.bench` — the experiment harness reproducing the paper's
  evaluation (see DESIGN.md / EXPERIMENTS.md).

Quickstart::

    from repro import Oparaca

    oparaca = Oparaca()

    @oparaca.function("img/resize", service_time_s=0.004)
    def resize(ctx):
        ctx.state["width"] = ctx.payload["width"]
        return {"resized": True}

    oparaca.deploy(open("package.yml").read())
    obj = oparaca.new_object("Image")
    print(oparaca.invoke(obj, "resize", {"width": 640}).output)
"""

from repro.errors import OaasError
from repro.invoker.request import InvocationRequest, InvocationResult
from repro.model.pkg import Package, load_package, loads_package, parse_package
from repro.platform.oparaca import Oparaca, PlatformConfig

__version__ = "1.0.0"

__all__ = [
    "Oparaca",
    "PlatformConfig",
    "OaasError",
    "InvocationRequest",
    "InvocationResult",
    "Package",
    "load_package",
    "loads_package",
    "parse_package",
    "__version__",
]

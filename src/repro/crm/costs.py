"""Cost accounting — enforcement for the ``budget`` constraint (§II-C).

The paper's deployment constraints include "budget"; templates already
route budget-capped classes onto scale-to-zero runtimes, and this
module closes the loop at run time: a :class:`CostTracker` meters each
class's accrued spend (function replica-hours plus its share of
document-DB work), and the requirement optimizer consults the projected
monthly run rate before scaling a budget-capped class up.

Attribution is exact, not estimated: every class runtime has its own
DB collection, and the document store meters work units per collection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crm.runtime import ClassRuntime

from repro.sim.kernel import Environment
from repro.storage.kv import DocumentStore

__all__ = [
    "CostModel",
    "ClassCostMeter",
    "CostTracker",
    "budget_tier",
    "TIER_ECONOMY",
    "TIER_STANDARD",
    "TIER_PREMIUM",
]

HOURS_PER_MONTH = 730.0

#: Budget tiers consumed by the QoS plane (shed order, fair-share weight).
TIER_ECONOMY = 1
TIER_STANDARD = 2
TIER_PREMIUM = 3

#: Monthly-budget floors for the paid tiers.
PREMIUM_BUDGET_USD = 100.0
STANDARD_BUDGET_USD = 25.0


def budget_tier(budget_usd_per_month: float | None) -> int:
    """Map a class's declared monthly budget to a service tier.

    The ``budget`` constraint (§II-C) caps spend, but it also signals
    how much the owner is paying for the deployment — which is what the
    QoS plane needs when overload forces it to rank classes: capped
    cheap deployments brown out first, premium ones last.  No declared
    budget means the default (standard) tier, matching the constraint's
    "unrestricted" semantics.
    """
    if budget_usd_per_month is None:
        return TIER_STANDARD
    if budget_usd_per_month >= PREMIUM_BUDGET_USD:
        return TIER_PREMIUM
    if budget_usd_per_month >= STANDARD_BUDGET_USD:
        return TIER_STANDARD
    return TIER_ECONOMY


@dataclass(frozen=True)
class CostModel:
    """Prices (deliberately cloud-shaped, not provider-exact)."""

    replica_usd_per_hour: float = 0.048  # ~a small container
    db_usd_per_million_units: float = 1.25
    object_storage_usd_per_gb_month: float = 0.023


class ClassCostMeter:
    """Accrues one class's spend over simulated time."""

    def __init__(
        self,
        env: Environment,
        cls: str,
        model: CostModel,
        replica_fn: Callable[[], int],
        db_units_fn: Callable[[], float],
    ) -> None:
        self.env = env
        self.cls = cls
        self.model = model
        self.replica_fn = replica_fn
        self.db_units_fn = db_units_fn
        self.deployed_at = env.now
        self.replica_seconds = 0.0
        self._last_observed = env.now
        self._last_replicas = replica_fn()

    def observe(self) -> None:
        """Integrate replica time up to now (piecewise-constant)."""
        now = self.env.now
        self.replica_seconds += self._last_replicas * (now - self._last_observed)
        self._last_observed = now
        self._last_replicas = self.replica_fn()

    def accrued_usd(self) -> float:
        """Total spend since deployment."""
        self.observe()
        compute = self.replica_seconds / 3600.0 * self.model.replica_usd_per_hour
        db = self.db_units_fn() / 1e6 * self.model.db_usd_per_million_units
        return compute + db

    def monthly_run_rate_usd(self, extra_replicas: int = 0) -> float:
        """Projected monthly spend at the *current* deployment shape.

        ``extra_replicas`` lets the optimizer price a prospective
        scale-up before committing to it.
        """
        self.observe()
        replicas = self._last_replicas + extra_replicas
        compute = replicas * self.model.replica_usd_per_hour * HOURS_PER_MONTH
        elapsed = self.env.now - self.deployed_at
        if elapsed > 0:
            db_rate = self.db_units_fn() / elapsed  # units/s since deploy
        else:
            db_rate = 0.0
        db = db_rate * 3600.0 * HOURS_PER_MONTH / 1e6 * self.model.db_usd_per_million_units
        return compute + db


class CostTracker:
    """Platform-wide cost meters, one per deployed class."""

    def __init__(
        self, env: Environment, store: DocumentStore, model: CostModel | None = None
    ) -> None:
        self.env = env
        self.store = store
        self.model = model or CostModel()
        self._meters: dict[str, ClassCostMeter] = {}

    def register(self, runtime: "ClassRuntime") -> ClassCostMeter:
        """Start metering a class runtime (idempotent per class)."""
        meter = self._meters.get(runtime.cls)
        if meter is not None:
            return meter
        collection = runtime.dht.collection

        def replica_count(rt=runtime) -> int:
            return sum(svc.replicas for svc in rt.services.values())

        def db_units(coll=collection) -> float:
            return self.store.units_for(coll)

        meter = ClassCostMeter(self.env, runtime.cls, self.model, replica_count, db_units)
        self._meters[runtime.cls] = meter
        return meter

    def unregister(self, cls: str) -> None:
        self._meters.pop(cls, None)

    def meter(self, cls: str) -> ClassCostMeter | None:
        return self._meters.get(cls)

    def observe_all(self) -> None:
        for meter in self._meters.values():
            meter.observe()

    def report(self) -> list[dict[str, float | str]]:
        """Per-class accrued spend and projected monthly run rate."""
        rows: list[dict[str, float | str]] = []
        for cls in sorted(self._meters):
            meter = self._meters[cls]
            rows.append(
                {
                    "class": cls,
                    "accrued_usd": round(meter.accrued_usd(), 6),
                    "monthly_run_rate_usd": round(meter.monthly_run_rate_usd(), 2),
                }
            )
        return rows

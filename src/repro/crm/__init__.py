"""Control plane: class-runtime templates, runtimes, manager, optimizer."""

from repro.crm.costs import ClassCostMeter, CostModel, CostTracker
from repro.crm.manager import ClassRuntimeManager
from repro.crm.optimizer import OptimizerDecision, RequirementOptimizer
from repro.crm.runtime import ClassRuntime
from repro.crm.template import (
    ClassRuntimeTemplate,
    RuntimeConfig,
    TemplateCatalog,
    TemplateSelector,
    default_catalog,
)

__all__ = [
    "ClassCostMeter",
    "CostModel",
    "CostTracker",
    "ClassRuntimeManager",
    "OptimizerDecision",
    "RequirementOptimizer",
    "ClassRuntime",
    "ClassRuntimeTemplate",
    "RuntimeConfig",
    "TemplateCatalog",
    "TemplateSelector",
    "default_catalog",
]

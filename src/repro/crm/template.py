"""Class-runtime templates (paper §III-B, Fig. 2).

"Oparaca introduces *class runtime template*, which provides a
configurable class runtime design optimized for a specific set of
requirement combinations.  When deploying a class, Oparaca will choose
from the list the most suitable template ... and then follow the
template design to create a dedicated class runtime for this class."

A template is a *selector* (which NFR combinations it suits) plus a
*runtime configuration* (which engine, placement policy, replication,
persistence, and batching the runtime is built with) plus a provider-
tunable *priority* that breaks ties between matching templates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TemplateSelectionError, ValidationError
from repro.invoker.router import PlacementPolicy
from repro.model.nfr import NonFunctionalRequirements, _checked_number
from repro.storage.read_path import ReadBatchConfig
from repro.storage.write_behind import WriteBehindConfig

__all__ = [
    "TemplateSelector",
    "RuntimeConfig",
    "ClassRuntimeTemplate",
    "TemplateCatalog",
    "default_catalog",
]


@dataclass(frozen=True)
class TemplateSelector:
    """The requirement combination a template is designed for.

    Every set field is a necessary condition; an all-default selector
    matches anything (the fallback template).
    """

    persistent: bool | None = None
    min_throughput_rps: float | None = None
    requires_latency_bound: bool = False
    min_availability: float | None = None
    requires_budget: bool = False

    def matches(self, nfr: NonFunctionalRequirements) -> bool:
        if self.persistent is not None and nfr.constraint.persistent != self.persistent:
            return False
        if self.min_throughput_rps is not None:
            declared = nfr.qos.throughput_rps
            if declared is None or declared < self.min_throughput_rps:
                return False
        if self.requires_latency_bound and nfr.qos.latency_ms is None:
            return False
        if self.min_availability is not None:
            declared = nfr.qos.availability
            if declared is None or declared < self.min_availability:
                return False
        if self.requires_budget and nfr.constraint.budget_usd_per_month is None:
            return False
        return True


@dataclass(frozen=True)
class RuntimeConfig:
    """The runtime design a template stamps out.

    Attributes:
        engine: ``"knative"`` (autoscaled, scale-to-zero capable) or
            ``"deployment"`` (pre-provisioned, no per-request serverless
            overhead — the bypass path).
        placement: how invocations are routed relative to object data.
        replication: DHT copies of each record.
        persistent: whether the class's DHT cache write-behinds to the
            document store.
        write_behind: batching configuration for the flusher.
        min_scale_override: pre-warmed replicas per function (``None``
            keeps the function's own provision spec).
        dht_max_entries: per-node cap on resident object records
            (LRU-evicted; ``None`` = unbounded).
        read_coalescing: single-flight store reads on DHT misses
            (concurrent misses on one key share one store read).
        read_batch: miss-read batching window configuration (``None``
            = point reads).
        near_cache_entries: per-node near cache of remotely-fetched
            records for non-owner callers (``0`` = disabled).
        snapshot_interval_s: periodic-cut interval the durability plane
            uses for ``persistence: standard`` classes stamped from this
            template (``None`` = plane-wide default).
        retention_s: how long superseded snapshot generations are kept
            before garbage collection (``None`` = plane-wide default /
            keep forever).
    """

    engine: str = "knative"
    placement: PlacementPolicy = PlacementPolicy.LOCALITY
    replication: int = 1
    persistent: bool = True
    write_behind: WriteBehindConfig = field(default_factory=WriteBehindConfig)
    min_scale_override: int | None = None
    dht_max_entries: int | None = None
    read_coalescing: bool = False
    read_batch: ReadBatchConfig | None = None
    near_cache_entries: int = 0
    snapshot_interval_s: float | None = None
    retention_s: float | None = None

    def __post_init__(self) -> None:
        if self.engine not in ("knative", "deployment"):
            raise ValidationError(
                f"unknown engine {self.engine!r}; expected 'knative' or 'deployment'"
            )
        if self.replication < 1:
            raise ValidationError(f"replication must be >= 1, got {self.replication}")
        if self.min_scale_override is not None and self.min_scale_override < 0:
            raise ValidationError(
                f"min_scale_override must be >= 0, got {self.min_scale_override}"
            )
        if self.near_cache_entries < 0:
            raise ValidationError(
                f"near_cache_entries must be >= 0, got {self.near_cache_entries}"
            )
        if self.snapshot_interval_s is not None:
            if _checked_number("snapshot_interval_s", self.snapshot_interval_s) <= 0:
                raise ValidationError(
                    f"snapshot_interval_s must be > 0, got {self.snapshot_interval_s}"
                )
        if self.retention_s is not None:
            if _checked_number("retention_s", self.retention_s) <= 0:
                raise ValidationError(
                    f"retention_s must be > 0, got {self.retention_s}"
                )


@dataclass(frozen=True)
class ClassRuntimeTemplate:
    """A named, prioritized (selector → runtime design) rule."""

    name: str
    selector: TemplateSelector = field(default_factory=TemplateSelector)
    config: RuntimeConfig = field(default_factory=RuntimeConfig)
    priority: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("template name must be non-empty")


class TemplateCatalog:
    """The provider's ordered list of runtime templates."""

    def __init__(self, templates: list[ClassRuntimeTemplate]) -> None:
        if not templates:
            raise ValidationError("template catalog cannot be empty")
        names = [t.name for t in templates]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValidationError(f"duplicate template names: {sorted(duplicates)}")
        self.templates = list(templates)

    def select(self, nfr: NonFunctionalRequirements) -> ClassRuntimeTemplate:
        """The highest-priority template matching ``nfr``.

        Ties break on template name for determinism.  Raises
        :class:`TemplateSelectionError` when nothing matches (providers
        normally include a catch-all default).
        """
        matching = [t for t in self.templates if t.selector.matches(nfr)]
        if not matching:
            raise TemplateSelectionError(
                f"no class-runtime template matches requirements {nfr!r}; "
                f"catalog: {[t.name for t in self.templates]}"
            )
        return min(matching, key=lambda t: (-t.priority, t.name))

    def template(self, name: str) -> ClassRuntimeTemplate:
        for candidate in self.templates:
            if candidate.name == name:
                return candidate
        raise TemplateSelectionError(f"no template named {name!r}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.templates)


def default_catalog() -> TemplateCatalog:
    """The built-in provider catalog.

    Ordered by priority: the most specific requirement combinations win
    over the catch-all default, mirroring Fig. 2's "templates customized
    for various deployment scenarios".
    """
    return TemplateCatalog(
        [
            ClassRuntimeTemplate(
                name="in-memory-ephemeral",
                selector=TemplateSelector(persistent=False),
                config=RuntimeConfig(engine="knative", persistent=False),
                priority=30,
                description=(
                    "Non-persistent classes: state lives only in the DHT, "
                    "no database write-behind at all."
                ),
            ),
            ClassRuntimeTemplate(
                name="low-latency",
                selector=TemplateSelector(requires_latency_bound=True),
                config=RuntimeConfig(
                    engine="deployment",
                    placement=PlacementPolicy.LOCALITY,
                    min_scale_override=2,
                    write_behind=WriteBehindConfig(batch_size=100, linger_s=0.005),
                ),
                priority=20,
                description=(
                    "Latency-bound classes: pre-warmed plain deployments "
                    "(no activator hop, no cold starts), locality routing."
                ),
            ),
            ClassRuntimeTemplate(
                name="high-availability",
                selector=TemplateSelector(min_availability=0.999),
                config=RuntimeConfig(engine="knative", replication=2, min_scale_override=2),
                priority=15,
                description="Three-nines classes: replicated DHT entries and warm spares.",
            ),
            ClassRuntimeTemplate(
                name="high-throughput",
                selector=TemplateSelector(min_throughput_rps=500.0),
                config=RuntimeConfig(
                    engine="deployment",
                    placement=PlacementPolicy.LOCALITY,
                    write_behind=WriteBehindConfig(batch_size=200, linger_s=0.02),
                ),
                priority=10,
                description=(
                    "Throughput-heavy classes: bypass the serverless data "
                    "path and batch database writes aggressively."
                ),
            ),
            ClassRuntimeTemplate(
                name="cost-saver",
                selector=TemplateSelector(requires_budget=True),
                config=RuntimeConfig(engine="knative"),
                priority=5,
                description="Budget-capped classes: scale-to-zero everything.",
            ),
            ClassRuntimeTemplate(
                name="default",
                selector=TemplateSelector(),
                config=RuntimeConfig(engine="knative"),
                priority=0,
                description="Catch-all: Knative runtime with standard batching.",
            ),
        ]
    )

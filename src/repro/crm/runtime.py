"""A deployed class runtime: the per-class slice of the platform.

Realizing a class (Fig. 2) provisions: a DHT cache configured per the
selected template (replication, persistence, batching), a placement
router, and one FaaS service per TASK method.  MACRO and BUILTIN
methods execute inside the invoker and need no service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import UnknownFunctionError
from repro.faas.engine import FunctionService
from repro.crm.template import ClassRuntimeTemplate
from repro.invoker.resilience import ResiliencePolicy
from repro.invoker.router import ObjectRouter
from repro.model.resolver import ResolvedClass
from repro.storage.dht import Dht

__all__ = ["ClassRuntime"]


@dataclass
class ClassRuntime:
    """Everything provisioned for one deployed class."""

    cls: str
    resolved: ResolvedClass
    template: ClassRuntimeTemplate
    dht: Dht
    router: ObjectRouter
    services: dict[str, FunctionService] = field(default_factory=dict)
    engine_name: str = "knative"
    #: Data-plane fault-tolerance knobs, derived from the class's NFRs.
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)
    #: Durability policy derived from the ``persistence`` constraint;
    #: ``None`` until (and unless) the durability plane attaches.
    durability: Any | None = None

    def service(self, fn_name: str) -> FunctionService:
        svc = self.services.get(fn_name)
        if svc is None:
            raise UnknownFunctionError(
                f"class {self.cls!r} has no deployed service for "
                f"{fn_name!r}; services: {sorted(self.services)}"
            )
        return svc

    def total_replicas(self) -> int:
        return sum(svc.replicas for svc in self.services.values())

    def describe(self) -> dict[str, Any]:
        """A human-readable summary (used by the CLI and tests)."""
        summary = self._describe_base()
        if self.durability is not None:
            summary["durability"] = self.durability.mode
        return summary

    def _describe_base(self) -> dict[str, Any]:
        return {
            "class": self.cls,
            "template": self.template.name,
            "engine": self.engine_name,
            "placement": self.router.policy.value,
            "replication": self.dht.model.replication,
            "persistent": self.dht.model.persistent,
            "services": {
                name: {
                    "image": svc.definition.image,
                    "replicas": svc.replicas,
                    "ready": svc.ready_replicas,
                }
                for name, svc in sorted(self.services.items())
            },
            "methods": list(self.resolved.method_names),
        }

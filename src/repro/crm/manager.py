"""The class runtime manager (CRM) — Oparaca's control plane.

Deploying a package (tutorial step 5) walks each class through:
resolve inheritance → select the runtime template matching its NFRs →
provision the class runtime (DHT cache, router, one FaaS service per
TASK method) → register it for the invocation engine.

The manager implements the invoker's
:class:`~repro.invoker.engine.RuntimeDirectory` protocol, so the data
plane always executes against the runtime each class's template built.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

from repro.crm.costs import CostModel, CostTracker
from repro.crm.runtime import ClassRuntime
from repro.crm.template import ClassRuntimeTemplate, TemplateCatalog, default_catalog
from repro.errors import (
    DeploymentError,
    SchedulingError,
    UnknownClassError,
    UnknownFunctionError,
)
from repro.faas.deployment_engine import DeploymentEngine, DeploymentModel
from repro.faas.engine import FunctionService
from repro.faas.knative import KnativeEngine, KnativeModel
from repro.faas.registry import FunctionRegistry
from repro.invoker.resilience import ResiliencePolicy
from repro.invoker.router import ObjectRouter
from repro.model.function import FunctionType
from repro.model.pkg import Package
from repro.model.resolver import ResolvedClass
from repro.monitoring.collector import MonitoringSystem
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Tracer
from repro.orchestrator.cluster import Cluster
from repro.orchestrator.scheduler import Scheduler
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.rng import RngStreams
from repro.storage.dht import Dht, DhtModel
from repro.storage.kv import DocumentStore
from repro.storage.object_store import ObjectStore

__all__ = ["ClassRuntimeManager"]


class ClassRuntimeManager:
    """Deploys classes onto runtimes and serves as the runtime directory."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        scheduler: Scheduler,
        registry: FunctionRegistry,
        store: DocumentStore,
        object_store: ObjectStore,
        network: Network,
        monitoring: MonitoringSystem,
        rng: RngStreams | None = None,
        catalog: TemplateCatalog | None = None,
        knative_model: KnativeModel | None = None,
        deployment_model: DeploymentModel | None = None,
        dht_op_cost_s: float = 0.00002,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.scheduler = scheduler
        self.registry = registry
        self.store = store
        self.object_store = object_store
        self.network = network
        self.monitoring = monitoring
        self.rng = rng or RngStreams(0)
        self.catalog = catalog or default_catalog()
        self.dht_op_cost_s = dht_op_cost_s
        self.tracer = tracer
        self.events = events if events is not None else EventLog(env)
        self.knative = KnativeEngine(
            env, scheduler, registry, knative_model, tracer=tracer, events=self.events
        )
        self.deployment = DeploymentEngine(
            env, scheduler, registry, deployment_model, tracer=tracer, events=self.events
        )
        #: Services exposed to function handlers through ``ctx.service``.
        self.handler_services: dict[str, Any] = {"object_store": object_store}
        self.costs = CostTracker(env, store, CostModel())
        #: The durability plane, set by the platform when enabled; the
        #: CRM attaches every (re)deployed class to it.  ``None`` in the
        #: baseline — deployment takes the original code path.
        self.durability: Any | None = None
        #: The federation plane, set by the platform when enabled; the
        #: placement planner then scores every class's node domain.
        #: ``None`` in the baseline — deployment takes the original
        #: jurisdiction-label path.
        self.federation: Any | None = None
        self._runtimes: dict[str, ClassRuntime] = {}
        self._resolved: dict[str, ResolvedClass] = {}

    # -- deployment -------------------------------------------------------------

    def deploy_package(self, package: Package) -> list[ClassRuntime]:
        """Deploy every class of a package (parents before children)."""
        resolved_all = package.resolved_classes()
        # Deploy shallowest-first so parents exist when children need them.
        order = sorted(resolved_all.values(), key=lambda r: (len(r.ancestry), r.name))
        return [self.deploy_class(resolved) for resolved in order]

    def deploy_class(
        self, resolved: ResolvedClass, template: ClassRuntimeTemplate | None = None
    ) -> ClassRuntime:
        """Provision one class runtime (explicit ``template`` overrides
        catalog selection, used by operators and experiments)."""
        if resolved.name in self._runtimes:
            raise DeploymentError(f"class {resolved.name!r} is already deployed")
        chosen = template or self.catalog.select(resolved.nfr)
        config = chosen.config
        if self.events.enabled:
            self.events.record(
                "template.select",
                cls=resolved.name,
                template=chosen.name,
                engine=config.engine,
                explicit=template is not None,
            )
        # Jurisdiction constraints (§II-C, §VI): the class's state and
        # function pods may only live on nodes in the allowed regions.
        allowed_nodes, node_hints = self._placement_for(resolved)
        dht = Dht(
            self.env,
            allowed_nodes,
            self.network,
            self.store if config.persistent else None,
            DhtModel(
                op_cost_s=self.dht_op_cost_s,
                replication=min(config.replication, len(allowed_nodes)),
                persistent=config.persistent,
                write_behind=config.write_behind,
                max_entries_per_node=config.dht_max_entries,
                read_coalescing=config.read_coalescing,
                read_batch=config.read_batch,
                near_cache_entries=config.near_cache_entries,
            ),
            collection=f"objects.{resolved.name}",
            tracer=self.tracer,
        )
        if config.persistent:
            # Compile the class's declared keySpecs into the store
            # engine's schema so it can maintain secondary indexes
            # (the SQLite engine creates typed columns + indexes; the
            # dict engine just remembers the declaration).
            self.store.register_schema(
                f"objects.{resolved.name}",
                {
                    spec.name: spec.dtype
                    for spec in resolved.state
                    if not spec.is_file
                },
            )
        router = ObjectRouter(dht, config.placement, self.rng)
        services: dict[str, FunctionService] = {}
        try:
            for method in sorted(resolved.methods):
                binding = resolved.methods[method]
                if binding.function.ftype is not FunctionType.TASK:
                    continue
                definition = binding.function
                if config.min_scale_override is not None:
                    provision = dataclasses.replace(
                        definition.provision,
                        min_scale=config.min_scale_override,
                        max_scale=max(
                            definition.provision.max_scale, config.min_scale_override
                        ),
                    )
                    definition = dataclasses.replace(definition, provision=provision)
                engine = self.knative if config.engine == "knative" else self.deployment
                services[method] = engine.deploy(
                    f"{resolved.name}.{method}",
                    definition,
                    services=self.handler_services,
                    node_hints=node_hints,
                )
        except Exception:
            for svc in services.values():
                engine = self.knative if config.engine == "knative" else self.deployment
                engine.delete(svc.name)
            raise
        runtime = ClassRuntime(
            cls=resolved.name,
            resolved=resolved,
            template=chosen,
            dht=dht,
            router=router,
            services=services,
            engine_name=config.engine,
            resilience=ResiliencePolicy.from_nfr(
                resolved.nfr, persistent=config.persistent
            ),
        )
        self._runtimes[resolved.name] = runtime
        self._resolved[resolved.name] = resolved
        self.costs.register(runtime)
        if self.durability is not None:
            self.durability.attach(runtime)
        if self.events.enabled:
            self.events.record(
                "class.deploy",
                cls=resolved.name,
                template=chosen.name,
                engine=config.engine,
                services=len(services),
            )
        return runtime

    def _placement_for(
        self, resolved: ResolvedClass
    ) -> tuple[list[str], list[str] | None]:
        """The class's node domain plus ordered pod-placement hints.

        With the federation plane attached, the placement planner scores
        the domain (jurisdiction hard filter, latency-NFR tier pinning,
        capacity, deterministic tie-breaks).  Without it,
        jurisdiction-constrained classes keep the flat region-label
        filter and unconstrained classes are unrestricted.  Constraint
        names matching no region/zone raise :class:`DeploymentError`
        naming the labels that exist.
        """
        jurisdictions = resolved.nfr.constraint.jurisdictions
        try:
            if self.federation is not None:
                planned = self.federation.placement_nodes(resolved.nfr)
                if not planned:
                    raise DeploymentError(
                        f"class {resolved.name!r} is constrained to jurisdictions "
                        f"{list(jurisdictions)}, but no cluster node sits in a "
                        f"matching zone (regions: {list(self.cluster.regions)})"
                    )
                return list(planned), list(planned)
            if jurisdictions:
                allowed_nodes = self.cluster.nodes_in_regions(jurisdictions)
                if not allowed_nodes:
                    raise DeploymentError(
                        f"class {resolved.name!r} is constrained to jurisdictions "
                        f"{list(jurisdictions)}, but no cluster node carries a "
                        f"matching 'region' label "
                        f"(regions: {list(self.cluster.regions)})"
                    )
                return allowed_nodes, list(allowed_nodes)
        except SchedulingError as exc:
            raise DeploymentError(
                f"class {resolved.name!r}: jurisdiction constraint "
                f"{list(jurisdictions)} cannot be satisfied: {exc}"
            ) from exc
        return list(self.cluster.node_names), None

    def refresh_placement(self, runtime: ClassRuntime) -> None:
        """Re-run placement for a deployed class after cluster
        membership changed, pushing fresh hints into every service's
        deployment — so scale-up and self-heal replacements obey the
        same constraints as the initial deploy.  No-op for classes that
        were deployed unconstrained (hints stay ``None``-equivalent)."""
        try:
            _, node_hints = self._placement_for(runtime.resolved)
        except DeploymentError:
            # Every allowed node is gone.  Keep the stale (dead) hints:
            # the deployment refuses to place rather than spilling the
            # class outside its jurisdiction.
            return
        if node_hints is None:
            return
        for svc in runtime.services.values():
            svc.deployment.set_hints(node_hints)

    def update_class(
        self, resolved: ResolvedClass, template: ClassRuntimeTemplate | None = None
    ) -> ClassRuntime:
        """Redeploy a class definition in place.

        Existing objects keep their state — the class's DHT cache is
        carried over — while function services are torn down and
        re-provisioned from the new definition (new images, new
        provision hints, possibly a different template/engine).

        Schema evolution is additive-only: every state key of the old
        schema must survive with its type, otherwise live objects would
        stop validating.  Violations raise :class:`DeploymentError`
        before anything is touched.
        """
        old_runtime = self.runtime(resolved.name)
        old_resolved = self._resolved[resolved.name]
        for old_spec in old_resolved.state:
            new_spec = resolved.state.get(old_spec.name)
            if new_spec is None:
                raise DeploymentError(
                    f"class update for {resolved.name!r} drops state key "
                    f"{old_spec.name!r}; existing objects would stop validating"
                )
            if new_spec.dtype is not old_spec.dtype:
                raise DeploymentError(
                    f"class update for {resolved.name!r} changes the type of "
                    f"state key {old_spec.name!r} "
                    f"({old_spec.dtype.value} -> {new_spec.dtype.value})"
                )
        chosen = template or self.catalog.select(resolved.nfr)
        config = chosen.config
        # Re-run placement for the new definition before touching the
        # old services: re-provisioned pods must honour
        # jurisdiction/latency constraints exactly like the initial
        # deploy (updates used to spill outside them).
        _, node_hints = self._placement_for(resolved)
        # Tear down old services, then provision per the new definition.
        old_engine = (
            self.knative if old_runtime.engine_name == "knative" else self.deployment
        )
        for svc in old_runtime.services.values():
            old_engine.delete(svc.name)
        engine = self.knative if config.engine == "knative" else self.deployment
        services: dict[str, FunctionService] = {}
        for method in sorted(resolved.methods):
            binding = resolved.methods[method]
            if binding.function.ftype is not FunctionType.TASK:
                continue
            definition = binding.function
            if config.min_scale_override is not None:
                provision = dataclasses.replace(
                    definition.provision,
                    min_scale=config.min_scale_override,
                    max_scale=max(
                        definition.provision.max_scale, config.min_scale_override
                    ),
                )
                definition = dataclasses.replace(definition, provision=provision)
            services[method] = engine.deploy(
                f"{resolved.name}.{method}",
                definition,
                services=self.handler_services,
                node_hints=node_hints,
            )
        old_runtime.router.policy = config.placement
        if config.persistent and old_runtime.dht.store is not None:
            # Additive schema evolution: the engine indexes any keys the
            # update introduced (existing documents are backfilled).
            self.store.register_schema(
                f"objects.{resolved.name}",
                {
                    spec.name: spec.dtype
                    for spec in resolved.state
                    if not spec.is_file
                },
            )
        runtime = ClassRuntime(
            cls=resolved.name,
            resolved=resolved,
            template=chosen,
            dht=old_runtime.dht,  # state continuity
            router=old_runtime.router,
            services=services,
            engine_name=config.engine,
            resilience=ResiliencePolicy.from_nfr(
                resolved.nfr, persistent=config.persistent
            ),
        )
        self._runtimes[resolved.name] = runtime
        self._resolved[resolved.name] = resolved
        if self.durability is not None:
            self.durability.attach(runtime)
        if self.events.enabled:
            self.events.record(
                "class.deploy",
                cls=resolved.name,
                template=chosen.name,
                engine=config.engine,
                services=len(services),
                update=True,
            )
        return runtime

    def undeploy_class(self, cls: str) -> None:
        runtime = self._runtimes.pop(cls, None)
        if runtime is None:
            raise UnknownClassError(f"class {cls!r} is not deployed")
        self._resolved.pop(cls, None)
        self.costs.unregister(cls)
        if self.durability is not None:
            self.durability.detach(cls, runtime=runtime)
        engine = self.knative if runtime.engine_name == "knative" else self.deployment
        for svc in runtime.services.values():
            engine.delete(svc.name)

    # -- RuntimeDirectory protocol ------------------------------------------------

    def resolved(self, cls: str) -> ResolvedClass:
        resolved = self._resolved.get(cls)
        if resolved is None:
            raise UnknownClassError(
                f"class {cls!r} is not deployed; deployed: {self.deployed_classes()}"
            )
        return resolved

    def dht_for(self, cls: str) -> Dht:
        return self.runtime(cls).dht

    def router_for(self, cls: str) -> ObjectRouter:
        return self.runtime(cls).router

    def service_for(self, cls: str, fn_name: str) -> FunctionService:
        runtime = self.runtime(cls)
        svc = runtime.services.get(fn_name)
        if svc is not None:
            return svc
        # Inherited methods may be served by an ancestor's runtime when
        # the child's own deployment was trimmed (not the default path,
        # but undeploy/redeploy sequences can produce it).
        for ancestor in runtime.resolved.ancestry[1:]:
            parent_runtime = self._runtimes.get(ancestor)
            if parent_runtime and fn_name in parent_runtime.services:
                return parent_runtime.services[fn_name]
        raise UnknownFunctionError(
            f"no service for {cls}.{fn_name}; deployed services: "
            f"{sorted(runtime.services)}"
        )

    def policy_for(self, cls: str) -> ResiliencePolicy:
        """The resilience policy the invoker enforces for ``cls``."""
        return self.runtime(cls).resilience

    def set_policy(self, cls: str, policy: ResiliencePolicy) -> None:
        """Operator override of a deployed class's resilience policy."""
        self.runtime(cls).resilience = policy

    def deployed_classes(self) -> tuple[str, ...]:
        return tuple(sorted(self._runtimes))

    # -- introspection ---------------------------------------------------------------

    def runtime(self, cls: str) -> ClassRuntime:
        runtime = self._runtimes.get(cls)
        if runtime is None:
            raise UnknownClassError(
                f"class {cls!r} is not deployed; deployed: {self.deployed_classes()}"
            )
        return runtime

    @property
    def runtimes(self) -> Mapping[str, ClassRuntime]:
        return dict(self._runtimes)

    def describe(self) -> list[dict[str, Any]]:
        return [self._runtimes[cls].describe() for cls in sorted(self._runtimes)]

"""Requirement-driven optimization loop (paper §III-B).

"To meet the requirements, Oparaca connects the runtime to the
monitoring system and reacts to changes in workload or performance by
adjusting the allocated resources or system configuration."

The optimizer periodically compares each deployed class's live metrics
(sliding-window throughput and latency) against its declared QoS and
adjusts the class runtime's function replicas:

* declared throughput not met while replicas are saturated → scale up;
* declared p99 latency exceeded → scale up;
* sustained over-provisioning (low utilization) → scale down, never
  below the template's floor.

Every action is recorded in :attr:`decisions` so experiments and tests
can assert on *why* the platform reconfigured itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.crm.manager import ClassRuntimeManager
from repro.errors import SchedulingError
from repro.faas.engine import FunctionService
from repro.monitoring.collector import MonitoringSystem
from repro.monitoring.events import EventLog
from repro.sim.kernel import Environment

__all__ = ["OptimizerDecision", "RequirementOptimizer"]


@dataclass(frozen=True)
class OptimizerDecision:
    """One recorded autoscaling action."""

    at: float
    cls: str
    service: str
    action: str  # "scale-up" | "scale-down"
    replicas_before: int
    replicas_after: int
    reason: str


class RequirementOptimizer:
    """Closes the loop between monitoring and class runtimes."""

    def __init__(
        self,
        env: Environment,
        manager: ClassRuntimeManager,
        monitoring: MonitoringSystem,
        interval_s: float = 5.0,
        scale_down_grace_s: float = 30.0,
        max_replicas: int = 64,
        events: EventLog | None = None,
    ) -> None:
        self.env = env
        self.manager = manager
        self.monitoring = monitoring
        self.interval_s = interval_s
        self.scale_down_grace_s = scale_down_grace_s
        self.max_replicas = max_replicas
        self.events = events if events is not None else EventLog(env)
        self.decisions: list[OptimizerDecision] = []
        self._idle_since: dict[str, float] = {}
        self._running = True
        self._proc = env.process(self._run())

    def stop(self) -> None:
        self._running = False

    def _run(self) -> Generator:
        while self._running:
            yield self.env.timeout(self.interval_s)
            if not self._running:
                return
            self.tick()

    def _over_budget(self, cls: str, extra: int) -> bool:
        """Would adding ``extra`` replicas push the class past its
        declared monthly budget?"""
        budget = self.manager.resolved(cls).nfr.constraint.budget_usd_per_month
        if budget is None:
            return False
        meter = self.manager.costs.meter(cls)
        if meter is None:
            return False
        return meter.monthly_run_rate_usd(extra_replicas=extra) > budget

    def tick(self) -> None:
        """One optimization pass (exposed for deterministic tests)."""
        self.manager.costs.observe_all()
        for cls in self.manager.deployed_classes():
            runtime = self.manager.runtime(cls)
            nfr = runtime.resolved.nfr
            if nfr.qos.is_empty:
                continue
            observations = self.monitoring.for_class(cls)
            for fn_name, svc in sorted(runtime.services.items()):
                self._adjust_service(cls, fn_name, svc, nfr, observations)

    def _adjust_service(self, cls, fn_name, svc: FunctionService, nfr, observations) -> None:
        concurrency = svc.definition.provision.concurrency
        replicas = svc.replicas
        in_flight = svc.total_in_flight()
        saturated = replicas > 0 and in_flight >= replicas * concurrency * 0.8
        key = f"{cls}.{fn_name}"

        target_rps = nfr.qos.throughput_rps
        if target_rps is not None and saturated and observations.throughput_rps < target_rps:
            self._scale(
                cls,
                key,
                svc,
                replicas + 1,
                f"throughput {observations.throughput_rps:.1f} rps below "
                f"declared {target_rps:.1f} rps with saturated replicas",
            )
            return

        bound_ms = nfr.qos.latency_ms
        if (
            bound_ms is not None
            and len(observations.window) >= 10
            and observations.latency_p99_ms() > bound_ms
        ):
            self._scale(
                cls,
                key,
                svc,
                replicas + 1,
                f"p99 latency {observations.latency_p99_ms():.1f} ms above "
                f"declared bound {bound_ms:.1f} ms",
            )
            return

        floor = max(svc.definition.provision.min_scale, 1)
        if replicas > floor and in_flight < (replicas - 1) * concurrency * 0.3:
            since = self._idle_since.setdefault(key, self.env.now)
            if self.env.now - since >= self.scale_down_grace_s:
                self._scale(
                    cls,
                    key,
                    svc,
                    replicas - 1,
                    f"utilization {in_flight}/{replicas * concurrency} sustained low",
                )
                self._idle_since.pop(key, None)
        else:
            self._idle_since.pop(key, None)

    def _scale(self, cls: str, key: str, svc: FunctionService, to: int, reason: str) -> None:
        to = max(1, min(self.max_replicas, to))
        before = svc.replicas
        if to == before:
            return
        if to > before and self._over_budget(cls, extra=to - before):
            self._record(
                OptimizerDecision(
                    at=self.env.now,
                    cls=cls,
                    service=key,
                    action="budget-hold",
                    replicas_before=before,
                    replicas_after=before,
                    reason=f"scale-up to {to} would exceed the declared budget",
                )
            )
            return
        try:
            svc.deployment.scale(to)
        except SchedulingError:
            return  # cluster full; try again next tick
        self._record(
            OptimizerDecision(
                at=self.env.now,
                cls=cls,
                service=key,
                action="scale-up" if to > before else "scale-down",
                replicas_before=before,
                replicas_after=svc.replicas,
                reason=reason,
            )
        )

    def _record(self, decision: OptimizerDecision) -> None:
        self.decisions.append(decision)
        if self.events.enabled:
            self.events.record(
                "optimizer.decision",
                cls=decision.cls,
                service=decision.service,
                action=decision.action,
                before=decision.replicas_before,
                after=decision.replicas_after,
                reason=decision.reason,
            )

"""FIG3 — the scalability experiment (paper §V, Fig. 3).

Sweeps worker VMs over ``cfg.nodes_sweep`` for each system and measures
saturated throughput with a closed-loop client population sized to keep
every replica busy.  The expected shape (paper §V):

* ``knative`` plateaus once the shared document DB's write ceiling is
  reached (~6 VMs with the default calibration);
* ``oprc`` exceeds that ceiling via DHT write-behind batching, but
  bends sub-linear as the batched ceiling approaches;
* ``oprc-bypass`` runs above ``oprc`` (no Knative data-path overhead);
* ``oprc-bypass-nonpersist`` is highest and closest to linear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.bench.config import Fig3Config
from repro.bench.systems import SYSTEMS, build_system
from repro.sim.workload import ClosedLoopGenerator

__all__ = ["Fig3Row", "run_cell", "run_fig3"]


@dataclass(frozen=True)
class Fig3Row:
    """One (system, cluster size) measurement."""

    system: str
    nodes: int
    throughput_rps: float
    mean_latency_ms: float
    p99_latency_ms: float
    completed: int
    failed: int
    extras: dict[str, Any] = field(default_factory=dict)


def run_cell(system_name: str, nodes: int, cfg: Fig3Config | None = None) -> Fig3Row:
    """Run one cell of the sweep and return its measurement."""
    cfg = cfg or Fig3Config()
    system = build_system(system_name, cfg, nodes)
    system.prepare()
    generator = ClosedLoopGenerator(
        system.env,
        system.request,
        clients=cfg.clients(nodes),
        horizon_s=cfg.horizon_s,
        warmup_s=cfg.warmup_s,
    )
    system.env.run(until=cfg.horizon_s)
    stats = generator.stats
    row = Fig3Row(
        system=system_name,
        nodes=nodes,
        throughput_rps=stats.throughput(cfg.horizon_s),
        mean_latency_ms=stats.mean_latency * 1000.0,
        p99_latency_ms=stats.latency_percentile(99) * 1000.0,
        completed=stats.measured_completed,
        failed=stats.failed,
        extras=system.extras(),
    )
    system.shutdown()
    return row


def run_fig3(
    cfg: Fig3Config | None = None,
    systems: Iterable[str] = SYSTEMS,
    nodes_sweep: Iterable[int] | None = None,
) -> list[Fig3Row]:
    """Run the full sweep; rows ordered by (system, nodes)."""
    cfg = cfg or Fig3Config()
    sweep = tuple(nodes_sweep) if nodes_sweep is not None else cfg.nodes_sweep
    rows: list[Fig3Row] = []
    for system_name in systems:
        for nodes in sweep:
            rows.append(run_cell(system_name, nodes, cfg))
    return rows

"""Ablations for the design choices DESIGN.md calls out.

* :func:`run_batching_ablation` (ABL-BATCH) — the write-behind batch
  size is *the* knob behind Oparaca's Fig. 3 advantage: batch 1 turns
  every object update into an individual DB write (Knative-like cost),
  larger batches amortize the per-operation overhead.
* :func:`run_coldstart_ablation` (ABL-COLD) — scale-to-zero saves idle
  replicas but charges the first burst a cold start; pre-warming
  (``min_scale > 0``) trades idle cost for tail latency.  This is the
  "optimal configurations to avoid potential overheads" discussion of
  the tutorial abstract.
* :func:`run_locality_ablation` (ABL-LOCALITY) — routing invocations to
  the node owning the object's DHT partition vs spraying them randomly
  (§II-A's data-locality optimization).
* :func:`run_presigned_ablation` (ABL-PRESIGN) — presigned direct
  object-store access vs proxying file bytes through the platform
  (§III-D), across payload sizes.
* :func:`run_readpath_ablation` (ABL-READPATH) — the read-side levers
  (single-flight coalescing, miss-read batching, near cache) under the
  thundering-herd miss storm that follows a node failure.
* :func:`run_qos_ablation` (ABL-QOS) — the QoS enforcement plane under
  a noisy neighbour: a latency-declared class sharing the async path
  with a flooding batch class, with the plane off (FIFO) vs on
  (admission + weighted-fair queueing + load shedding).
* :func:`run_durability_ablation` (ABL-DURABILITY) — a crash drill over
  a ``persistence: strong`` ledger and a ``persistence: standard``
  write-behind-backed cart, with the durability plane off vs on:
  acknowledged increments are audited against post-crash state, and the
  plane's measured RPO/RTO is reported per class.
* :func:`run_federation_ablation` (ABL-FEDERATION) — edge-pinned
  (NFR-scored) vs core-only placement under a geo-distributed workload
  on a three-tier topology, plus a deliberately misconfigured control
  arm whose cross-jurisdiction accesses are rejected and counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterable

from repro.bench.config import Fig3Config
from repro.bench.systems import OprcSystem
from repro.faas.knative import KnativeModel
from repro.invoker.router import PlacementPolicy
from repro.model.function import FunctionDefinition, ProvisionSpec
from repro.orchestrator.cluster import Cluster
from repro.orchestrator.resources import ResourceSpec
from repro.orchestrator.scheduler import Scheduler
from repro.faas.registry import FunctionRegistry
from repro.faas.runtime import InvocationTask
from repro.sim.kernel import Environment, all_of, any_of
from repro.sim.network import Network, NetworkModel
from repro.sim.workload import ClosedLoopGenerator
from repro.storage.object_store import ObjectStore, ObjectStoreModel

__all__ = [
    "BatchingRow",
    "run_batching_ablation",
    "ColdStartResult",
    "run_coldstart_ablation",
    "LocalityRow",
    "run_locality_ablation",
    "PresignRow",
    "run_presigned_ablation",
    "ReplicationRow",
    "run_replication_ablation",
    "BurstRow",
    "run_burst_ablation",
    "ReadPathRow",
    "run_readpath_ablation",
    "QosRow",
    "run_qos_ablation",
    "DurabilityRow",
    "run_durability_ablation",
    "FederationRow",
    "run_federation_ablation",
]


# ---------------------------------------------------------------------------
# ABL-BATCH
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchingRow:
    batch_size: int
    throughput_rps: float
    db_write_ops: int
    db_docs_written: int
    mean_latency_ms: float

    @property
    def docs_per_op(self) -> float:
        if not self.db_write_ops:
            return 0.0
        return self.db_docs_written / self.db_write_ops


def run_batching_ablation(
    batch_sizes: Iterable[int] = (1, 10, 50, 100, 200),
    nodes: int = 6,
    cfg: Fig3Config | None = None,
) -> list[BatchingRow]:
    """Sweep the write-behind batch size on the ``oprc-bypass`` system.

    The default configuration differs from the Fig. 3 calibration in
    two deliberate ways: the DB cost profile is *operation-dominated*
    (high fixed cost per write op, cheap documents — the regime where
    batching is the decisive mechanism), and the object population is
    much larger than the write-behind buffers so updates rarely coalesce
    — isolating batching from coalescing.
    """
    base = cfg or Fig3Config.quick()
    rows: list[BatchingRow] = []
    for batch in batch_sizes:
        cell_cfg = Fig3Config(
            **{
                **base.__dict__,
                "batch_size": batch,
                "db_op_cost": 20.0,
                "db_doc_cost": 2.0,
                "objects": 20000,
                "max_pending": max(500, batch),
                "linger_s": base.linger_s,
            }
        )
        system = OprcSystem(cell_cfg, nodes, variant="oprc-bypass")
        system.prepare()
        generator = ClosedLoopGenerator(
            system.env,
            system.request,
            clients=cell_cfg.clients(nodes),
            horizon_s=cell_cfg.horizon_s,
            warmup_s=cell_cfg.warmup_s,
        )
        system.env.run(until=cell_cfg.horizon_s)
        extras = system.extras()
        rows.append(
            BatchingRow(
                batch_size=batch,
                throughput_rps=generator.stats.throughput(cell_cfg.horizon_s),
                db_write_ops=extras["db_write_ops"],
                db_docs_written=extras["db_docs_written"],
                mean_latency_ms=generator.stats.mean_latency * 1000.0,
            )
        )
        system.shutdown()
    return rows


# ---------------------------------------------------------------------------
# ABL-COLD
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColdStartResult:
    min_scale: int
    first_latency_ms: float
    burst_p99_ms: float
    cold_starts: int
    idle_replicas: int
    #: Observability cross-checks: cold starts as seen by the tracer's
    #: ``faas.cold_start`` spans and the event log — all three counters
    #: must agree with ``KnativeService.cold_starts``.
    traced_cold_starts: int = 0
    event_cold_starts: int = 0


def run_coldstart_ablation(
    min_scales: Iterable[int] = (0, 1, 2),
    burst: int = 24,
    idle_s: float = 60.0,
    cold_start_s: float = 1.8,
    service_time_s: float = 0.02,
) -> list[ColdStartResult]:
    """Idle past the scale-to-zero grace, then fire a burst.

    Returns one row per pre-warm level: ``min_scale=0`` pays the cold
    start on the first request; warm replicas answer immediately.
    """
    results: list[ColdStartResult] = []
    for min_scale in min_scales:
        env = Environment()
        cluster = Cluster(env)
        for index in range(3):
            cluster.add_node(f"vm-{index}", ResourceSpec(4000, 16384))
        scheduler = Scheduler(cluster)
        registry = FunctionRegistry()
        registry.register("abl/echo", lambda ctx: {"ok": True}, service_time_s=service_time_s)
        from repro.faas.knative import KnativeEngine
        from repro.monitoring.events import EventLog
        from repro.monitoring.tracing import Tracer

        tracer = Tracer(env, enabled=True)
        events = EventLog(env, enabled=True)
        engine = KnativeEngine(
            env,
            scheduler,
            registry,
            KnativeModel(cold_start_s=cold_start_s, scale_to_zero_grace_s=30.0),
            tracer=tracer,
            events=events,
        )
        service = engine.deploy(
            "echo",
            FunctionDefinition(
                name="echo",
                image="abl/echo",
                provision=ProvisionSpec(concurrency=8, min_scale=min_scale, max_scale=16),
            ),
        )
        # Let the service go idle past the grace period.
        env.run(until=idle_s)
        idle_replicas = service.replicas
        latencies: list[float] = []

        def one_request(index: int) -> Generator:
            task = InvocationTask(
                request_id=f"b{index}",
                cls="-",
                object_id="x",
                fn_name="echo",
                image="abl/echo",
            )
            started = env.now
            yield service.invoke(task)
            latencies.append(env.now - started)

        processes = [env.process(one_request(i)) for i in range(burst)]
        from repro.sim.kernel import all_of

        env.run(until=all_of(env, processes))
        ordered = sorted(latencies)
        results.append(
            ColdStartResult(
                min_scale=min_scale,
                first_latency_ms=ordered[0] * 1000.0,
                burst_p99_ms=ordered[max(0, int(len(ordered) * 0.99) - 1)] * 1000.0,
                cold_starts=service.cold_starts,
                idle_replicas=idle_replicas,
                traced_cold_starts=len(tracer.spans_named("faas.cold_start")),
                event_cold_starts=len(events.of_type("faas.cold_start")),
            )
        )
        service.stop()
    return results


# ---------------------------------------------------------------------------
# ABL-LOCALITY
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LocalityRow:
    policy: str
    throughput_rps: float
    mean_latency_ms: float
    locality_ratio: float
    remote_transfers: int


def run_locality_ablation(
    nodes: int = 6, cfg: Fig3Config | None = None
) -> list[LocalityRow]:
    """Locality-aware routing vs random routing on ``oprc-bypass``.

    Uses a short function service time so the state round trips are a
    meaningful share of request latency.
    """
    base = cfg or Fig3Config.quick()
    cell_cfg = Fig3Config(
        **{
            **base.__dict__,
            "service_time_s": 0.005,
            "clients_per_vm": 24,
            # A short steady-state window keeps the cell cheap: with a
            # 5 ms service time the law of large numbers kicks in fast.
            "horizon_s": 4.0,
            "warmup_s": 2.0,
            # Keep the DB out of the picture: this ablation is about the
            # network path to the object's partition.
            "db_capacity_units": 10_000_000.0,
        }
    )
    rows: list[LocalityRow] = []
    for policy in (PlacementPolicy.LOCALITY, PlacementPolicy.RANDOM):
        system = OprcSystem(cell_cfg, nodes, variant="oprc-bypass")
        system.prepare()
        runtime = system.platform.crm.runtime("Doc")
        runtime.router.policy = policy
        generator = ClosedLoopGenerator(
            system.env,
            system.request,
            clients=cell_cfg.clients(nodes),
            horizon_s=cell_cfg.horizon_s,
            warmup_s=cell_cfg.warmup_s,
        )
        system.env.run(until=cell_cfg.horizon_s)
        rows.append(
            LocalityRow(
                policy=policy.value,
                throughput_rps=generator.stats.throughput(cell_cfg.horizon_s),
                mean_latency_ms=generator.stats.mean_latency * 1000.0,
                locality_ratio=runtime.router.locality_ratio,
                remote_transfers=system.platform.network.remote_transfers,
            )
        )
        system.shutdown()
    return rows


# ---------------------------------------------------------------------------
# ABL-REPL
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReplicationRow:
    replication: int
    throughput_rps: float
    mean_latency_ms: float
    survivors_pct: float


def run_replication_ablation(
    replications: Iterable[int] = (1, 2, 3),
    nodes: int = 6,
    cfg: Fig3Config | None = None,
    probe_objects: int = 300,
) -> list[ReplicationRow]:
    """DHT replication factor: write fan-out cost vs crash survival.

    Runs the memory-only system (so the document store cannot mask
    losses), measures saturated throughput, then crashes one node and
    probes what fraction of a sample of objects is still readable.
    """
    base = cfg or Fig3Config.quick()
    rows: list[ReplicationRow] = []
    for replication in replications:
        system = OprcSystem(
            base, nodes, variant="oprc-bypass-nonpersist", replication=replication
        )
        system.prepare()
        generator = ClosedLoopGenerator(
            system.env,
            system.request,
            clients=base.clients(nodes),
            horizon_s=base.horizon_s,
            warmup_s=base.warmup_s,
        )
        system.env.run(until=base.horizon_s)
        platform = system.platform
        victim = platform.cluster.node_names[0]
        platform.fail_node(victim)
        survivors = 0
        probe = system._object_ids[:probe_objects]
        for object_id in probe:
            result = platform.invoke(object_id, "get", raise_on_error=False)
            if result.ok:
                survivors += 1
        rows.append(
            ReplicationRow(
                replication=replication,
                throughput_rps=generator.stats.throughput(base.horizon_s),
                mean_latency_ms=generator.stats.mean_latency * 1000.0,
                survivors_pct=100.0 * survivors / max(1, len(probe)),
            )
        )
        system.shutdown()
    return rows


# ---------------------------------------------------------------------------
# ABL-BURST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BurstRow:
    min_scale: int
    base_p99_ms: float
    burst_p99_ms: float
    peak_replicas: int

    @property
    def degradation(self) -> float:
        if self.base_p99_ms <= 0:
            return 0.0
        return self.burst_p99_ms / self.base_p99_ms


def run_burst_ablation(
    min_scales: Iterable[int] = (1, 4),
    base_rate: float = 40.0,
    burst_rate: float = 400.0,
    phase_s: float = 15.0,
    cycles: int = 2,
    service_time_s: float = 0.05,
) -> list[BurstRow]:
    """Autoscaler tracking of bursty arrivals (paper §II-D).

    An open-loop workload alternates quiet and burst phases; the KPA
    chases the burst but pays its reaction time (tick interval + cold
    start) in burst-phase tail latency.  Pre-warming (higher
    ``min_scale``) buys the tail down — the trade the tutorial's
    configuration discussion is about.
    """
    from repro.faas.knative import KnativeEngine, KnativeModel
    from repro.faas.runtime import InvocationTask
    from repro.sim.workload import PhasedOpenLoopGenerator

    rows: list[BurstRow] = []
    for min_scale in min_scales:
        env = Environment()
        cluster = Cluster(env)
        for index in range(4):
            cluster.add_node(f"vm-{index}", ResourceSpec(4000, 16384))
        registry = FunctionRegistry()
        registry.register("abl/burst", lambda ctx: {}, service_time_s=service_time_s)
        engine = KnativeEngine(
            env,
            Scheduler(cluster),
            registry,
            KnativeModel(cold_start_s=1.5, autoscale_interval_s=2.0, scale_to_zero_grace_s=3600),
        )
        service = engine.deploy(
            "burst",
            FunctionDefinition(
                name="burst",
                image="abl/burst",
                provision=ProvisionSpec(
                    concurrency=8, min_scale=min_scale, max_scale=16
                ),
            ),
        )
        peak = {"replicas": 0}

        def one_request(index: int) -> Generator:
            task = InvocationTask(
                request_id=f"b{index}",
                cls="-",
                object_id="x",
                fn_name="burst",
                image="abl/burst",
            )
            yield service.invoke(task)
            peak["replicas"] = max(peak["replicas"], service.replicas)

        # Let the initial replicas finish booting before offering load,
        # so phase statistics measure steady behaviour, not deploy-time
        # boot transients.
        env.run(until=3.0)
        horizon = env.now + phase_s * 2 * cycles
        generator = PhasedOpenLoopGenerator(
            env,
            one_request,
            phases=[(phase_s, base_rate), (phase_s, burst_rate)],
            horizon_s=horizon,
        )
        env.run(until=horizon + 5.0)
        base_stats = generator.phase_stats[0]
        burst_stats = generator.phase_stats[1]
        rows.append(
            BurstRow(
                min_scale=min_scale,
                base_p99_ms=base_stats.latency_percentile(99) * 1000.0,
                burst_p99_ms=burst_stats.latency_percentile(99) * 1000.0,
                peak_replicas=peak["replicas"],
            )
        )
        service.stop()
    return rows


# ---------------------------------------------------------------------------
# ABL-READPATH
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReadPathRow:
    mode: str
    store_read_ops: int
    store_multi_read_ops: int
    mem_misses: int
    coalesced: int
    near_hits: int
    mean_get_ms: float


def run_readpath_ablation(
    modes: Iterable[str] = ("off", "coalesce", "coalesce+batch", "coalesce+batch+near"),
    nodes: int = 4,
    objects: int = 300,
    readers_per_key: int = 4,
) -> list[ReadPathRow]:
    """Read-path levers under a post-``fail_node`` miss storm.

    Seeds a persistent DHT, crashes one node (its partition's memory is
    lost; the documents survive in the store), then fires
    ``readers_per_key`` concurrent gets per object from the surviving
    nodes — the thundering herd every real recovery produces.  A second
    identical wave follows, exercising the near cache on non-owner
    callers.  With everything ``off`` each concurrent miss is its own
    ``op_cost + read_cost`` store read; coalescing collapses them to one
    per key, batching folds keys into multi-gets, and the near cache
    absorbs the repeat wave locally.
    """
    from repro.sim.kernel import all_of
    from repro.storage.dht import Dht, DhtModel
    from repro.storage.kv import DbModel, DocumentStore
    from repro.storage.read_path import ReadBatchConfig

    rows: list[ReadPathRow] = []
    for mode in modes:
        env = Environment()
        network = Network(env, NetworkModel())
        store = DocumentStore(env, DbModel(capacity_units_per_s=50000.0))
        model = DhtModel(
            replication=1,
            persistent=True,
            read_coalescing="coalesce" in mode,
            read_batch=(
                ReadBatchConfig(max_batch=32, linger_s=0.002)
                if "batch" in mode
                else None
            ),
            near_cache_entries=objects if "near" in mode else 0,
        )
        node_names = [f"vm-{i}" for i in range(nodes)]
        dht = Dht(env, node_names, network, store, model)
        keys: list[str] = []
        for index in range(objects):
            key = f"obj-{index}"
            dht.seed({"id": key, "version": 1, "payload": "x" * 64})
            keys.append(key)
        dht.fail_node(node_names[0])
        callers = node_names[1:]
        latencies: list[float] = []

        def one_get(key: str, caller: str) -> Generator:
            started = env.now
            yield dht.get(key, caller=caller)
            latencies.append(env.now - started)

        for _wave in range(2):
            processes = [
                env.process(one_get(key, callers[(index + reader) % len(callers)]))
                for index, key in enumerate(keys)
                for reader in range(readers_per_key)
            ]
            env.run(until=all_of(env, processes))
        stats = dht.read_path_stats
        rows.append(
            ReadPathRow(
                mode=mode,
                store_read_ops=store.read_ops,
                store_multi_read_ops=store.multi_read_ops,
                mem_misses=dht.mem_misses,
                coalesced=stats["read_coalesced"],
                near_hits=stats["near_hits"],
                mean_get_ms=sum(latencies) / max(1, len(latencies)) * 1000.0,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# ABL-PRESIGN
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PresignRow:
    size_bytes: int
    direct_ms: float
    proxied_ms: float

    @property
    def overhead_factor(self) -> float:
        if self.direct_ms <= 0:
            return 0.0
        return self.proxied_ms / self.direct_ms


def run_presigned_ablation(
    sizes: Iterable[int] = (10_000, 1_000_000, 10_000_000),
) -> list[PresignRow]:
    """Presigned direct download vs platform-proxied download.

    The proxied path moves the bytes twice (store → platform, then
    platform → client over the fabric), paying an extra per-transfer
    latency plus a second serialization of the payload; presigned URLs
    hand the client a direct path and skip that hop entirely — §III-D's
    rationale for adopting the S3 presigning technique.
    """
    rows: list[PresignRow] = []
    for size in sizes:
        env = Environment()
        store = ObjectStore(env, ObjectStoreModel())
        network = Network(env, NetworkModel())
        store.create_bucket("media")
        store.put_object("media", "blob", b"x" * size)

        def direct() -> Generator:
            url = store.presign("media", "blob", "GET")
            yield store.presigned_get_timed(url)

        def proxied() -> Generator:
            obj = yield store.get_timed("media", "blob")  # store -> platform
            yield network.transfer("gateway", "client", obj.size)  # platform -> client

        started = env.now
        env.run(until=env.process(direct()))
        direct_ms = (env.now - started) * 1000.0
        started = env.now
        env.run(until=env.process(proxied()))
        proxied_ms = (env.now - started) * 1000.0
        rows.append(PresignRow(size_bytes=size, direct_ms=direct_ms, proxied_ms=proxied_ms))
    return rows


# ---------------------------------------------------------------------------
# ABL-QOS
# ---------------------------------------------------------------------------


#: Two-class noisy-neighbour package: Hot declares the full NFR triple
#: (throughput guarantee, latency target, high priority); Noisy is a
#: budget-capped batch class with no declarations at all.
QOS_PACKAGE = """
name: qos-bench
classes:
  - name: Hot
    qos: {throughput: 100, latency: 50, priority: 8}
    functions:
      - name: work
        image: bench/hot
  - name: Noisy
    constraint: {budget: 10}
    functions:
      - name: work
        image: bench/noisy
"""


@dataclass(frozen=True)
class QosRow:
    """One ABL-QOS cell: the Hot class's fate next to a flooding Noisy
    neighbour, with the QoS plane off (``fifo``) or on (``qos``)."""

    mode: str
    hot_p95_ms: float
    hot_target_ms: float
    hot_completed: int
    hot_failed: int
    noisy_completed: int
    noisy_rejected: int
    noisy_shed: int

    @property
    def hot_met(self) -> bool:
        """Did Hot's observed p95 stay within its declared target?"""
        return self.hot_p95_ms <= self.hot_target_ms


def run_qos_ablation(
    modes: Iterable[str] = ("fifo", "qos"),
    seed: int = 0,
    chaos: bool = False,
    noisy_backlog: int = 800,
    hot_rps: float = 80.0,
    hot_duration_s: float = 5.0,
    hot_objects: int = 16,
    noisy_objects: int = 64,
) -> list[QosRow]:
    """The noisy-neighbour experiment behind the QoS enforcement plane.

    A latency-sensitive class (``Hot``: declares ``throughput: 100``,
    ``latency: 50``, priority 8) shares the async invocation path with a
    budget-capped batch class (``Noisy``) that dumps ``noisy_backlog``
    fire-and-forget invocations at t=0.  Hot then offers a steady
    ``hot_rps`` for ``hot_duration_s``.

    * ``fifo`` — the plane off (baseline): Hot's requests queue behind
      the entire Noisy backlog, so its completion p95 blows far past
      the declared 50 ms.
    * ``qos`` — the plane on: deficit-round-robin weights (8 vs the
      economy tier's 1) serve Hot around the backlog, and the overload
      controller sheds queued Noisy work once total depth trips the
      watermark.  Hot holds its p95; Noisy pays with shed work.

    With ``chaos`` set, the builtin ``overload`` fault plan (every node
    slowed 6x plus a cold-start storm) plays out on top — shed counts
    must then still be identical run-to-run for one seed, which is what
    the determinism gate in CI asserts.
    """
    from repro.platform.oparaca import Oparaca, PlatformConfig
    from repro.qos.plane import QosConfig

    rows: list[QosRow] = []
    for mode in modes:
        platform = Oparaca(
            PlatformConfig(
                nodes=3,
                seed=seed,
                qos=QosConfig(enabled=(mode == "qos")),
            )
        )
        env = platform.env
        platform.register_image("bench/hot", lambda ctx: {"ok": True}, 0.002)
        platform.register_image("bench/noisy", lambda ctx: {"ok": True}, 0.02)
        platform.deploy(QOS_PACKAGE)
        # Explicit object ids: the platform's default ids are uuid4-based,
        # which would randomize DHT placement (and so latency) run-to-run.
        hot_ids = [
            platform.new_object("Hot", object_id=f"hot-{index}")
            for index in range(hot_objects)
        ]
        noisy_ids = [
            platform.new_object("Noisy", object_id=f"noisy-{index}")
            for index in range(noisy_objects)
        ]
        # Warm both classes so the measured phase exercises queueing, not
        # first-touch cold starts.
        for oid in (hot_ids[0], noisy_ids[0]):
            platform.invoke(oid, "work")
        platform.advance(1.0)

        if chaos:
            from repro.chaos.plans import named_plan

            platform.inject_chaos(
                named_plan("overload", list(platform.cluster.node_names))
            )

        hot_results: list[tuple[float, Any]] = []
        noisy_results: list[tuple[float, Any]] = []

        def waiter(completion, submitted_at: float, sink: list) -> Generator:
            result = yield completion
            sink.append((env.now - submitted_at, result))

        waiters = []
        for index in range(noisy_backlog):
            completion = platform.invoke_async(
                noisy_ids[index % len(noisy_ids)], "work"
            )
            waiters.append(
                env.process(waiter(completion, env.now, noisy_results))
            )

        def hot_driver() -> Generator:
            interval = 1.0 / hot_rps
            for index in range(int(hot_rps * hot_duration_s)):
                completion = platform.invoke_async(
                    hot_ids[index % len(hot_ids)], "work"
                )
                waiters.append(
                    env.process(waiter(completion, env.now, hot_results))
                )
                yield env.timeout(interval)

        driver = env.process(hot_driver())
        env.run(until=driver)
        done = all_of(env, waiters)
        env.run(until=any_of(env, [done, env.timeout(120.0)]))

        hot_ok = sorted(
            latency for latency, result in hot_results if result.ok
        )
        if hot_ok:
            rank = max(0, min(len(hot_ok) - 1, int(0.95 * len(hot_ok))))
            hot_p95_ms = hot_ok[rank] * 1000.0
        else:
            hot_p95_ms = 0.0
        noisy_ok = sum(1 for _, r in noisy_results if r.ok)
        noisy_rejected = sum(
            1 for _, r in noisy_results if r.error_type == "RateLimitedError"
        )
        noisy_shed = sum(
            1 for _, r in noisy_results if r.error_type == "OverloadError"
        )
        rows.append(
            QosRow(
                mode=mode,
                hot_p95_ms=hot_p95_ms,
                hot_target_ms=50.0,
                hot_completed=len(hot_ok),
                hot_failed=sum(1 for _, r in hot_results if not r.ok),
                noisy_completed=noisy_ok,
                noisy_rejected=noisy_rejected,
                noisy_shed=noisy_shed,
            )
        )
        platform.shutdown()
    return rows


# ---------------------------------------------------------------------------
# ABL-DURABILITY
# ---------------------------------------------------------------------------


#: Two-class crash-drill package: Ledger declares ``persistence: strong``
#: (every commit synchronously durable — RPO must be 0), Cart declares
#: ``persistence: standard`` (periodic snapshot cuts over the write-behind
#: store path — RPO bounded by the cut interval).
DURABILITY_PACKAGE = """
name: durability-bench
classes:
  - name: Ledger
    constraint: {persistence: strong}
    keySpecs:
      - { name: count, type: INT, default: 0 }
    functions:
      - name: bump
        image: bench/bump
  - name: Cart
    constraint: {persistence: standard}
    keySpecs:
      - { name: count, type: INT, default: 0 }
    functions:
      - name: bump
        image: bench/bump
"""


@dataclass(frozen=True)
class DurabilityRow:
    """One class of one ABL-DURABILITY cell: acknowledged increments
    audited against the state that survived a node crash."""

    mode: str  # "off" (no durability plane) | "on"
    cls: str
    policy: str  # resolved durability mode ("on_commit"/"periodic"/"-")
    acked_writes: int
    surviving_count: int
    readable_objects: int
    objects: int
    cuts: int
    epoch_writes: int
    #: Measured by the recovery pass (0.0 and no recovery when "off").
    recovered: bool
    rpo_s: float
    rto_s: float
    lost_writes: int
    restored_docs: int

    @property
    def lost_acked(self) -> int:
        """Acknowledged increments missing from the surviving state."""
        return self.acked_writes - self.surviving_count


def run_durability_ablation(
    modes: Iterable[str] = ("off", "on"),
    seed: int = 0,
    objects_per_class: int = 8,
    rounds: int = 24,
    crash_round: int = 18,
    burst_rounds: int = 6,
    interval_s: float = 0.02,
    snapshot_interval_s: float = 0.25,
) -> list[DurabilityRow]:
    """The crash-restore drill behind the durability plane.

    Every round bumps a counter on each object of both classes through
    the synchronous invoke path (each ``ok`` result is an acknowledged
    write), then at ``crash_round`` one node fails: its DHT partition
    memory and unflushed write-behind buffer are gone.  Right before the
    crash the drill bursts ``burst_rounds`` extra bumps onto the keys
    the victim owns, so acknowledged-but-unflushed writes are provably
    in its buffer when it dies — the window the write-behind trade-off
    exposes.

    * ``off`` — no durability plane: what survives is whatever the
      write-behind flusher happened to persist plus other replicas;
      recently acknowledged Cart increments are silently lost and
      nothing measures the damage.
    * ``on`` — the plane recovers each class from its best durable
      source (snapshot generations, commit epochs, flushed store
      copies), replays the commit log to the crash point, and reports
      measured RPO/RTO.  Ledger (``strong``) must come back with RPO 0;
      Cart's RPO is bounded by the snapshot/flush cadence.

    Deterministic for a fixed seed: object ids are explicit so DHT
    placement never depends on uuid4.
    """
    from repro.durability.plane import DurabilityConfig
    from repro.platform.oparaca import Oparaca, PlatformConfig

    def bump(ctx):
        ctx.state["count"] = int(ctx.state.get("count") or 0) + 1
        return {"count": ctx.state["count"]}

    rows: list[DurabilityRow] = []
    for mode in modes:
        platform = Oparaca(
            PlatformConfig(
                nodes=3,
                seed=seed,
                events_enabled=True,
                durability=DurabilityConfig(
                    enabled=(mode == "on"),
                    default_interval_s=snapshot_interval_s,
                ),
            )
        )
        env = platform.env
        platform.register_image("bench/bump", bump, 0.001)
        platform.deploy(DURABILITY_PACKAGE)
        ids = {
            cls: [
                platform.new_object(cls, object_id=f"{cls.lower()}-{index}")
                for index in range(objects_per_class)
            ]
            for cls in ("Ledger", "Cart")
        }
        acked = {cls: 0 for cls in ids}
        for round_index in range(rounds):
            for cls in ("Ledger", "Cart"):
                for oid in ids[cls]:
                    result = platform.invoke(oid, "bump", raise_on_error=False)
                    if result.ok:
                        acked[cls] += 1
            if round_index == crash_round:
                # The victim is the node owning the first Cart object, so
                # the burst below provably lands in its write-behind
                # buffer (and its partition memory) before it dies.
                victim = platform.crm.runtime("Cart").dht.owner(ids["Cart"][0])
                victim_keys = {
                    cls: [
                        oid
                        for oid in ids[cls]
                        if platform.crm.runtime(cls).dht.owner(oid) == victim
                    ]
                    for cls in ("Ledger", "Cart")
                }
                # Interleave the classes so both have acknowledged writes
                # still in the victim's buffer at the instant it dies.
                burst_targets = [
                    (cls, keys[index])
                    for index in range(
                        max(len(keys) for keys in victim_keys.values())
                    )
                    for cls, keys in victim_keys.items()
                    if index < len(keys)
                ]
                for _burst in range(burst_rounds):
                    for cls, oid in burst_targets:
                        result = platform.invoke(oid, "bump", raise_on_error=False)
                        if result.ok:
                            acked[cls] += 1
                platform.fail_node(victim)
                if platform.durability is not None:
                    recoveries = platform.durability.recoveries()
                    if recoveries:
                        env.run(until=all_of(env, recoveries))
            else:
                platform.advance(interval_s)
        platform.advance(1.0)  # drain write-behind before the audit
        for cls in ("Ledger", "Cart"):
            surviving = 0
            readable = 0
            for oid in ids[cls]:
                result = platform.invoke(oid, "get", raise_on_error=False)
                if result.ok:
                    readable += 1
                    surviving += int(result.output["state"].get("count") or 0)
            policy = "-"
            cuts = epoch_writes = lost_writes = restored_docs = 0
            recovered = False
            rpo_s = rto_s = 0.0
            if platform.durability is not None:
                policy_obj = platform.durability.policy_for(cls)
                policy = policy_obj.mode if policy_obj is not None else "-"
                tracker = platform.durability.tracker_for(cls)
                if tracker is not None:
                    cuts = tracker.cuts_taken
                    epoch_writes = tracker.epoch_writes
                    if tracker.last_recovery is not None:
                        recovered = True
                        rpo_s = tracker.last_recovery["rpo_s"]
                        rto_s = tracker.last_recovery["rto_s"]
                        lost_writes = tracker.last_recovery["lost_writes"]
                        restored_docs = tracker.last_recovery["restored_docs"]
            rows.append(
                DurabilityRow(
                    mode=mode,
                    cls=cls,
                    policy=policy,
                    acked_writes=acked[cls],
                    surviving_count=surviving,
                    readable_objects=readable,
                    objects=objects_per_class,
                    cuts=cuts,
                    epoch_writes=epoch_writes,
                    recovered=recovered,
                    rpo_s=rpo_s,
                    rto_s=rto_s,
                    lost_writes=lost_writes,
                    restored_docs=restored_docs,
                )
            )
        platform.shutdown()
    return rows


# ---------------------------------------------------------------------------
# ABL-FEDERATION
# ---------------------------------------------------------------------------


#: Geo-distributed package: Sensor declares a 20 ms latency NFR (free to
#: live anywhere — the placement mode decides where), Vault is pinned to
#: the ``edge`` jurisdiction regardless of mode.
FEDERATION_PACKAGE = """
name: federation-bench
classes:
  - name: Sensor
    qos: {latency: 20}
    keySpecs:
      - { name: n, type: INT, default: 0 }
    functions:
      - name: bump
        image: bench/geo-bump
  - name: Vault
    constraint: {jurisdiction: edge}
    keySpecs:
      - { name: n, type: INT, default: 0 }
    functions:
      - name: bump
        image: bench/geo-bump
"""


@dataclass(frozen=True)
class FederationRow:
    """One ABL-FEDERATION cell: the latency-declared Sensor class under
    one placement arm of the federated three-tier topology."""

    mode: str  # "core-only" | "edge-pinned" | "misconfigured"
    placement: str  # resolved planner mode
    sensor_p95_ms: float
    sensor_target_ms: float
    completed: int
    failed: int
    #: Invocations served by a replica outside the client's origin zone.
    cross_zone: int
    #: Cross-jurisdiction accesses rejected for the edge-pinned Vault
    #: class — zero unless clients are deliberately misconfigured.
    vault_rejections: int
    vault_completed: int

    @property
    def sensor_met(self) -> bool:
        return self.sensor_p95_ms <= self.sensor_target_ms


def run_federation_ablation(
    modes: Iterable[str] = ("core-only", "edge-pinned", "misconfigured"),
    seed: int = 0,
    objects: int = 8,
    rounds: int = 25,
) -> list[FederationRow]:
    """Edge-pinned vs core-only placement under a geo-distributed load.

    Eight nodes spread over a three-tier topology (two edge sites, one
    regional DC, one core DC); clients originate from the edge sites and
    invoke through the gateway with ``x-origin-zone`` headers.

    * ``core-only`` — the control arm: the planner consolidates every
      class on the core tier, so each edge-origin invocation pays the
      80 ms edge↔core WAN leg and the Sensor class blows its declared
      20 ms latency NFR.
    * ``edge-pinned`` — NFR-scored placement: Sensor's latency bound
      pins it to the edge tier, clients hit a same-site replica, and
      the target holds.
    * ``misconfigured`` — edge-pinned placement but Vault's clients
      originate from ``core``, outside its declared ``edge``
      jurisdiction: every access is rejected with HTTP 451 and counted,
      which is what the ``jurisdiction`` NFR verdict reports.

    Jurisdiction rejections for Vault must be zero in the first two
    arms and exactly ``objects * rounds`` in the misconfigured one.
    """
    from repro.federation import FederationConfig, Zone
    from repro.platform.oparaca import Oparaca, PlatformConfig

    zones = (
        Zone("edge-a", tier="edge", region="edge", parent="region-a"),
        Zone("edge-b", tier="edge", region="edge", parent="region-a"),
        Zone("region-a", tier="regional", parent="core"),
        Zone("core", tier="core"),
    )
    rtt = (
        ("edge-a", "edge-b", 0.012),
        ("edge-a", "region-a", 0.02),
        ("edge-b", "region-a", 0.02),
        ("edge-a", "core", 0.08),
        ("edge-b", "core", 0.08),
        ("region-a", "core", 0.03),
    )
    edge_origins = ("edge-a", "edge-b")
    rows: list[FederationRow] = []
    for mode in modes:
        placement = "core-only" if mode == "core-only" else "nfr"
        platform = Oparaca(
            PlatformConfig(
                nodes=8,
                seed=seed,
                regions=("edge-a", "edge-b", "region-a", "core"),
                federation=FederationConfig(
                    enabled=True,
                    zones=zones,
                    zone_rtt_s=rtt,
                    placement=placement,
                ),
            )
        )
        platform.register_image(
            "bench/geo-bump",
            lambda ctx: {"n": ctx.state.setdefault("n", 0)},
            0.002,
        )
        platform.deploy(FEDERATION_PACKAGE)
        sensor_ids = [
            platform.new_object("Sensor", object_id=f"sensor-{index}")
            for index in range(objects)
        ]
        vault_ids = [
            platform.new_object("Vault", object_id=f"vault-{index}")
            for index in range(objects)
        ]
        # Warm every replica so the measured phase is routing, not
        # cold starts.
        for oid in sensor_ids + vault_ids:
            platform.http(
                "POST",
                f"/api/objects/{oid}/invokes/bump",
                {},
                headers={"x-origin-zone": "edge-a"},
            )
        vault_origin = "core" if mode == "misconfigured" else "edge-a"
        latencies: list[float] = []
        completed = failed = vault_completed = 0
        for round_index in range(rounds):
            for index, oid in enumerate(sensor_ids):
                origin = edge_origins[(round_index + index) % len(edge_origins)]
                started = platform.now
                response = platform.http(
                    "POST",
                    f"/api/objects/{oid}/invokes/bump",
                    {},
                    headers={"x-origin-zone": origin},
                )
                if response.status == 200:
                    completed += 1
                    latencies.append(platform.now - started)
                else:
                    failed += 1
            for oid in vault_ids:
                response = platform.http(
                    "POST",
                    f"/api/objects/{oid}/invokes/bump",
                    {},
                    headers={"x-origin-zone": vault_origin},
                )
                if response.status == 200:
                    vault_completed += 1
        latencies.sort()
        if latencies:
            rank = max(0, min(len(latencies) - 1, int(0.95 * len(latencies))))
            sensor_p95_ms = latencies[rank] * 1000.0
        else:
            sensor_p95_ms = 0.0
        sensor_stats = platform.federation.class_stats("Sensor")
        rows.append(
            FederationRow(
                mode=mode,
                placement=placement,
                sensor_p95_ms=sensor_p95_ms,
                sensor_target_ms=20.0,
                completed=completed,
                failed=failed,
                cross_zone=sensor_stats["cross_zone"],
                vault_rejections=platform.federation.jurisdiction_rejections(
                    "Vault"
                ),
                vault_completed=vault_completed,
            )
        )
        platform.shutdown()
    return rows

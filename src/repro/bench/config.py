"""Shared configuration for the Fig. 3 scalability experiment.

The constants encode the *relationships* that produce the paper's
shape, not the authors' absolute testbed numbers (our substrate is a
simulator — see DESIGN.md §3):

* Worker VMs host ``node_cpu / pod_cpu`` function pods; each pod serves
  ``concurrency`` requests of ``service_time_s`` — so CPU-bound
  throughput grows linearly with VMs.
* The document DB is a *fixed* external service with
  ``db_capacity_units`` of write/read work per second.  The Knative
  baseline spends ``(op + read) + (op + doc)`` units per request; with
  ``db_capacity_units`` calibrated so that ceiling equals the CPU
  throughput of ~6 VMs, the baseline plateaus exactly where Fig. 3
  shows it.
* Oparaca batches ``batch_size`` documents per write op, cutting the
  per-request DB cost ~2x, which moves its ceiling past the 12-VM
  sweep's CPU capacity — higher maximum throughput, sub-linear tail.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Fig3Config"]


@dataclass(frozen=True)
class Fig3Config:
    """Knobs for the scalability sweep (Fig. 3)."""

    nodes_sweep: tuple[int, ...] = (3, 6, 9, 12)
    node_cpu_millis: int = 4000
    node_memory_mb: int = 16384
    pod_cpu_millis: int = 1000
    pod_memory_mb: int = 512
    concurrency: int = 8
    service_time_s: float = 0.1
    knative_overhead_s: float = 0.005
    deployment_overhead_s: float = 0.0004
    cold_start_s: float = 1.8
    db_capacity_units: float = 30000.0
    db_op_cost: float = 4.0
    db_doc_cost: float = 10.0
    db_read_cost: float = 1.0
    batch_size: int = 100
    linger_s: float = 0.02
    max_pending: int = 250
    objects: int = 30000
    clients_per_vm: int = 40
    horizon_s: float = 14.0
    warmup_s: float = 7.0
    json_fields: int = 8
    seed: int = 42
    # Read-path levers (ABL-READPATH).  All off by default so the
    # baseline sweep stays byte-identical to the historical Fig. 3.
    read_coalescing: bool = False
    read_batch_max: int = 0
    read_batch_linger_s: float = 0.002
    near_cache_entries: int = 0

    @property
    def pods_per_node(self) -> int:
        return max(1, self.node_cpu_millis // self.pod_cpu_millis)

    def clients(self, nodes: int) -> int:
        return self.clients_per_vm * nodes

    def max_pods(self, nodes: int) -> int:
        return self.pods_per_node * nodes

    @classmethod
    def quick(cls) -> "Fig3Config":
        """A scaled-down configuration for tests and smoke runs.

        Preserves the qualitative relationships at ~10x less simulated
        work: saturating clients, a DB ceiling that already binds the
        Knative baseline at 3 VMs (so the plateau is visible across the
        two swept sizes), and a warm-up long enough to cover autoscaler
        reaction plus cold starts.
        """
        return cls(
            nodes_sweep=(3, 6),
            objects=2000,
            clients_per_vm=40,
            horizon_s=10.0,
            warmup_s=6.0,
            db_capacity_units=12000.0,
            max_pending=2000,
        )

"""Plain-text reporting for experiment results.

Prints the same rows/series the paper's figures plot: throughput per
(system, VM count), plus an ASCII rendition of Fig. 3 so the shape is
visible straight from a terminal.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.bench.scalability import Fig3Row

__all__ = ["format_table", "format_fig3", "format_fig3_chart"]


def format_table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_fig3(rows: list[Fig3Row]) -> str:
    """The Fig. 3 series as a table (one row per system x VM count)."""
    table_rows = [
        (
            row.system,
            row.nodes,
            f"{row.throughput_rps:.0f}",
            f"{row.mean_latency_ms:.1f}",
            f"{row.p99_latency_ms:.1f}",
            row.completed,
            row.failed,
        )
        for row in rows
    ]
    return format_table(
        ("system", "vms", "throughput_rps", "mean_ms", "p99_ms", "completed", "failed"),
        table_rows,
    )


def format_fig3_chart(rows: list[Fig3Row], width: int = 60) -> str:
    """An ASCII bar chart of throughput vs VMs, grouped by system."""
    if not rows:
        return "(no data)"
    peak = max(row.throughput_rps for row in rows) or 1.0
    by_system: dict[str, list[Fig3Row]] = defaultdict(list)
    for row in rows:
        by_system[row.system].append(row)
    lines = [f"throughput (requests/s), full bar = {peak:.0f} rps"]
    for system in sorted(by_system):
        lines.append(f"{system}:")
        for row in sorted(by_system[system], key=lambda r: r.nodes):
            bar = "#" * max(1, round(row.throughput_rps / peak * width))
            lines.append(f"  {row.nodes:>3} VMs |{bar} {row.throughput_rps:.0f}")
    return "\n".join(lines)

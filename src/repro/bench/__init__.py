"""The experiment harness reproducing the paper's evaluation.

See DESIGN.md §4 for the experiment index: FIG3 (scalability sweep),
FIG1 (abstraction comparison), FIG2 (template selection), and the
ABL-* ablations (batching, cold start, locality, presigned URLs).
"""

from repro.bench.config import Fig3Config
from repro.bench.scalability import Fig3Row, run_cell, run_fig3
from repro.bench.systems import SYSTEMS, build_system
from repro.bench.report import format_fig3, format_fig3_chart, format_table

__all__ = [
    "Fig3Config",
    "Fig3Row",
    "run_cell",
    "run_fig3",
    "SYSTEMS",
    "build_system",
    "format_fig3",
    "format_fig3_chart",
    "format_table",
]

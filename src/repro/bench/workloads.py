"""The JSON-randomization application (the Fig. 3 workload).

Every request rewrites a handful of fields of one object's JSON
document with pseudo-random strings.  Two handler images implement the
same application for the two architectures under test:

* ``bench/json-random`` — the OaaS pure-function form: state arrives in
  the task, mutations are diffed and committed by the platform.
* ``bench/json-random-db`` — the stateless-FaaS form: the function
  itself reads and writes the document store *while occupying a
  replica*, exactly how a Knative app manages its own state.

Both use the same deterministic mutation so results are comparable.
"""

from __future__ import annotations

import hashlib
from typing import Any, Generator

from repro.faas.registry import FunctionRegistry
from repro.faas.runtime import TaskContext

__all__ = [
    "OAAS_IMAGE",
    "FAAS_IMAGE",
    "randomize_fields",
    "initial_document",
    "register_oaas_handler",
    "register_faas_handler",
]

OAAS_IMAGE = "bench/json-random"
FAAS_IMAGE = "bench/json-random-db"


def _pseudo_random_value(seed: int, field: int) -> str:
    return hashlib.md5(f"{seed}:{field}".encode()).hexdigest()[:16]


def randomize_fields(data: dict[str, Any], seed: int, fields: int = 8) -> dict[str, Any]:
    """Deterministically rewrite ``fields`` keys of a JSON document."""
    out = dict(data)
    for index in range(fields):
        out[f"f{index}"] = _pseudo_random_value(seed, index)
    out["revision"] = int(out.get("revision", 0)) + 1
    return out


def initial_document(object_index: int, fields: int = 8) -> dict[str, Any]:
    """The starting JSON document for object ``object_index``."""
    data = {f"f{i}": _pseudo_random_value(-object_index, i) for i in range(fields)}
    data["revision"] = 0
    return data


def register_oaas_handler(
    registry: FunctionRegistry, service_time_s: float, fields: int = 8
) -> None:
    """Register the pure-function (OaaS) form of the application."""

    def handler(ctx: TaskContext) -> dict[str, Any]:
        data = dict(ctx.state.get("data") or {})
        ctx.state["data"] = randomize_fields(data, int(ctx.payload["seed"]), fields)
        return {"revision": ctx.state["data"]["revision"]}

    registry.register(OAAS_IMAGE, handler, service_time_s=service_time_s)


def register_faas_handler(
    registry: FunctionRegistry,
    service_time_s: float,
    fields: int = 8,
    collection: str = "objects",
) -> None:
    """Register the stateless-FaaS form (direct DB access per request).

    The handler is a generator: its DB round trips consume simulated
    time *while the function replica's slot is held*, which is the
    architectural property that couples the Knative baseline to the
    database's write ceiling.
    """

    def handler(ctx: TaskContext) -> Generator:
        db = ctx.service("db")
        key = str(ctx.payload["key"])
        doc = yield db.read(collection, key)
        if doc is None:
            doc = {"id": key, "data": {}}
        doc["data"] = randomize_fields(
            dict(doc.get("data") or {}), int(ctx.payload["seed"]), fields
        )
        yield db.write(collection, [doc])
        return {"revision": doc["data"]["revision"]}

    registry.register(FAAS_IMAGE, handler, service_time_s=service_time_s)

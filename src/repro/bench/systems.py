"""The four systems compared in Fig. 3.

* ``knative`` — the baseline: a stateless Knative function doing its
  own per-request DB reads/writes (no OaaS layer at all).
* ``oprc`` — Oparaca with Knative as the execution engine: state through
  the DHT, batched write-behind persistence.
* ``oprc-bypass`` — Oparaca executing on plain Kubernetes deployments
  (no activator/queue-proxy overhead, pre-provisioned replicas).
* ``oprc-bypass-nonpersist`` — additionally keeps object data in memory
  only, isolating the database from the picture entirely.

All four share the same cluster geometry, the same document-store
service model, and the same JSON-randomization workload.
"""

from __future__ import annotations

import abc
from typing import Any, Generator

from repro.bench.config import Fig3Config
from repro.bench.workloads import (
    FAAS_IMAGE,
    OAAS_IMAGE,
    initial_document,
    register_faas_handler,
    register_oaas_handler,
)
from repro.crm.template import ClassRuntimeTemplate, RuntimeConfig, TemplateCatalog, TemplateSelector
from repro.errors import ValidationError
from repro.faas.deployment_engine import DeploymentModel
from repro.faas.knative import KnativeEngine, KnativeModel
from repro.faas.registry import FunctionRegistry
from repro.faas.runtime import InvocationTask
from repro.invoker.request import InvocationRequest
from repro.invoker.router import PlacementPolicy
from repro.model.cls import ClassDefinition, FunctionBinding
from repro.model.function import FunctionDefinition, ProvisionSpec
from repro.model.pkg import Package
from repro.model.types import DataType, KeySpec, StateSpec
from repro.object.obj import ObjectRecord
from repro.orchestrator.cluster import Cluster
from repro.orchestrator.resources import ResourceSpec
from repro.orchestrator.scheduler import Scheduler
from repro.platform.oparaca import Oparaca, PlatformConfig
from repro.sim.kernel import Environment
from repro.sim.network import NetworkModel
from repro.sim.rng import RngStreams
from repro.storage.kv import DbModel, DocumentStore
from repro.storage.read_path import ReadBatchConfig
from repro.storage.write_behind import WriteBehindConfig

__all__ = ["BenchSystem", "OprcSystem", "KnativeBaselineSystem", "build_system", "SYSTEMS"]

SYSTEMS = ("knative", "oprc", "oprc-bypass", "oprc-bypass-nonpersist")


def _db_model(cfg: Fig3Config) -> DbModel:
    return DbModel(
        capacity_units_per_s=cfg.db_capacity_units,
        op_cost=cfg.db_op_cost,
        doc_cost=cfg.db_doc_cost,
        read_cost=cfg.db_read_cost,
    )


class BenchSystem(abc.ABC):
    """One system under test: an environment plus a request generator."""

    name: str

    def __init__(self, cfg: Fig3Config, nodes: int) -> None:
        self.cfg = cfg
        self.nodes = nodes

    @property
    @abc.abstractmethod
    def env(self) -> Environment:
        """The system's simulation environment."""

    @abc.abstractmethod
    def prepare(self) -> None:
        """Deploy the application and seed the object population."""

    @abc.abstractmethod
    def request(self, index: int) -> Generator:
        """One client request (a process generator)."""

    @abc.abstractmethod
    def extras(self) -> dict[str, Any]:
        """System-specific counters for the report."""

    def shutdown(self) -> None:
        """Stop background loops (optional)."""


class OprcSystem(BenchSystem):
    """Oparaca in one of its three Fig. 3 configurations."""

    def __init__(
        self,
        cfg: Fig3Config,
        nodes: int,
        variant: str = "oprc",
        replication: int = 1,
    ) -> None:
        super().__init__(cfg, nodes)
        if variant not in ("oprc", "oprc-bypass", "oprc-bypass-nonpersist"):
            raise ValidationError(f"unknown oprc variant {variant!r}")
        self.name = variant
        self.variant = variant
        bypass = variant != "oprc"
        persistent = variant != "oprc-bypass-nonpersist"
        write_behind = WriteBehindConfig(
            batch_size=cfg.batch_size, linger_s=cfg.linger_s, max_pending=cfg.max_pending
        )
        read_batch = (
            ReadBatchConfig(max_batch=cfg.read_batch_max, linger_s=cfg.read_batch_linger_s)
            if cfg.read_batch_max > 0
            else None
        )
        template = ClassRuntimeTemplate(
            name=f"bench-{variant}",
            selector=TemplateSelector(),
            config=RuntimeConfig(
                engine="deployment" if bypass else "knative",
                placement=PlacementPolicy.LOCALITY,
                replication=replication,
                persistent=persistent,
                write_behind=write_behind,
                min_scale_override=cfg.max_pods(nodes) if bypass else None,
                read_coalescing=cfg.read_coalescing,
                read_batch=read_batch,
                near_cache_entries=cfg.near_cache_entries,
            ),
            priority=100,
            description="benchmark-pinned runtime",
        )
        self.platform = Oparaca(
            PlatformConfig(
                nodes=nodes,
                node_cpu_millis=cfg.node_cpu_millis,
                node_memory_mb=cfg.node_memory_mb,
                seed=cfg.seed,
                db=_db_model(cfg),
                network=NetworkModel(),
                knative=KnativeModel(
                    request_overhead_s=cfg.knative_overhead_s,
                    cold_start_s=cfg.cold_start_s,
                    scale_to_zero_grace_s=3600.0,
                ),
                deployment=DeploymentModel(
                    request_overhead_s=cfg.deployment_overhead_s,
                    cold_start_s=cfg.cold_start_s,
                ),
                catalog=TemplateCatalog([template]),
            )
        )
        register_oaas_handler(
            self.platform.registry, cfg.service_time_s, fields=cfg.json_fields
        )
        self._rng = RngStreams(cfg.seed).stream("oprc-object-pick")
        self._object_ids: list[str] = []

    @property
    def env(self) -> Environment:
        return self.platform.env

    def _package(self) -> Package:
        definition = FunctionDefinition(
            name="randomize",
            image=OAAS_IMAGE,
            provision=ProvisionSpec(
                concurrency=self.cfg.concurrency,
                cpu_millis=self.cfg.pod_cpu_millis,
                memory_mb=self.cfg.pod_memory_mb,
                min_scale=1,
                max_scale=self.cfg.max_pods(self.nodes),
            ),
        )
        doc_cls = ClassDefinition(
            name="Doc",
            state=StateSpec((KeySpec("data", DataType.JSON),)),
            bindings=(FunctionBinding(name="randomize", function=definition),),
        )
        return Package(name="bench", classes=(doc_cls,))

    def prepare(self) -> None:
        self.platform.deploy(self._package())
        runtime = self.platform.crm.runtime("Doc")
        for index in range(self.cfg.objects):
            record = ObjectRecord(
                id=f"Doc~{index}",
                cls="Doc",
                version=1,
                state={"data": initial_document(index, self.cfg.json_fields)},
            )
            runtime.dht.seed(record.to_doc())
            self._object_ids.append(record.id)

    def request(self, index: int) -> Generator:
        object_id = self._object_ids[self._rng.randrange(len(self._object_ids))]
        result = yield self.platform.engine.invoke(
            InvocationRequest(
                object_id=object_id, fn_name="randomize", payload={"seed": index}
            )
        )
        if not result.ok:
            raise RuntimeError(result.error)
        return result

    def extras(self) -> dict[str, Any]:
        runtime = self.platform.crm.runtime("Doc")
        svc = runtime.services["randomize"]
        out: dict[str, Any] = {
            "db_write_ops": self.platform.store.write_ops,
            "db_docs_written": self.platform.store.docs_written,
            "db_read_ops": self.platform.store.read_ops,
            "db_multi_read_ops": self.platform.store.multi_read_ops,
            "replicas": svc.replicas,
            "cold_starts": svc.cold_starts,
            "cas_conflicts": self.platform.engine.cas_conflicts,
        }
        if runtime.dht.model.persistent:
            out.update(runtime.dht.write_behind_stats)
        out.update(runtime.dht.read_path_stats)
        return out

    def shutdown(self) -> None:
        self.platform.shutdown()


class KnativeBaselineSystem(BenchSystem):
    """The stateless-FaaS baseline: Knative + direct DB access."""

    name = "knative"

    def __init__(self, cfg: Fig3Config, nodes: int) -> None:
        super().__init__(cfg, nodes)
        self._env = Environment()
        self.cluster = Cluster(self._env)
        for index in range(nodes):
            self.cluster.add_node(
                f"vm-{index}", ResourceSpec(cfg.node_cpu_millis, cfg.node_memory_mb)
            )
        self.scheduler = Scheduler(self.cluster)
        self.registry = FunctionRegistry()
        register_faas_handler(self.registry, cfg.service_time_s, fields=cfg.json_fields)
        self.store = DocumentStore(self._env, _db_model(cfg))
        self.engine = KnativeEngine(
            self._env,
            self.scheduler,
            self.registry,
            KnativeModel(
                request_overhead_s=cfg.knative_overhead_s,
                cold_start_s=cfg.cold_start_s,
                scale_to_zero_grace_s=3600.0,
            ),
        )
        self.service = None
        self._rng = RngStreams(cfg.seed).stream("knative-object-pick")
        self._keys: list[str] = []

    @property
    def env(self) -> Environment:
        return self._env

    def prepare(self) -> None:
        definition = FunctionDefinition(
            name="randomize",
            image=FAAS_IMAGE,
            provision=ProvisionSpec(
                concurrency=self.cfg.concurrency,
                cpu_millis=self.cfg.pod_cpu_millis,
                memory_mb=self.cfg.pod_memory_mb,
                min_scale=1,
                max_scale=self.cfg.max_pods(self.nodes),
            ),
        )
        self.service = self.engine.deploy(
            "json-random", definition, services={"db": self.store}
        )
        for index in range(self.cfg.objects):
            key = f"doc-{index}"
            self.store.put_sync(
                "objects",
                {
                    "id": key,
                    "data": initial_document(index, self.cfg.json_fields),
                },
            )
            self._keys.append(key)

    def request(self, index: int) -> Generator:
        key = self._keys[self._rng.randrange(len(self._keys))]
        task = InvocationTask(
            request_id=f"kn-{index}",
            cls="-",
            object_id=key,
            fn_name="randomize",
            image=FAAS_IMAGE,
            payload={"key": key, "seed": index},
        )
        completion = yield self.service.invoke(task)
        if not completion.ok:
            raise RuntimeError(completion.error)
        return completion

    def extras(self) -> dict[str, Any]:
        return {
            "db_write_ops": self.store.write_ops,
            "db_docs_written": self.store.docs_written,
            "db_read_ops": self.store.read_ops,
            "replicas": self.service.replicas if self.service else 0,
            "cold_starts": self.service.cold_starts if self.service else 0,
        }

    def shutdown(self) -> None:
        if self.service is not None:
            self.service.stop()


def build_system(name: str, cfg: Fig3Config, nodes: int) -> BenchSystem:
    """Factory over the four Fig. 3 systems."""
    if name == "knative":
        return KnativeBaselineSystem(cfg, nodes)
    if name in ("oprc", "oprc-bypass", "oprc-bypass-nonpersist"):
        return OprcSystem(cfg, nodes, variant=name)
    raise ValidationError(f"unknown system {name!r}; expected one of {SYSTEMS}")

"""FIG1 — FaaS vs OaaS abstraction comparison (paper Fig. 1).

Fig. 1 is conceptual: FaaS leaves workflow chaining and state
navigation to the developer, OaaS builds them in.  This experiment
makes the difference measurable on the image pipeline of Listing 1:

* **manual chaining** (the FaaS style): the client invokes each stage
  through the gateway and carries intermediate results itself — one
  round trip per stage, strictly sequential.
* **dataflow macro** (the OaaS style): one invocation; the platform
  navigates data between steps and runs independent stages in parallel.

Reported: client round trips, end-to-end latency, and the latency
speedup from platform-side parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.oparaca import Oparaca, PlatformConfig

__all__ = ["Fig1Result", "run_fig1"]

_PACKAGE = """
name: fig1
classes:
  - name: Image
    keySpecs:
      - { name: width, type: INT, default: 1024 }
      - { name: format, type: STR, default: png }
      - { name: watermark, type: STR, default: "" }
      - { name: final, type: STR, default: "" }
    functions:
      - name: resize
        image: fig1/resize
        mutable: false
      - name: watermarkFn
        image: fig1/watermark
        mutable: false
      - name: combine
        image: fig1/combine
      - name: pipeline
        type: MACRO
        dataflow:
          steps:
            - id: r
              function: resize
              args: { width: "${input.width}" }
            - id: w
              function: watermarkFn
              args: { text: "${input.text}" }
            - id: c
              function: combine
              inputs: [r, w]
          output: c
"""


@dataclass(frozen=True)
class Fig1Result:
    """The measurable gap between the two abstractions."""

    manual_round_trips: int
    macro_round_trips: int
    manual_latency_s: float
    macro_latency_s: float

    @property
    def latency_speedup(self) -> float:
        if self.macro_latency_s <= 0:
            return 0.0
        return self.manual_latency_s / self.macro_latency_s


def _build_platform(service_time_s: float) -> Oparaca:
    platform = Oparaca(PlatformConfig(nodes=3))

    @platform.function("fig1/resize", service_time_s=service_time_s)
    def resize(ctx):
        width = int(ctx.payload.get("width", ctx.state.get("width", 0)))
        return {"stage": "resize", "width": width}

    @platform.function("fig1/watermark", service_time_s=service_time_s)
    def watermark(ctx):
        return {"stage": "watermark", "text": str(ctx.payload.get("text", ""))}

    @platform.function("fig1/combine", service_time_s=service_time_s)
    def combine(ctx):
        inputs = ctx.payload.get("inputs", [])
        stages = "+".join(str(part.get("stage", "?")) for part in inputs)
        ctx.state["final"] = stages
        ctx.state["width"] = max(
            (int(part.get("width", 0)) for part in inputs if "width" in part),
            default=int(ctx.state.get("width") or 0),
        )
        return {"stage": "combine", "combined": stages}

    platform.deploy(_PACKAGE)
    return platform


def run_fig1(service_time_s: float = 0.05) -> Fig1Result:
    """Run both styles of the pipeline and measure the gap."""
    platform = _build_platform(service_time_s)
    obj = platform.new_object("Image")

    # Warm every service first so neither style pays cold starts —
    # FIG1 is about the abstraction, ABL-COLD is about cold starts.
    platform.invoke(obj, "resize", {"width": 100})
    platform.invoke(obj, "watermarkFn", {"text": "warm"})
    platform.invoke(obj, "combine", {"inputs": []})

    # Manual FaaS-style chaining: the client drives every stage and
    # carries outputs between them.  resize and watermark are data-
    # independent, but a sequential client cannot exploit that.
    started = platform.now
    resize_out = platform.http("POST", f"/api/objects/{obj}/invokes/resize", {"width": 640})
    watermark_out = platform.http(
        "POST", f"/api/objects/{obj}/invokes/watermarkFn", {"text": "(c) hpcc"}
    )
    platform.http(
        "POST",
        f"/api/objects/{obj}/invokes/combine",
        {"inputs": [dict(resize_out.body), dict(watermark_out.body)]},
    )
    manual_latency = platform.now - started
    manual_round_trips = 3

    # OaaS dataflow: one round trip; the platform runs resize and
    # watermark in the same wave, then feeds both into combine.
    started = platform.now
    platform.http(
        "POST",
        f"/api/objects/{obj}/invokes/pipeline",
        {"width": 640, "text": "(c) hpcc"},
    )
    macro_latency = platform.now - started
    platform.shutdown()
    return Fig1Result(
        manual_round_trips=manual_round_trips,
        macro_round_trips=1,
        manual_latency_s=manual_latency,
        macro_latency_s=macro_latency,
    )

"""Discrete-event simulation substrate.

The data plane of the platform (invocations, storage, autoscaling, load
generation) runs on this kernel.  See ``kernel`` for the event engine,
``resources`` for queueing primitives, ``network`` for the fabric model,
``workload`` for load generators, and ``rng`` for deterministic streams.
"""

from repro.sim.kernel import Environment, Event, Process, Timeout, all_of, any_of
from repro.sim.network import Network, NetworkModel
from repro.sim.resources import Container, Gate, RateLimiter, Resource, Store
from repro.sim.rng import RngStreams
from repro.sim.workload import (
    ClosedLoopGenerator,
    LoadStats,
    OpenLoopGenerator,
    PhasedOpenLoopGenerator,
)

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "all_of",
    "any_of",
    "Network",
    "NetworkModel",
    "Resource",
    "Container",
    "Store",
    "RateLimiter",
    "Gate",
    "RngStreams",
    "LoadStats",
    "OpenLoopGenerator",
    "PhasedOpenLoopGenerator",
    "ClosedLoopGenerator",
]

"""Deterministic random-number streams.

Every stochastic component of the simulation (arrival processes, payload
generators, placement tie-breaking) draws from its own named stream so
that adding randomness to one component never perturbs another — a
standard technique for reproducible discrete-event experiments.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngStreams"]


class RngStreams:
    """A family of independent :class:`random.Random` streams.

    Streams are keyed by name and derived from the master seed with
    SHA-256, so ``RngStreams(7).stream("arrivals")`` is identical across
    runs and platforms.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngStreams":
        """Derive a child family, e.g. one per simulated node."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))

"""Load generators and measurement for simulated experiments.

Two standard client models:

* :class:`OpenLoopGenerator` — arrivals at a configured rate regardless
  of completions (saturation testing; what Fig. 3's load driver does).
* :class:`ClosedLoopGenerator` — ``clients`` concurrent loops, each
  issuing the next request after the previous one finishes (optionally
  with think time).  Closed loops self-throttle, which is the right
  model for measuring *capacity*: throughput ramps until a bottleneck
  saturates, without unbounded queue growth.

Both record per-request latency into :class:`LoadStats`, which reports
throughput over a measurement window that excludes warm-up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.sim.kernel import Environment
from repro.sim.rng import RngStreams

__all__ = ["LoadStats", "OpenLoopGenerator", "ClosedLoopGenerator"]

RequestFactory = Callable[[int], Generator[Any, Any, Any]]


@dataclass
class LoadStats:
    """Accumulates completions and latencies for one experiment run."""

    warmup_s: float = 0.0
    issued: int = 0
    completed: int = 0
    failed: int = 0
    measured_completed: int = 0
    latencies: list[float] = field(default_factory=list)
    first_measured_at: float = math.inf
    last_completed_at: float = 0.0

    def record(self, start: float, end: float, ok: bool) -> None:
        """Record one finished request."""
        self.completed += 1
        if not ok:
            self.failed += 1
        self.last_completed_at = end
        if start >= self.warmup_s:
            self.measured_completed += 1
            self.latencies.append(end - start)
            self.first_measured_at = min(self.first_measured_at, start)

    def throughput(self, horizon_s: float) -> float:
        """Completed requests/second over the post-warm-up window."""
        window = horizon_s - self.warmup_s
        if window <= 0:
            return 0.0
        return self.measured_completed / window

    def latency_percentile(self, pct: float) -> float:
        """Latency percentile (0 < pct <= 100) over measured requests."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(0, min(len(ordered) - 1, math.ceil(pct / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)


class OpenLoopGenerator:
    """Issues requests at ``rate`` per second until ``horizon_s``.

    ``request_factory(i)`` must return a process generator performing
    request ``i``; each arrival is spawned as an independent process.
    """

    def __init__(
        self,
        env: Environment,
        request_factory: RequestFactory,
        rate: float,
        horizon_s: float,
        warmup_s: float = 0.0,
        poisson: bool = True,
        rng: RngStreams | None = None,
    ) -> None:
        self.env = env
        self.request_factory = request_factory
        self.rate = rate
        self.horizon_s = horizon_s
        self.stats = LoadStats(warmup_s=warmup_s)
        self._poisson = poisson
        self._rng = (rng or RngStreams(0)).stream("open-loop-arrivals")
        self.process = env.process(self._drive())

    def _interarrival(self) -> float:
        if self._poisson:
            return self._rng.expovariate(self.rate)
        return 1.0 / self.rate

    def _drive(self) -> Generator[Any, Any, None]:
        index = 0
        while self.env.now < self.horizon_s:
            yield self.env.timeout(self._interarrival())
            if self.env.now >= self.horizon_s:
                break
            self.stats.issued += 1
            self.env.process(self._tracked(index))
            index += 1

    def _tracked(self, index: int) -> Generator[Any, Any, None]:
        start = self.env.now
        ok = True
        try:
            yield from self.request_factory(index)
        except Exception:  # noqa: BLE001 - load drivers tolerate app errors
            ok = False
        self.stats.record(start, self.env.now, ok)


class PhasedOpenLoopGenerator:
    """Open-loop arrivals whose rate follows a phase schedule.

    ``phases`` is a list of ``(duration_s, rate)`` pairs, cycled until
    ``horizon_s`` — the "unpredictable on-demand workloads" (paper
    §II-D) that serverless autoscaling exists for.  Per-phase statistics
    are kept separately so experiments can compare, e.g., p99 latency
    during bursts against the baseline phases.
    """

    def __init__(
        self,
        env: Environment,
        request_factory: RequestFactory,
        phases: list[tuple[float, float]],
        horizon_s: float,
        poisson: bool = True,
        rng: RngStreams | None = None,
    ) -> None:
        if not phases:
            raise ValueError("phases must be non-empty")
        for duration, rate in phases:
            if duration <= 0 or rate < 0:
                raise ValueError(f"bad phase ({duration}, {rate})")
        self.env = env
        self.request_factory = request_factory
        self.phases = list(phases)
        self.horizon_s = horizon_s
        self.stats = LoadStats()
        self.phase_stats: list[LoadStats] = [LoadStats() for _ in phases]
        self._poisson = poisson
        self._rng = (rng or RngStreams(0)).stream("phased-arrivals")
        self.process = env.process(self._drive())

    def _drive(self) -> Generator[Any, Any, None]:
        index = 0
        while self.env.now < self.horizon_s:
            for phase_index, (duration, rate) in enumerate(self.phases):
                phase_end = min(self.env.now + duration, self.horizon_s)
                while self.env.now < phase_end:
                    if rate <= 0:
                        yield self.env.timeout(phase_end - self.env.now)
                        break
                    gap = (
                        self._rng.expovariate(rate) if self._poisson else 1.0 / rate
                    )
                    if self.env.now + gap >= phase_end:
                        yield self.env.timeout(phase_end - self.env.now)
                        break
                    yield self.env.timeout(gap)
                    self.stats.issued += 1
                    self.phase_stats[phase_index].issued += 1
                    self.env.process(self._tracked(index, phase_index))
                    index += 1
                if self.env.now >= self.horizon_s:
                    return

    def _tracked(self, index: int, phase_index: int) -> Generator[Any, Any, None]:
        start = self.env.now
        ok = True
        try:
            yield from self.request_factory(index)
        except Exception:  # noqa: BLE001
            ok = False
        self.stats.record(start, self.env.now, ok)
        self.phase_stats[phase_index].record(start, self.env.now, ok)


class ClosedLoopGenerator:
    """``clients`` concurrent request loops with optional think time."""

    def __init__(
        self,
        env: Environment,
        request_factory: RequestFactory,
        clients: int,
        horizon_s: float,
        warmup_s: float = 0.0,
        think_time_s: float = 0.0,
    ) -> None:
        self.env = env
        self.request_factory = request_factory
        self.clients = clients
        self.horizon_s = horizon_s
        self.think_time_s = think_time_s
        self.stats = LoadStats(warmup_s=warmup_s)
        self.processes = [env.process(self._client(c)) for c in range(clients)]

    def _client(self, client_id: int) -> Generator[Any, Any, None]:
        index = client_id
        while self.env.now < self.horizon_s:
            start = self.env.now
            ok = True
            try:
                yield from self.request_factory(index)
            except Exception:  # noqa: BLE001
                ok = False
            self.stats.issued += 1
            self.stats.record(start, self.env.now, ok)
            index += self.clients
            if self.think_time_s:
                yield self.env.timeout(self.think_time_s)

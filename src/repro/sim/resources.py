"""Queueing primitives for the simulation kernel.

* :class:`Resource` — a pool of identical slots (e.g. request slots of a
  function pod).  FIFO grant order.
* :class:`Container` — a divisible quantity (e.g. node millicores).
* :class:`Store` — a FIFO queue of items (e.g. a worker inbox).
* :class:`RateLimiter` — a fluid serial server modelling a throughput
  ceiling (e.g. the document DB's aggregate write capacity).
* :class:`Gate` — a broadcast condition processes can wait on.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.sim.kernel import Environment, Event, URGENT

__all__ = ["Resource", "Container", "Store", "RateLimiter", "Gate"]


class Resource:
    """A pool of ``capacity`` identical slots with FIFO granting.

    Process usage::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.in_use = 0
        self._waiting: deque[Event] = deque()

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        event = Event(self.env)
        if self.in_use < self.capacity:
            self.in_use += 1
            event._ok = True
            event._value = None
            self.env._schedule(event, priority=URGENT)
        else:
            self._waiting.append(event)
        return event

    def release(self) -> None:
        """Return a slot to the pool, waking the oldest waiter.

        After a :meth:`resize` shrink the pool may be over-committed
        (``in_use > capacity``); released slots then retire instead of
        passing to a waiter, so the pool actually drains down to the new
        capacity even while requests are queued.
        """
        if self.in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiting and self.in_use <= self.capacity:
            event = self._waiting.popleft()
            event._ok = True
            event._value = None
            self.env._schedule(event, priority=URGENT)
        else:
            self.in_use -= 1

    def resize(self, capacity: int) -> None:
        """Change capacity (autoscaling).  Shrinking never evicts holders;
        the pool drains down as slots are released."""
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        while self._waiting and self.in_use < self.capacity:
            event = self._waiting.popleft()
            self.in_use += 1
            event._ok = True
            event._value = None
            self.env._schedule(event, priority=URGENT)


class Container:
    """A divisible quantity with blocking :meth:`get` and instant :meth:`put`."""

    def __init__(self, env: Environment, capacity: float, initial: float | None = None) -> None:
        if capacity <= 0:
            raise SimulationError(f"Container capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = float(capacity)
        self.level = float(capacity if initial is None else initial)
        if not 0 <= self.level <= self.capacity:
            raise SimulationError(f"initial level {self.level} outside [0, {capacity}]")
        self._waiting: deque[tuple[float, Event]] = deque()

    def get(self, amount: float) -> Event:
        """Return an event firing once ``amount`` has been withdrawn."""
        if amount < 0:
            raise SimulationError(f"get() amount must be >= 0, got {amount}")
        if amount > self.capacity:
            raise SimulationError(
                f"get({amount}) exceeds container capacity {self.capacity}"
            )
        event = Event(self.env)
        if not self._waiting and amount <= self.level:
            self.level -= amount
            event._ok = True
            event._value = None
            self.env._schedule(event, priority=URGENT)
        else:
            self._waiting.append((amount, event))
        return event

    def put(self, amount: float) -> None:
        """Deposit ``amount`` back, waking FIFO waiters that now fit."""
        if amount < 0:
            raise SimulationError(f"put() amount must be >= 0, got {amount}")
        self.level = min(self.capacity, self.level + amount)
        while self._waiting and self._waiting[0][0] <= self.level:
            need, event = self._waiting.popleft()
            self.level -= need
            event._ok = True
            event._value = None
            self.env._schedule(event, priority=URGENT)


class Store:
    """An unbounded FIFO queue of items with blocking :meth:`get`."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``; hands it straight to a waiting getter if any."""
        if self._getters:
            event = self._getters.popleft()
            event._ok = True
            event._value = item
            self.env._schedule(event, priority=URGENT)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        event = Event(self.env)
        if self._items:
            event._ok = True
            event._value = self._items.popleft()
            self.env._schedule(event, priority=URGENT)
        else:
            self._getters.append(event)
        return event

    def drain(self) -> list[Any]:
        """Remove and return all queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items


class RateLimiter:
    """A fluid serial server: work is admitted at ``rate`` units/second.

    Models an aggregate throughput ceiling (the paper's document-DB write
    bottleneck).  ``acquire(n)`` returns an event that fires when the
    server has *finished* those ``n`` units; back-to-back acquisitions
    queue behind one another, so sustained offered load above ``rate``
    builds an ever-growing backlog exactly like a saturated DB.
    """

    def __init__(self, env: Environment, rate: float) -> None:
        if rate <= 0:
            raise SimulationError(f"RateLimiter rate must be > 0, got {rate}")
        self.env = env
        self.rate = float(rate)
        self._next_free = 0.0
        self.total_units = 0.0
        self.busy_time = 0.0

    @property
    def backlog_seconds(self) -> float:
        """How far behind the server currently is, in seconds of work."""
        return max(0.0, self._next_free - self.env.now)

    def acquire(self, units: float = 1.0) -> Event:
        """Schedule ``units`` of work; event fires at its completion time."""
        if units < 0:
            raise SimulationError(f"acquire() units must be >= 0, got {units}")
        start = max(self.env.now, self._next_free)
        service = units / self.rate
        self._next_free = start + service
        self.total_units += units
        self.busy_time += service
        event = Event(self.env)
        event._ok = True
        event._value = None
        self.env._schedule(event, delay=self._next_free - self.env.now)
        return event

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the server was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class Gate:
    """A broadcast condition: many processes wait, one call wakes all."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._waiting: list[Event] = []

    def wait(self) -> Event:
        """Return an event that fires at the next :meth:`fire`."""
        event = Event(self.env)
        self._waiting.append(event)
        return event

    def fire(self, value: Any = None) -> int:
        """Wake every waiter; returns how many were woken."""
        waiters, self._waiting = self._waiting, []
        for event in waiters:
            event._ok = True
            event._value = value
            self.env._schedule(event, priority=URGENT)
        return len(waiters)

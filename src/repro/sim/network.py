"""Cluster network model.

A datacenter fabric: a fixed per-hop round-trip latency plus a
serialization delay from per-link bandwidth.  Transfers between
co-located endpoints (same node) pay only a loopback latency, which is
what makes data-locality optimizations measurable (experiment
ABL-LOCALITY in DESIGN.md).

Multi-datacenter support (the paper's §VI future work): when the
network is given a ``region_of`` resolver, transfers between nodes in
*different* regions pay the (much larger) inter-region round trip —
which is what makes jurisdiction-constrained placement and
latency-aware multi-DC deployment measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.kernel import Environment, Event

__all__ = ["NetworkModel", "Network"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth parameters of the fabric.

    Attributes:
        rtt_s: round-trip latency between two distinct nodes of the same
            datacenter (seconds).
        loopback_s: round-trip latency within one node (seconds).
        inter_region_rtt_s: round-trip latency between nodes in
            different datacenters/regions.
        bandwidth_bps: per-transfer bandwidth in bytes/second; ``0``
            disables the serialization term.
    """

    rtt_s: float = 0.0005
    loopback_s: float = 0.00002
    inter_region_rtt_s: float = 0.04
    bandwidth_bps: float = 1.25e9  # ~10 Gbit/s

    def transfer_time(
        self,
        src: str | None,
        dst: str | None,
        nbytes: int = 0,
        cross_region: bool = False,
    ) -> float:
        """Time for a request/response exchange carrying ``nbytes``."""
        if src is not None and src == dst:
            base = self.loopback_s
        elif cross_region:
            base = self.inter_region_rtt_s
        else:
            base = self.rtt_s
        if nbytes and self.bandwidth_bps:
            base += nbytes / self.bandwidth_bps
        return base


#: A zero-cost model for interactive (non-benchmark) use.
INSTANT = NetworkModel(rtt_s=0.0, loopback_s=0.0, inter_region_rtt_s=0.0, bandwidth_bps=0.0)


class Network:
    """Applies a :class:`NetworkModel` inside simulation processes."""

    def __init__(
        self,
        env: Environment,
        model: NetworkModel | None = None,
        region_of: Callable[[str], str | None] | None = None,
    ) -> None:
        self.env = env
        self.model = model or INSTANT
        self.region_of = region_of
        self.total_transfers = 0
        self.total_bytes = 0
        self.remote_transfers = 0
        self.cross_region_transfers = 0

    def _cross_region(self, src: str | None, dst: str | None) -> bool:
        if self.region_of is None or src is None or dst is None:
            return False
        src_region = self.region_of(src)
        dst_region = self.region_of(dst)
        return (
            src_region is not None
            and dst_region is not None
            and src_region != dst_region
        )

    def transfer(self, src: str | None, dst: str | None, nbytes: int = 0) -> Event:
        """Return an event firing when the exchange completes."""
        self.total_transfers += 1
        self.total_bytes += nbytes
        if src is None or src != dst:
            self.remote_transfers += 1
        cross = self._cross_region(src, dst)
        if cross:
            self.cross_region_transfers += 1
        return self.env.timeout(self.model.transfer_time(src, dst, nbytes, cross))

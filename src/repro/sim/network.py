"""Cluster network model.

A datacenter fabric: a fixed per-hop round-trip latency plus a
serialization delay from per-link bandwidth.  Transfers between
co-located endpoints (same node) pay only a loopback latency, which is
what makes data-locality optimizations measurable (experiment
ABL-LOCALITY in DESIGN.md).

Multi-datacenter support (the paper's §VI future work): when the
network is given a ``region_of`` resolver, transfers between nodes in
*different* regions pay the (much larger) inter-region round trip —
which is what makes jurisdiction-constrained placement and
latency-aware multi-DC deployment measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import NetworkPartitionError
from repro.sim.kernel import Environment, Event

__all__ = ["NetworkModel", "NetworkFaults", "Network"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth parameters of the fabric.

    Attributes:
        rtt_s: round-trip latency between two distinct nodes of the same
            datacenter (seconds).
        loopback_s: round-trip latency within one node (seconds).
        inter_region_rtt_s: round-trip latency between nodes in
            different datacenters/regions.
        bandwidth_bps: per-transfer bandwidth in bytes/second; ``0``
            disables the serialization term.
    """

    rtt_s: float = 0.0005
    loopback_s: float = 0.00002
    inter_region_rtt_s: float = 0.04
    bandwidth_bps: float = 1.25e9  # ~10 Gbit/s

    def transfer_time(
        self,
        src: str | None,
        dst: str | None,
        nbytes: int = 0,
        cross_region: bool = False,
    ) -> float:
        """Time for a request/response exchange carrying ``nbytes``."""
        if src is not None and src == dst:
            base = self.loopback_s
        elif cross_region:
            base = self.inter_region_rtt_s
        else:
            base = self.rtt_s
        if nbytes and self.bandwidth_bps:
            base += nbytes / self.bandwidth_bps
        return base


#: A zero-cost model for interactive (non-benchmark) use.
INSTANT = NetworkModel(rtt_s=0.0, loopback_s=0.0, inter_region_rtt_s=0.0, bandwidth_bps=0.0)


class NetworkFaults:
    """Mutable fault state the chaos plane injects into a :class:`Network`.

    Two fault families:

    * **partitions** — nodes are assigned to *sides*; a transfer whose
      endpoints sit on different sides fails with
      :class:`NetworkPartitionError` after ``partition_timeout_s`` of
      simulated time (a connect timeout, not an instant refusal).
      External endpoints (``None`` — the gateway/client) sit on side 0,
      the majority side.
    * **added latency** — extra seconds charged on matching remote
      transfers (scoped by optional src/dst node sets; symmetric).

    A :class:`Network` without an attached ``NetworkFaults`` (the
    default) pays nothing for this machinery beyond one ``is None``
    branch per transfer.
    """

    def __init__(self, partition_timeout_s: float = 0.05) -> None:
        self.partition_timeout_s = partition_timeout_s
        self._side_of: dict[str, int] = {}
        self._delays: dict[int, tuple[frozenset[str] | None, frozenset[str] | None, float]] = {}
        self._next_token = 0

    @property
    def active(self) -> bool:
        return bool(self._side_of) or bool(self._delays)

    # -- partitions -------------------------------------------------------

    def set_partition(self, sides: Iterable[Iterable[str]]) -> None:
        """Split the fabric into ``sides`` (lists of node names).

        Unlisted nodes (and external ``None`` endpoints) are on side 0.
        """
        side_of: dict[str, int] = {}
        for index, side in enumerate(sides):
            for node in side:
                side_of[node] = index
        self._side_of = side_of

    def isolate(self, nodes: Iterable[str]) -> None:
        """Cut ``nodes`` off from the rest of the cluster (and clients)."""
        self.set_partition([(), tuple(nodes)])

    def clear_partition(self) -> None:
        self._side_of = {}

    def partitioned(self, a: str | None, b: str | None) -> bool:
        if not self._side_of:
            return False
        side_a = self._side_of.get(a, 0) if a is not None else 0
        side_b = self._side_of.get(b, 0) if b is not None else 0
        return side_a != side_b

    # -- added latency ----------------------------------------------------

    def add_delay(
        self,
        extra_s: float,
        src: Iterable[str] | None = None,
        dst: Iterable[str] | None = None,
    ) -> int:
        """Charge ``extra_s`` on matching remote transfers; returns a
        token for :meth:`remove_delay`.  ``None`` scopes match any
        endpoint (including external clients); rules are symmetric."""
        self._next_token += 1
        self._delays[self._next_token] = (
            frozenset(src) if src else None,
            frozenset(dst) if dst else None,
            float(extra_s),
        )
        return self._next_token

    def remove_delay(self, token: int) -> None:
        self._delays.pop(token, None)

    @staticmethod
    def _matches(scope: frozenset[str] | None, node: str | None) -> bool:
        return scope is None or node in scope

    def extra_latency(self, a: str | None, b: str | None) -> float:
        total = 0.0
        for src, dst, extra in self._delays.values():
            if (self._matches(src, a) and self._matches(dst, b)) or (
                self._matches(src, b) and self._matches(dst, a)
            ):
                total += extra
        return total


class Network:
    """Applies a :class:`NetworkModel` inside simulation processes."""

    def __init__(
        self,
        env: Environment,
        model: NetworkModel | None = None,
        region_of: Callable[[str], str | None] | None = None,
    ) -> None:
        self.env = env
        self.model = model or INSTANT
        self.region_of = region_of
        #: Fault state injected by the chaos plane; ``None`` = healthy.
        self.faults: NetworkFaults | None = None
        #: Per-endpoint-pair RTT resolver installed by the federation
        #: plane: generalises the flat ``inter_region_rtt_s`` into a
        #: zone-pair latency matrix.  ``None`` (the baseline) keeps
        #: cross-region transfers on the flat model, byte-identical.
        self.zone_rtt: Callable[[str, str], float | None] | None = None
        self.total_transfers = 0
        self.total_bytes = 0
        self.remote_transfers = 0
        self.cross_region_transfers = 0
        self.dropped_transfers = 0

    def _cross_region(self, src: str | None, dst: str | None) -> bool:
        if self.region_of is None or src is None or dst is None:
            return False
        src_region = self.region_of(src)
        dst_region = self.region_of(dst)
        return (
            src_region is not None
            and dst_region is not None
            and src_region != dst_region
        )

    def transfer(self, src: str | None, dst: str | None, nbytes: int = 0) -> Event:
        """Return an event firing when the exchange completes.

        Under an injected partition separating ``src`` and ``dst`` the
        event *fails* with :class:`NetworkPartitionError` after the
        fault state's connect timeout."""
        self.total_transfers += 1
        self.total_bytes += nbytes
        if src is None or src != dst:
            self.remote_transfers += 1
        cross = self._cross_region(src, dst)
        if cross:
            self.cross_region_transfers += 1
        delay = self.model.transfer_time(src, dst, nbytes, cross)
        if cross and self.zone_rtt is not None:
            # src/dst are non-None here: _cross_region already resolved
            # both to (distinct) regions.
            matrix_rtt = self.zone_rtt(src, dst)  # type: ignore[arg-type]
            if matrix_rtt is not None:
                delay += matrix_rtt - self.model.inter_region_rtt_s
        faults = self.faults
        if faults is not None and faults.active:
            if faults.partitioned(src, dst):
                self.dropped_transfers += 1
                return self._drop(src, dst, faults.partition_timeout_s)
            if src is None or src != dst:
                delay += faults.extra_latency(src, dst)
        return self.env.timeout(delay)

    def _drop(self, src: str | None, dst: str | None, timeout_s: float) -> Event:
        """A pre-failed event firing after the partition connect timeout."""
        event = Event(self.env)
        event._ok = False
        event._value = NetworkPartitionError(
            f"network partition: {src or 'client'} cannot reach {dst or 'client'}"
        )
        self.env._schedule(event, delay=timeout_s)
        return event

    def fault_state(self) -> NetworkFaults:
        """The attached fault state, created on first use (chaos plane)."""
        if self.faults is None:
            self.faults = NetworkFaults()
        return self.faults

    def is_partitioned(self, src: str | None, dst: str | None) -> bool:
        """Instant partition check (no simulated time)."""
        return self.faults is not None and self.faults.partitioned(src, dst)

    def check_path(self, src: str | None, dst: str | None) -> None:
        """Raise :class:`NetworkPartitionError` if ``src`` cannot reach
        ``dst`` — an instant control-plane health check."""
        if self.faults is not None and self.faults.partitioned(src, dst):
            raise NetworkPartitionError(
                f"network partition: {src or 'client'} cannot reach {dst or 'client'}"
            )
